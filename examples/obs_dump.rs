//! Stand up a small cluster over real TCP sockets with the observability
//! layer enabled, run a few client operations, and dump all three admin
//! endpoints — the workflow an operator uses against a live deployment.
//!
//! Run with: `cargo run --example obs_dump`
//!
//! CI pipes the output through `tools/check_metrics.py`, which re-parses
//! the `/metrics` section as Prometheus text exposition.

use scalla::client::{ClientConfig, ClientNode, ClientOp, Directory, OpOutcome};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla::prelude::*;
use scalla::sim::{scrape, TcpNet};
use std::sync::Arc;

fn main() {
    // Sample every stage event so even this short run fills histograms.
    let obs = Obs::with_config(1, 4096);

    let mut net = TcpNet::new().expect("bind localhost");
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache.full_delay = Nanos::from_millis(500);
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let mut mgr = CmsdNode::new(mgr_cfg, clock);
    mgr.set_obs(obs.clone());
    let manager = net.add_node(Box::new(mgr)).unwrap();
    directory.register("mgr", manager);

    for i in 0..2 {
        let name = format!("srv-{i}");
        let mut cfg = ServerConfig::new(&name, manager);
        cfg.heartbeat = Nanos::from_millis(200);
        let mut node = ServerNode::new(cfg);
        node.set_obs(obs.clone());
        node.fs_mut().put_online(&format!("/demo/f{i}"), 1024);
        let addr = net.add_node(Box::new(node)).unwrap();
        directory.register(&name, addr);
    }

    let ops = vec![
        ClientOp::Open { path: "/demo/f0".into(), write: false },
        ClientOp::Open { path: "/demo/f1".into(), write: false },
        ClientOp::Open { path: "/demo/f0".into(), write: false },
    ];
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_millis(800);
    let mut client = ClientNode::new(ccfg);
    client.set_obs(obs.clone());
    let client = net.add_node(Box::new(client)).unwrap();

    let admin = net.serve_admin(obs).expect("admin endpoint binds");
    eprintln!("admin endpoint on {admin}");
    net.start();
    std::thread::sleep(std::time::Duration::from_secs(3));

    for path in ["/metrics", "/stats", "/flight"] {
        println!("== {path} ==");
        print!("{}", scrape(admin, path).expect("scrape"));
        println!();
    }

    let mut nodes = net.shutdown();
    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert_eq!(results.len(), 3, "all ops must terminate: {results:?}");
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok), "{results:?}");
    eprintln!("obs_dump OK ({} ops, trace {:016x})", results.len(), results[0].trace_id);
}
