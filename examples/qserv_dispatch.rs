//! Qserv distributed dispatch (§IV-B): an LSST-style master scatters a
//! query to workers through the Scalla file abstraction and gathers the
//! merged answer — with no worker configuration at the master.
//!
//! Run with: `cargo run --example qserv_dispatch`

use scalla::client::{ClientConfig, ClientNode};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig};
use scalla::prelude::*;
use scalla::qserv::{
    gather_results, scatter_script, ChunkStore, QservWorkerNode, Query, QueryResult,
};
use std::sync::Arc;

fn main() {
    const PARTITIONS: u32 = 12;
    const WORKERS: usize = 4;
    const ROWS_PER_CHUNK: usize = 5_000;
    const SEED: u64 = 2026;

    // Manager + 4 workers, each hosting 3 partitions. Workers export
    // /chunk/<p> per hosted chunk — the master never learns the worker
    // list, only partition numbers.
    let mut net = SimNet::new(LatencyModel::lan(), SEED);
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mgr_cfg = CmsdConfig::manager("qserv-mgr");
    let manager = net.add_node(Box::new(CmsdNode::new(mgr_cfg, clock.clone())));
    directory.register("qserv-mgr", manager);

    let mut worker_addrs = Vec::new();
    let mut all_chunks: Vec<ChunkStore> = Vec::new();
    for w in 0..WORKERS {
        let name = format!("worker-{w}");
        let chunks: Vec<ChunkStore> = (0..PARTITIONS)
            .filter(|p| (*p as usize) % WORKERS == w)
            .map(|p| ChunkStore::generate(p, ROWS_PER_CHUNK, SEED))
            .collect();
        all_chunks.extend(chunks.iter().cloned());
        let cfg = ServerConfig::new(&name, manager);
        let addr = net.add_node(Box::new(QservWorkerNode::new(cfg, chunks)));
        directory.register(&name, addr);
        worker_addrs.push(addr);
    }

    // The master is an ordinary Scalla client running the scatter script.
    let partitions: Vec<u32> = (0..PARTITIONS).collect();
    let query = Query::CountRange { lo: 15.0, hi: 18.0 };
    let ops = scatter_script(&query, &partitions, 1);
    let master = net.add_node(Box::new(ClientNode::new({
        let mut c = ClientConfig::new(manager, directory.clone(), ops);
        c.start_delay = Nanos::from_secs(2); // let workers log in first
        c
    })));

    net.start();
    net.run_for(Nanos::from_secs(120));

    // Check the master's script completed.
    let results = net
        .node_mut(master)
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    let ok = results.iter().filter(|r| r.outcome == OpOutcome::Ok).count();
    println!("master ops: {} total, {} ok", results.len(), ok);
    for r in &results {
        println!(
            "  {:28} {:>10} {:?} via {:?}",
            r.path,
            format!("{}", r.latency()),
            r.outcome,
            r.server
        );
    }

    // Gather: read each result file from whichever worker materialized it.
    let mut read_result = |path: &str| -> Option<Vec<u8>> {
        for &w in &worker_addrs {
            let node = net.node_mut(w).as_any_mut().unwrap();
            let worker = node.downcast_ref::<QservWorkerNode>().unwrap();
            if let Some(entry) = worker.server().fs().get(path) {
                return Some(entry.data.to_vec());
            }
        }
        None
    };
    let merged = gather_results(&partitions, 1, &mut read_result).expect("gathered");

    // Verify against a direct computation over all chunks.
    let expected: u64 = all_chunks
        .iter()
        .map(|c| match query.execute(c) {
            QueryResult::Count(n) => n,
            _ => unreachable!(),
        })
        .sum();
    println!("\ndistributed count = {merged:?}");
    println!("direct count      = {expected}");
    assert_eq!(merged, QueryResult::Count(expected));

    // A second query shape: global 10 brightest objects.
    let q2 = Query::Brightest { n: 10 };
    let per_chunk: Vec<QueryResult> = all_chunks.iter().map(|c| q2.execute(c)).collect();
    let QueryResult::Rows(mut rows) = QueryResult::merge(&per_chunk).unwrap() else {
        unreachable!()
    };
    rows.truncate(10);
    println!("\nglobal 10 brightest objects:");
    for r in &rows {
        println!("  id={:014x} ra={:8.3} dec={:+8.3} mag={:.3}", r.id, r.ra, r.dec, r.mag);
    }

    assert_eq!(ok, results.len(), "every scatter/gather op must succeed");
    println!("\nqserv_dispatch OK");
}
