//! An `xrdcp`-style bulk copy over the cluster (§III-B2's "production type
//! processing … bulk transfers"): prepare the source list up front so the
//! MSS stagings overlap, then stream each file out of the federation and
//! write it back under a new prefix via write allocation.
//!
//! Run with: `cargo run --example xrdcp_bulk`

use bytes::Bytes;
use scalla::prelude::*;
use scalla::sim::{summarize, ClusterConfig};

fn main() {
    let mut cfg = ClusterConfig::flat(8);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.staging_delay = Nanos::from_secs(10);
    let mut cluster = SimCluster::build(cfg);

    // Source dataset: 10 files, half of them MSS-resident.
    let sources: Vec<String> = (0..10).map(|i| format!("/tape/run7/events-{i:03}.root")).collect();
    for (i, p) in sources.iter().enumerate() {
        cluster.seed_file(i % 8, p, 4096, i % 2 == 0);
    }
    cluster.settle(Nanos::from_secs(2));

    // The copy script: prepare sources AND destinations — "a list of files
    // that will be needed, regardless of access mode" (§III-B2). Source
    // stagings overlap, and the destinations' non-existence is proven in
    // the background, so the creates skip their 5 s delays too.
    let dests: Vec<String> = (0..10).map(|i| format!("/disk/run7/events-{i:03}.root")).collect();
    let mut prepare_list = sources.clone();
    prepare_list.extend(dests.iter().cloned());
    let mut ops = vec![
        ClientOp::Prepare { paths: prepare_list },
        ClientOp::Sleep { duration: Nanos::from_secs(12) },
    ];
    for (i, src) in sources.iter().enumerate() {
        ops.push(ClientOp::OpenRead { path: src.clone(), len: 4096 });
        ops.push(ClientOp::Create {
            path: format!("/disk/run7/events-{i:03}.root"),
            data: Bytes::from(vec![0u8; 4096]),
        });
    }
    let client = cluster.add_client(ops, Nanos::ZERO);
    cluster.start_node(client);
    cluster.net.run_for(Nanos::from_secs(600));

    let results = cluster.client_results(client);
    println!("== xrdcp-style bulk copy ==");
    for r in results.iter().filter(|r| r.path != "<sleep>") {
        println!(
            "{:34} {:>10} {:?} via {:?}",
            r.path,
            format!("{}", r.latency()),
            r.outcome,
            r.server
        );
    }
    let s = summarize(&results);
    println!("\n{}", s.row());
    assert_eq!(s.failed, 0, "every copy leg must succeed");
    assert_eq!(s.not_found, 0);

    // Verify every destination exists somewhere in the cluster with the
    // right size.
    for i in 0..10 {
        let path = format!("/disk/run7/events-{i:03}.root");
        let holders: Vec<usize> = (0..8)
            .filter(|&srv| {
                cluster.with_server(srv, |s| {
                    s.fs().get(&path).map(|e| e.size == 4096).unwrap_or(false)
                })
            })
            .collect();
        assert_eq!(holders.len(), 1, "{path} must land on exactly one server");
    }
    println!("all 10 destination files verified");
    println!("\nxrdcp_bulk OK");
}
