//! Seeded chaos soak with recovery-time measurement, emitting
//! `BENCH_chaos.json` for `tools/check_chaos.py`.
//!
//! Each plan builds a fresh simulated cluster, injects a randomized fault
//! plan (crash/restart, partition/heal, loss bursts — all derived from the
//! seed), keeps scripted clients running throughout, then audits the run:
//! every op terminated, the `V_q ∩ (V_h ∪ V_p) = ∅` invariant held, every
//! `peer_dead` paired with a `peer_reconnected`. Membership-degraded
//! windows (first slot offline → all slots active again) are the recovery
//! samples: detection latency plus reconnect latency, in milliseconds.
//!
//! Run with: `cargo run --release --example chaos_run [-- --smoke]`

use scalla::prelude::*;
use scalla::sim::ClusterConfig;

const N_SERVERS: usize = 6;

struct PlanReport {
    profile: &'static str,
    seed: u64,
    ops_total: usize,
    ops_terminated: usize,
    invariant_checked: usize,
    invariant_violations: usize,
    peer_dead: u64,
    peer_reconnected: u64,
    recovery_ms: Vec<f64>,
}

fn recovery_count(text: &str, event: &str) -> u64 {
    let needle = format!("scalla_recovery_events_total{{event=\"{event}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .map(|v| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_plan(profile: ChaosProfile, seed: u64, horizon_secs: u64) -> PlanReport {
    let mut cfg = ClusterConfig::flat(N_SERVERS);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.heartbeat = Nanos::from_millis(500);
    cfg.membership.drop_after = Nanos::from_secs(3600);
    cfg.seed = seed;
    cfg.obs = Obs::enabled();
    let obs = cfg.obs.clone();
    let mut c = SimCluster::build(cfg);
    for i in 0..N_SERVERS {
        c.seed_file(i, &format!("/d/f{i}"), 1, true);
    }
    c.settle(Nanos::from_secs(2));

    let start = c.net.now() + Nanos::from_secs(1);
    let horizon = start + Nanos::from_secs(horizon_secs);
    let targets = c.servers.clone();
    let spine = c.managers.clone();
    let plan = FaultPlan::random(seed, profile, &targets, &spine, start, horizon);
    let mut sched = ChaosScheduler::with_obs(plan, obs.clone());

    let ops_per_client = 8usize;
    let mut clients = Vec::new();
    for k in 0..3usize {
        let ops: Vec<ClientOp> = (0..ops_per_client)
            .flat_map(|j| {
                vec![
                    ClientOp::Open { path: format!("/d/f{}", (j + k) % N_SERVERS), write: false },
                    ClientOp::Sleep { duration: Nanos::from_secs(3) },
                ]
            })
            .collect();
        let client = c.add_client_with(|cc| {
            cc.ops = ops.clone();
            cc.request_timeout = Nanos::from_secs(2);
            cc.retry.max_waits = 6;
            cc.retry.op_deadline = Nanos::from_secs(60);
        });
        c.start_node(client);
        clients.push(client);
    }

    // Step the simulation in small slices so membership-degraded windows
    // can be timed from the outside: a window opens when any slot leaves
    // the active set and closes when the full set is active again.
    let mgr = c.managers[0];
    let step = Nanos::from_millis(250);
    let mut degraded_since: Option<Nanos> = None;
    let mut recovery_ms: Vec<f64> = Vec::new();
    let cap = horizon + Nanos::from_secs(900);
    loop {
        let now = c.net.now();
        let all_done = clients.iter().all(|&cl| c.client_done(cl));
        if now >= cap || (sched.exhausted() && now >= horizon && all_done) {
            break;
        }
        let until = now + step;
        sched.run(&mut c.net, until);
        let active = c.with_cmsd(mgr, |n| n.members().active().len());
        let now = c.net.now();
        match (active == N_SERVERS as u32, degraded_since) {
            (false, None) => degraded_since = Some(now),
            (true, Some(t0)) => {
                recovery_ms.push(now.since(t0).0 as f64 / 1e6);
                degraded_since = None;
            }
            _ => {}
        }
    }
    // Post-run quiet window so late reconnects settle before the audit.
    c.net.run_for(Nanos::from_secs(30));
    if let Some(t0) = degraded_since {
        let active = c.with_cmsd(mgr, |n| n.members().active().len());
        if active == N_SERVERS as u32 {
            recovery_ms.push(c.net.now().since(t0).0 as f64 / 1e6);
        }
    }

    let ops_total = clients.len() * ops_per_client;
    let mut ops_terminated = 0usize;
    for &client in &clients {
        ops_terminated += c.client_results(client).iter().filter(|r| r.path != "<sleep>").count();
    }
    let mut invariant_checked = 0usize;
    let mut invariant_violations = 0usize;
    for addr in c.managers.clone() {
        let (checked, violations) = c.with_cmsd(addr, |n| n.cache().invariant_violations());
        invariant_checked += checked;
        invariant_violations += violations;
    }
    let text = obs.registry().prometheus_text();
    recovery_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PlanReport {
        profile: profile.name(),
        seed,
        ops_total,
        ops_terminated,
        invariant_checked,
        invariant_violations,
        peer_dead: recovery_count(&text, "peer_dead"),
        peer_reconnected: recovery_count(&text, "peer_reconnected"),
        recovery_ms,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, horizon_secs): (&[u64], u64) =
        if smoke { (&[202], 30) } else { (&[101, 202, 303], 40) };

    let mut plans = Vec::new();
    for profile in ChaosProfile::ALL {
        for &seed in seeds {
            let report = run_plan(profile, seed, horizon_secs);
            eprintln!(
                "plan {}/{seed}: ops {}/{} invariants {}/{} dead/reconnected {}/{} \
                 recovery windows {}",
                report.profile,
                report.ops_terminated,
                report.ops_total,
                report.invariant_violations,
                report.invariant_checked,
                report.peer_dead,
                report.peer_reconnected,
                report.recovery_ms.len(),
            );
            plans.push(report);
        }
    }

    let all_terminated = plans.iter().all(|p| p.ops_terminated == p.ops_total);
    let mut all_recovery: Vec<f64> = plans.iter().flat_map(|p| p.recovery_ms.clone()).collect();
    all_recovery.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let plan_json: Vec<String> = plans
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"profile\": \"{}\", \"seed\": {}, ",
                    "\"ops_total\": {}, \"ops_terminated\": {}, ",
                    "\"invariant_checked\": {}, \"invariant_violations\": {}, ",
                    "\"peer_dead\": {}, \"peer_reconnected\": {}, ",
                    "\"recovery_ms\": {{\"samples\": {}, \"p50\": {:.3}, ",
                    "\"p95\": {:.3}, \"max\": {:.3}}}}}"
                ),
                p.profile,
                p.seed,
                p.ops_total,
                p.ops_terminated,
                p.invariant_checked,
                p.invariant_violations,
                p.peer_dead,
                p.peer_reconnected,
                p.recovery_ms.len(),
                percentile(&p.recovery_ms, 0.50),
                percentile(&p.recovery_ms, 0.95),
                p.recovery_ms.last().copied().unwrap_or(0.0),
            )
        })
        .collect();

    let doc = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"chaos\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"all_terminated\": {},\n",
            "  \"recovery_ms\": {{\"samples\": {}, \"p50\": {:.3}, \"p95\": {:.3}, ",
            "\"max\": {:.3}}},\n",
            "  \"plans\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        all_terminated,
        all_recovery.len(),
        percentile(&all_recovery, 0.50),
        percentile(&all_recovery, 0.95),
        all_recovery.last().copied().unwrap_or(0.0),
        plan_json.join(",\n"),
    );
    std::fs::write("BENCH_chaos.json", &doc).expect("write BENCH_chaos.json");
    print!("{doc}");
}
