//! WAN federation with failures (§II-B, §III-C1, §V): geographically
//! distributed sites behind one logical head, a server crash mid-service,
//! client refresh recovery to a surviving replica, and a dropped server
//! rejoining — all without operator intervention ("self-healing … managed
//! without a dedicated operations staff", §I).
//!
//! Run with: `cargo run --example wan_federation`

use scalla::prelude::*;
use scalla::sim::summarize;

fn main() {
    // 12 servers: 0-5 "CERN" (fast links), 6-11 "SLAC" (WAN links from
    // the manager's point of view).
    let mut cfg = ClusterConfig::flat(12);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    let mut cluster = SimCluster::build(cfg);

    // Datasets replicated across both sites.
    for f in 0..30 {
        let path = format!("/federated/ds{:02}.root", f);
        cluster.seed_file(f % 6, &path, 1 << 20, true); // CERN copy
        cluster.seed_file(6 + f % 6, &path, 1 << 20, true); // SLAC copy
    }

    // WAN: 60 ms to the far site.
    let mgr = cluster.managers[0];
    for i in 6..12 {
        let addr = cluster.servers[i];
        cluster.net.set_link(mgr, addr, LatencyModel::fixed(Nanos::from_millis(60)));
    }
    cluster.settle(Nanos::from_secs(3));

    // Phase 1: a client reads three datasets; round-robin selection may
    // use either site.
    let ops: Vec<ClientOp> = (0..3)
        .map(|i| ClientOp::OpenRead { path: format!("/federated/ds{:02}.root", i), len: 4096 })
        .collect();
    let c1 = cluster.add_client(ops, Nanos::ZERO);
    cluster.start_node(c1);
    cluster.net.run_for(Nanos::from_secs(10));
    let r1 = cluster.client_results(c1);
    println!("== phase 1: normal federated access ==");
    for r in &r1 {
        println!("  {} -> {:?} via {:?} in {}", r.path, r.outcome, r.server, r.latency());
    }

    // Phase 2: the server that just served ds00 dies. The next client to
    // be vectored there finds it gone, and the cluster heals: heartbeat
    // silence marks it offline, the client's open succeeds on a replica.
    let victim_name = r1[0].server.clone().expect("phase 1 succeeded");
    let victim_idx: usize = victim_name.strip_prefix("srv-").unwrap().parse().unwrap();
    let victim = cluster.servers[victim_idx];
    println!("\n== phase 2: killing {victim_name} ==");
    cluster.net.kill(victim);

    let c2 = cluster.add_client(
        vec![ClientOp::OpenRead { path: "/federated/ds00.root".into(), len: 4096 }],
        Nanos::ZERO,
    );
    cluster.start_node(c2);
    cluster.net.run_for(Nanos::from_secs(40));
    let r2 = cluster.client_results(c2);
    for r in &r2 {
        println!(
            "  {} -> {:?} via {:?} in {} (waits={} refreshes={})",
            r.path,
            r.outcome,
            r.server,
            r.latency(),
            r.waits,
            r.refreshes
        );
        assert_eq!(r.outcome, OpOutcome::Ok, "replica must serve the file");
        assert_ne!(r.server.as_deref(), Some(victim_name.as_str()));
    }

    // Phase 3: the dead server comes back. Reconnection within the drop
    // window is case 3 of §III-A4: prior cached info about it is valid
    // again, and it resumes serving without any manifest exchange.
    println!("\n== phase 3: reviving {victim_name} ==");
    cluster.net.revive(victim);
    cluster.net.run_for(Nanos::from_secs(5));
    let active = cluster.with_cmsd(mgr, |n| n.members().active());
    println!("  manager sees {} active servers", active.len());
    assert_eq!(active.len(), 12, "revived server must rejoin");

    // Phase 4: sustained load across the federation; everything heals.
    let mut clients = Vec::new();
    for j in 0..8u64 {
        let ops: Vec<ClientOp> = (0..10)
            .map(|i| ClientOp::OpenRead {
                path: format!("/federated/ds{:02}.root", (j as usize * 3 + i) % 30),
                len: 4096,
            })
            .collect();
        let c = cluster.add_client(ops, Nanos::from_millis(j));
        cluster.start_node(c);
        clients.push(c);
    }
    cluster.net.run_for(Nanos::from_secs(60));
    let mut all = Vec::new();
    for c in clients {
        all.extend(cluster.client_results(c));
    }
    let s = summarize(&all);
    println!("\n== phase 4: federation under load ==");
    println!("  {}", s.row());
    assert_eq!(s.failed, 0, "no operation may fail after healing");

    println!("\nwan_federation OK");
}
