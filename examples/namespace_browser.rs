//! The Cluster Name Space daemon in action (footnote 3, §V): the cluster
//! itself never answers `ls` — "an ls-type function across all nodes in a
//! cluster" conflicts with low latency (§II-B4) — but the CNS composes a
//! browsable global namespace from server notifications, including files
//! created at runtime.
//!
//! Run with: `cargo run --example namespace_browser`

use bytes::Bytes;
use scalla::prelude::*;
use scalla::sim::ClusterConfig;

fn main() {
    let mut cfg = ClusterConfig::flat(6);
    cfg.with_cns = true;
    let mut cluster = SimCluster::build(cfg);

    // Seed a small federation-style namespace across the servers.
    let seeds = [
        (0usize, "/atlas/data/run1/f0.root"),
        (1, "/atlas/data/run1/f1.root"),
        (2, "/atlas/data/run2/f0.root"),
        (3, "/atlas/mc/gen/f0.root"),
        (4, "/cms/data/run9/f0.root"),
        (5, "/atlas/data/run1/f0.root"), // replica of the first file
    ];
    for (srv, path) in seeds {
        cluster.seed_file(srv, path, 1 << 20, true);
    }
    cluster.settle(Nanos::from_secs(2));

    // Browse top-down, then create a new file and browse again.
    let ops = vec![
        ClientOp::List { dir: "/".into() },
        ClientOp::List { dir: "/atlas".into() },
        ClientOp::List { dir: "/atlas/data".into() },
        ClientOp::List { dir: "/atlas/data/run1".into() },
        ClientOp::Create {
            path: "/atlas/data/run1/f2.root".into(),
            data: Bytes::from_static(b"new"),
        },
        ClientOp::List { dir: "/atlas/data/run1".into() },
    ];
    let client = cluster.add_client(ops, Nanos::ZERO);
    cluster.start_node(client);
    cluster.net.run_for(Nanos::from_secs(60));

    let results = cluster.client_results(client);
    println!("== namespace browse ==");
    for (r, op_is_list) in results.iter().zip([true, true, true, true, false, true]) {
        if op_is_list {
            println!("ls {:24} -> {:?}", r.path, r.entries);
        } else {
            println!("create {:20} -> {:?} via {:?}", r.path, r.outcome, r.server);
        }
    }

    assert_eq!(results[0].entries, vec!["atlas", "cms"]);
    assert_eq!(results[1].entries, vec!["data", "mc"]);
    assert_eq!(results[2].entries, vec!["run1", "run2"]);
    // The replica lists once.
    assert_eq!(results[3].entries, vec!["f0.root", "f1.root"]);
    // After the runtime create, the new file appears.
    assert_eq!(results[5].entries, vec!["f0.root", "f1.root", "f2.root"]);
    println!("\nnamespace_browser OK");
}
