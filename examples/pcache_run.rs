//! Proxy-cache benchmark: hit-rate convergence and cached-vs-origin read
//! latency, emitting `BENCH_pcache.json` for `tools/check_pcache.py`.
//!
//! A simulated cluster is built with one block-caching proxy in front of
//! it. Each round, a fresh scripted client reads every file through the
//! proxy; round 0 is cold (every block fetched from the owning data
//! server), later rounds are warm (served from the proxy's block store).
//! The per-round hit rate is computed from block-store counter deltas and
//! the per-round read latencies from the clients' op records, giving a
//! hit-rate curve plus cold/warm p50/p99 latency and the warm speedup.
//!
//! Run with: `cargo run --release --example pcache_run [-- --smoke]`

use scalla::prelude::*;
use scalla::sim::ClusterConfig;

const BLOCK: u32 = 4 * 1024;
const FILE_SIZE: u64 = 64 * 1024;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn metric(text: &str, name: &str, label_frag: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.contains(label_frag))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_files, rounds) = if smoke { (4usize, 3usize) } else { (8usize, 5usize) };
    let n_servers = 4usize;

    let mut cfg = ClusterConfig::flat(n_servers);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.heartbeat = Nanos::from_millis(500);
    cfg.n_proxies = 1;
    cfg.pcache = PcacheConfig { block_size: BLOCK, ..PcacheConfig::default() };
    cfg.obs = Obs::enabled();
    let obs = cfg.obs.clone();
    let mut c = SimCluster::build(cfg);
    for f in 0..n_files {
        c.seed_file(f % n_servers, &format!("/bench/f{f}"), FILE_SIZE, true);
    }
    c.settle(Nanos::from_secs(2));

    let ops: Vec<ClientOp> = (0..n_files)
        .map(|f| ClientOp::OpenRead { path: format!("/bench/f{f}"), len: FILE_SIZE as u32 })
        .collect();

    let mut hit_rate_curve: Vec<f64> = Vec::new();
    let mut cold_ns: Vec<f64> = Vec::new();
    let mut warm_ns: Vec<f64> = Vec::new();
    for round in 0..rounds {
        let before = c.with_proxy(0, |p| p.store().stats());
        let client = c.add_proxy_client(0, ops.clone(), Nanos::ZERO);
        c.start_node(client);
        let cap = c.net.now() + Nanos::from_secs(120);
        while c.net.now() < cap && !c.client_done(client) {
            c.net.run_for(Nanos::from_millis(250));
        }
        assert!(c.client_done(client), "round {round} client must finish");
        let after = c.with_proxy(0, |p| p.store().stats());
        let lookups = (after.hits + after.misses) - (before.hits + before.misses);
        let hits = after.hits - before.hits;
        let rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
        hit_rate_curve.push(rate);

        let results = c.client_results(client);
        for r in &results {
            assert_eq!(r.outcome, OpOutcome::Ok, "round {round}: {r:?}");
            let ns = r.latency().0 as f64;
            if round == 0 {
                cold_ns.push(ns);
            } else {
                warm_ns.push(ns);
            }
        }
        eprintln!(
            "round {round}: hit rate {rate:.3} ({hits}/{lookups} lookups), \
             {} reads ok",
            results.len()
        );
    }

    cold_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    warm_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cold_p50 = percentile(&cold_ns, 0.50);
    let cold_p99 = percentile(&cold_ns, 0.99);
    let warm_p50 = percentile(&warm_ns, 0.50);
    let warm_p99 = percentile(&warm_ns, 0.99);
    let speedup = if warm_p50 > 0.0 { cold_p50 / warm_p50 } else { 0.0 };

    let stats = c.with_proxy(0, |p| p.store().stats());
    let fully_cached = (0..n_files)
        .filter(|f| c.with_proxy(0, |p| p.is_advertised(&format!("/bench/f{f}"))))
        .count();
    let text = obs.registry().prometheus_text();
    let origin_bytes = metric(&text, "scalla_pcache_bytes_served_total", "source=\"origin\"");
    let cache_bytes = metric(&text, "scalla_pcache_bytes_served_total", "source=\"cache\"");

    let curve_json: Vec<String> = hit_rate_curve.iter().map(|r| format!("{r:.4}")).collect();
    let doc = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pcache\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"block_size\": {},\n",
            "  \"file_size\": {},\n",
            "  \"files\": {},\n",
            "  \"rounds\": {},\n",
            "  \"hit_rate_curve\": [{}],\n",
            "  \"cold_read_ns\": {{\"p50\": {:.0}, \"p99\": {:.0}}},\n",
            "  \"warm_read_ns\": {{\"p50\": {:.0}, \"p99\": {:.0}}},\n",
            "  \"warm_speedup\": {:.3},\n",
            "  \"origin_bytes\": {},\n",
            "  \"cache_bytes\": {},\n",
            "  \"fills\": {},\n",
            "  \"evictions\": {},\n",
            "  \"fully_cached_files\": {}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        BLOCK,
        FILE_SIZE,
        n_files,
        rounds,
        curve_json.join(", "),
        cold_p50,
        cold_p99,
        warm_p50,
        warm_p99,
        speedup,
        origin_bytes,
        cache_bytes,
        stats.inserts,
        stats.evictions,
        fully_cached,
    );
    std::fs::write("BENCH_pcache.json", &doc).expect("write BENCH_pcache.json");
    print!("{doc}");
}
