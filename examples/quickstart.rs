//! Quickstart: stand up a Scalla cluster, resolve some files, look inside
//! the location cache.
//!
//! Run with: `cargo run --example quickstart`

use scalla::prelude::*;
use scalla::sim::summarize;

fn main() {
    // A 16-server cluster on the deterministic simulated network.
    // Links: 20 µs ± 10 µs one-way, the paper's commodity-LAN regime.
    let mut cluster = SimCluster::build(ClusterConfig::flat(16));

    // Seed a few files: one replicated, one MSS-resident (offline).
    cluster.seed_file(3, "/store/run1/events-0.root", 1 << 20, true);
    cluster.seed_file(7, "/store/run1/events-0.root", 1 << 20, true);
    cluster.seed_file(5, "/store/run1/events-1.root", 1 << 20, true);
    cluster.seed_file(9, "/mss/run0/archive.root", 1 << 22, false);

    // Start everything: servers log in to the manager by declaring their
    // export prefixes — no file manifests are ever exchanged (§V).
    cluster.settle(Nanos::from_secs(2));

    // Script a client: a cold open (query flood), a warm open (cache hit),
    // a replicated open (selection policy picks one holder), and an open
    // of a file that does not exist (full 5 s verdict).
    let ops = vec![
        ClientOp::Open { path: "/store/run1/events-1.root".into(), write: false },
        ClientOp::Open { path: "/store/run1/events-1.root".into(), write: false },
        ClientOp::Open { path: "/store/run1/events-0.root".into(), write: false },
        ClientOp::Open { path: "/store/run1/ghost.root".into(), write: false },
    ];
    let client = cluster.add_client(ops, Nanos::ZERO);
    cluster.start_node(client);
    cluster.net.run_for(Nanos::from_secs(30));

    println!("== per-operation results ==");
    let results = cluster.client_results(client);
    for r in &results {
        println!(
            "{:42} {:>10}  hops={} waits={} outcome={:?} server={:?}",
            r.path,
            format!("{}", r.latency()),
            r.redirects,
            r.waits,
            r.outcome,
            r.server
        );
    }

    println!("\n== aggregate ==");
    println!("{}", summarize(&results).row());

    // Peek inside the manager's location cache.
    let mgr = cluster.managers[0];
    let (stats, entries, buckets) = cluster.with_cmsd(mgr, |n| {
        (n.cache().stats().report(), n.cache().len(), n.cache().bucket_count())
    });
    println!("\n== manager cmsd cache ==");
    println!("entries={entries} buckets={buckets} (Fibonacci)");
    println!("{stats}");

    // The warm open must be much faster than the cold one.
    let cold = results[0].latency();
    let warm = results[1].latency();
    println!("\ncold open: {cold}   warm open: {warm}");
    assert!(warm < cold, "cached resolution must be faster");
    assert_eq!(results[3].outcome, OpOutcome::NotFound);
    println!("quickstart OK");
}
