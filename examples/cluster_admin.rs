//! An operator's dashboard: poll every cmsd in a two-level cluster and
//! print membership, cache, and namespace status — the kind of visibility
//! a production Scalla site runs on, assembled purely from the public API.
//!
//! Run with: `cargo run --example cluster_admin`

use scalla::cache::CacheStats;
use scalla::prelude::*;
use scalla::sim::{workload, ClusterConfig, WorkloadConfig};

fn main() {
    let mut cfg = ClusterConfig::flat(12);
    cfg.fanout = 4; // one supervisor level
    cfg.with_cns = true;
    cfg.supervisor_replicas = 1;
    let mut cluster = SimCluster::build(cfg);

    // Seed a catalog and run some traffic so the dashboard has something
    // to show.
    let catalog = workload::make_catalog(300, "ops");
    let placement = workload::place_catalog(catalog.len(), 12, 2, 3);
    for (i, homes) in placement.iter().enumerate() {
        for &s in homes {
            cluster.seed_file(s, &catalog[i], 1 << 18, true);
        }
    }
    cluster.settle(Nanos::from_secs(2));
    for j in 0..10u64 {
        let wl = WorkloadConfig {
            files_per_job: 12,
            metadata_ops_per_file: 1,
            think: Nanos::ZERO,
            seed: j,
        };
        let ops = workload::analysis_job(&catalog, &wl);
        let c = cluster.add_client(ops, Nanos::from_millis(j * 3));
        cluster.start_node(c);
    }
    cluster.net.run_for(Nanos::from_secs(30));

    // ---- The dashboard ----
    println!("╔══ scalla cluster status ══════════════════════════════════");
    let interior: Vec<(String, Addr)> = cluster
        .managers
        .iter()
        .enumerate()
        .map(|(i, &a)| (format!("mgr-{i}"), a))
        .chain(
            cluster.supervisors.iter().enumerate().map(|(i, &a)| (format!("supervisor #{i}"), a)),
        )
        .collect();
    for (label, addr) in interior {
        let (name, active, offline, entries, buckets, hits, lookups, evictions) = cluster
            .with_cmsd(addr, |n| {
                let s = n.cache().stats();
                (
                    n.name().to_string(),
                    n.members().active().len(),
                    n.members().offline().len(),
                    n.cache().len(),
                    n.cache().bucket_count(),
                    CacheStats::get(&s.hits),
                    CacheStats::get(&s.lookups),
                    CacheStats::get(&s.evictions),
                )
            });
        let hit_pct = if lookups > 0 { 100.0 * hits as f64 / lookups as f64 } else { 0.0 };
        println!(
            "║ {label:14} {name:8} members {active:2} up / {offline} offline │ \
             cache {entries:4}/{buckets:<5} │ hit {hit_pct:5.1}% │ evicted {evictions}"
        );
    }
    println!("╟── data servers ───────────────────────────────────────────");
    for i in 0..cluster.servers.len() {
        let (name, files, free) = cluster
            .with_server(i, |s| (s.name().to_string(), s.fs().file_count(), s.fs().free_bytes()));
        println!("║ {name:8} files {files:4} │ free {:7.1} GiB", free as f64 / (1u64 << 30) as f64);
    }
    if let Some(cns_addr) = cluster.cns {
        let node = cluster.net.node_mut(cns_addr).as_any_mut().unwrap();
        let cns = node.downcast_ref::<CnsNode>().unwrap();
        println!("╟── namespace (cns) ────────────────────────────────────────");
        println!(
            "║ {} files known, {} events processed, top-level: {:?}",
            cns.file_count(),
            cns.events,
            cns.list("/")
        );
    }
    println!("╚═══════════════════════════════════════════════════════════");

    // Dashboard sanity: everyone up, traffic recorded, namespace populated.
    let mgr = cluster.managers[0];
    assert_eq!(cluster.with_cmsd(mgr, |n| n.members().active()).len(), 3);
    let lookups = cluster.with_cmsd(mgr, |n| CacheStats::get(&n.cache().stats().lookups));
    assert!(lookups > 0);
    println!("\ncluster_admin OK");
}
