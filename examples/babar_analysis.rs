//! BaBar-style analysis campaign (§II-A): the workload Scalla was built
//! for — many simultaneous jobs, each doing "several meta-data operations
//! on dozens of files" before reading them, against a two-level 64-ary
//! cluster with MSS-resident files and a prepare-driven bulk transfer.
//!
//! Run with: `cargo run --example babar_analysis`

use scalla::prelude::*;
use scalla::sim::workload;
use scalla::sim::{summarize, WorkloadConfig};
use scalla::util::Histogram;

fn main() {
    // 100 data servers with fanout 16 -> a supervisor level, like a small
    // production site. Short staging for the demo.
    let mut cfg = ClusterConfig::flat(100);
    cfg.fanout = 16;
    cfg.staging_delay = Nanos::from_secs(20);
    cfg.policy = SelectionPolicy::LeastSelected;
    let mut cluster = SimCluster::build(cfg);
    println!(
        "cluster: {} servers, {} supervisors, depth {}",
        cluster.servers.len(),
        cluster.supervisors.len(),
        cluster.spec.depth()
    );

    // A 2 000-file catalog, each file on 2 of the 100 servers; 5 % of the
    // catalog is MSS-resident (offline until staged).
    let catalog = workload::make_catalog(2_000, "babar");
    let placement = workload::place_catalog(catalog.len(), 100, 2, 7);
    for (i, homes) in placement.iter().enumerate() {
        let online = i % 20 != 0;
        for &s in homes {
            cluster.seed_file(s, &catalog[i], 1 << 20, online);
        }
    }
    cluster.settle(Nanos::from_secs(2));

    // 40 analysis jobs, staggered starts, each touching 24 files with 2
    // metadata ops per file (the §II-A shape).
    let mut clients = Vec::new();
    for job in 0..40u64 {
        let wl = WorkloadConfig {
            files_per_job: 24,
            metadata_ops_per_file: 2,
            think: Nanos::from_millis(2),
            seed: 1000 + job,
        };
        let ops = workload::analysis_job(&catalog, &wl);
        let addr = cluster.add_client(ops, Nanos::from_millis(job * 5));
        cluster.start_node(addr);
        clients.push(addr);
    }

    // One bulk-transfer job that prepares its file list first (§III-B2).
    let bulk_paths: Vec<String> = catalog.iter().step_by(40).take(20).cloned().collect();
    let bulk = cluster.add_client(workload::bulk_transfer_job(&bulk_paths), Nanos::ZERO);
    cluster.start_node(bulk);

    cluster.net.run_for(Nanos::from_secs(120));

    // Aggregate per-op latencies across all analysis jobs.
    let mut all = Vec::new();
    for &c in &clients {
        all.extend(cluster.client_results(c));
    }
    let s = summarize(&all);
    println!("\n== analysis jobs ({} ops) ==", s.ok + s.not_found + s.failed);
    println!("{}", s.row());

    let bulk_results = cluster.client_results(bulk);
    let bs = summarize(&bulk_results);
    println!("\n== bulk transfer (prepared) ==");
    println!("{}", bs.row());

    // Distribution of redirection latency for *cache-hit* opens: later
    // accesses to already-located files.
    let mut warm = Histogram::new();
    for r in all.iter().filter(|r| r.waits == 0 && r.outcome == OpOutcome::Ok) {
        warm.record(r.latency());
    }
    println!("\nwarm-path operations: {}", warm.summary());

    // Manager cache statistics: hit ratio should dominate as jobs overlap
    // on popular files.
    let mgr = cluster.managers[0];
    let report = cluster.with_cmsd(mgr, |n| n.cache().stats().report());
    println!("\nmanager cmsd: {report}");

    assert!(s.ok > 0, "analysis jobs must complete operations");
    assert!(bs.ok > 0, "bulk transfer must complete");
    println!("\nbabar_analysis OK");
}
