//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` subset this workspace uses —
//! [`channel::bounded`] with cloneable senders, `try_send`, and
//! `recv_timeout` — on top of `std::sync::mpsc::sync_channel`.

pub mod channel {
    //! Bounded MPSC channels with crossbeam's error vocabulary.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the channel disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone.
        Disconnected,
    }

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or the channel dies).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Enqueues without blocking; fails when full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or every sender is gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receives without blocking, if a message is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip_and_capacity() {
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn recv_timeout_vocabulary() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = bounded::<u64>(8);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || tx.send(t).unwrap()));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
