//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde shim. Nothing in this workspace actually serializes at
//! runtime (the wire codec is hand-written); the derives only need to
//! compile, including `#[serde(...)]` field attributes, which are declared
//! and ignored.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
