//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset this workspace uses: [`Bytes`] (cheaply cloneable,
//! sliceable, immutable), [`BytesMut`] (growable write buffer with a
//! consumed-prefix cursor), and the [`Buf`]/[`BufMut`] traits with the
//! little-endian accessors the wire codec needs. Semantics match the real
//! crate for this subset; performance characteristics are close enough for
//! the simulation workloads (a `Bytes` clone is an `Arc` bump, a slice is
//! offset arithmetic).

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (a view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied into shared storage; the real
    /// crate aliases it, which is indistinguishable to safe callers).
    pub fn from_static(b: &'static [u8]) -> Bytes {
        Bytes::from(b.to_vec())
    }

    /// Bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Copies the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::from(b.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable write buffer with a consumed-prefix read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Bytes before this offset have been consumed by `advance`/`split_to`.
    read: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap), read: 0 }
    }

    /// Unconsumed bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Whether no unconsumed bytes remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Reserves capacity for at least `n` more bytes.
    pub fn reserve(&mut self, n: usize) {
        self.buf.reserve(n);
    }

    /// Drops all content.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.read = 0;
    }

    /// Splits off the first `n` unconsumed bytes into a new buffer.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = self.buf[self.read..self.read + n].to_vec();
        self.read += n;
        self.compact();
        BytesMut { buf: out, read: 0 }
    }

    /// Splits off everything, leaving the buffer empty (capacity kept).
    pub fn split(&mut self) -> BytesMut {
        let n = self.len();
        self.split_to(n)
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.read == 0 {
            Bytes::from(self.buf)
        } else {
            Bytes::from(self.buf[self.read..].to_vec())
        }
    }

    /// Reclaims consumed-prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.read > 4096 && self.read * 2 >= self.buf.len() {
            self.buf.drain(..self.read);
            self.read = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl std::ops::DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.buf[read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::from(self.as_ref().to_vec()).fmt(f)
    }
}

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes (always the full remainder in this shim).
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.read += cnt;
        self.compact();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_clone_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2, 3]));
        let c = b.clone();
        assert_eq!(c, b);
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn buf_le_roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.copy_to_bytes(3), Bytes::from_static(b"xyz"));
        assert!(!r.has_remaining());
    }

    #[test]
    fn bytesmut_split_and_advance() {
        let mut b = BytesMut::with_capacity(16);
        b.extend_from_slice(b"abcdef");
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
        b.advance(1);
        assert_eq!(&b[..], b"def");
        let rest = b.split();
        assert!(b.is_empty());
        assert_eq!(rest.freeze(), Bytes::from_static(b"def"));
    }

    #[test]
    fn frozen_after_advance_drops_consumed_prefix() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"HHHHpayload");
        b.advance(4);
        assert_eq!(b.freeze(), Bytes::from_static(b"payload"));
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[9, 1, 0, 0, 0];
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 0);
    }
}
