//! Offline stand-in for the `serde` crate.
//!
//! This workspace derives `Serialize`/`Deserialize` on a few message and
//! statistics types but never serializes them at runtime (the wire format
//! is a hand-written codec in `scalla-proto`). The shim therefore only has
//! to make the derives and the one hand-written adapter module compile:
//! the derive macros are no-ops, and the traits carry the minimal surface
//! referenced by that adapter (`Serializer::serialize_bytes`,
//! `Vec::<u8>::deserialize`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the no-op derive emits no impl, and nothing requires one.
pub trait Serialize {}

/// Deserialization entry point; only `Vec<u8>` is implemented, for the
/// byte-field adapter in `scalla-proto`.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Minimal serializer contract.
pub trait Serializer: Sized {
    /// Successful output type.
    type Ok;
    /// Error type.
    type Error;

    /// Serializes a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// Minimal deserializer contract.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error;
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        // No self-describing format exists in this shim; an empty value is
        // the only constructible answer, and no caller runs this path.
        Ok(Vec::new())
    }
}
