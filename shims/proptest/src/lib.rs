//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic property-testing engine exposing the proptest API subset
//! this workspace uses: the `proptest!` test macro (both `x: Type` and
//! `x in strategy` parameter forms, plus `#![proptest_config(..)]`),
//! `prop_oneof!` (weighted and unweighted), `Just`, `.prop_map`, integer
//! range strategies, tuple strategies, `any::<T>()`, and
//! `collection::vec`.
//!
//! Differences from the real crate: generation is a fixed-seed xorshift
//! stream (override with `PROPTEST_SEED`), there is no shrinking, and a
//! failing case panics after printing the generated inputs.

/// Runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Number of generated cases per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases to run for each `#[test]` inside `proptest!`.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xorshift64* generator. Fixed seed by default so CI
    /// runs are reproducible; set `PROPTEST_SEED` to explore other streams.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from `PROPTEST_SEED` or a fixed default.
        pub fn default_rng() -> TestRng {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            TestRng::from_seed(seed)
        }

        /// RNG with an explicit seed (zero is remapped: xorshift fixpoint).
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: if seed == 0 { 0xDEAD_BEEF_CAFE_F00D } else { seed } }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is acceptable for a test-input generator.
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree or shrinking; `sample`
    /// draws one concrete value.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `func`.
        fn prop_map<U, F>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, func }
        }
    }

    /// Boxes a strategy as a trait object (used by `prop_oneof!`).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.func)(self.source.sample(rng))
        }
    }

    /// Weighted choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Union over `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, strategy) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strategy.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("pick < total by construction")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // 53-bit fraction in [0, 1); plenty for test inputs.
                    let frac = (rng.next_u64() >> 11) as $t
                        / (1u64 << 53) as $t;
                    self.start + frac * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// Pattern-string strategies, as in proptest's regex support, limited
    /// to the subset this workspace uses: a literal string, or one char
    /// class with ranges followed by a `{min,max}` repetition, e.g.
    /// `"[ -~]{0,24}"`.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let bytes = pattern.as_bytes();
        if !pattern.contains(['[', '{', '*', '+', '?', '|', '(', '\\']) {
            return pattern.to_string();
        }
        let close = pattern
            .find(']')
            .filter(|_| bytes.first() == Some(&b'['))
            .unwrap_or_else(|| panic!("unsupported pattern strategy: {pattern:?}"));
        let class: Vec<(char, char)> = parse_class(&pattern[1..close]);
        let (min, max) = parse_repeat(&pattern[close + 1..])
            .unwrap_or_else(|| panic!("unsupported pattern strategy: {pattern:?}"));
        let n = min + rng.below((max - min + 1) as u64) as usize;
        let total: u64 = class.iter().map(|(a, b)| (*b as u64) - (*a as u64) + 1).sum();
        (0..n)
            .map(|_| {
                let mut pick = rng.below(total);
                for (a, b) in &class {
                    let span = (*b as u64) - (*a as u64) + 1;
                    if pick < span {
                        return char::from_u32(*a as u32 + pick as u32).unwrap();
                    }
                    pick -= span;
                }
                unreachable!()
            })
            .collect()
    }

    fn parse_class(body: &str) -> Vec<(char, char)> {
        let chars: Vec<char> = body.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                assert!(chars[i] <= chars[i + 2], "bad class range");
                out.push((chars[i], chars[i + 2]));
                i += 3;
            } else {
                out.push((chars[i], chars[i]));
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty char class");
        out
    }

    fn parse_repeat(rest: &str) -> Option<(usize, usize)> {
        let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = inner.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / 0);
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
        (A / 0, B / 1, C / 2, D / 3, E / 4);
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue {
        /// Draws one arbitrary value.
        fn generate(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    impl ArbitraryValue for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors with length drawn from `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property; failure reports the case inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests. Supports `#![proptest_config(..)]`, doc
/// comments, and parameters in both `name: Type` and `name in strategy`
/// forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Internal: expands each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident ($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run!(($config) ($($params)*) () $body);
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Internal: munches the parameter list into `(name, strategy)` pairs,
/// then emits the case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    // All parameters consumed: run the cases.
    (($config:expr) () ($(($name:ident, $strategy:expr))*) $body:block) => {{
        let config: $crate::test_runner::ProptestConfig = $config;
        let mut rng = $crate::test_runner::TestRng::default_rng();
        for case in 0..config.cases {
            $(let $name = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)*
            let described = format!(
                concat!("[case ", "{}", "]" $(, " ", stringify!($name), " = {:?};")*),
                case $(, &$name)*
            );
            let outcome = ::std::panic::catch_unwind(
                ::std::panic::AssertUnwindSafe(|| $body)
            );
            if let Err(payload) = outcome {
                eprintln!("proptest failure inputs: {described}");
                ::std::panic::resume_unwind(payload);
            }
        }
    }};
    // `name in strategy` parameter.
    (($config:expr) ($name:ident in $strategy:expr $(, $($rest:tt)*)?)
     ($($acc:tt)*) $body:block) => {
        $crate::__proptest_run!(
            ($config) ($($($rest)*)?) ($($acc)* ($name, $strategy)) $body
        )
    };
    // `name: Type` parameter.
    (($config:expr) ($name:ident : $ty:ty $(, $($rest:tt)*)?)
     ($($acc:tt)*) $body:block) => {
        $crate::__proptest_run!(
            ($config) ($($($rest)*)?)
            ($($acc)* ($name, $crate::arbitrary::any::<$ty>())) $body
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::default_rng();
        for _ in 0..1000 {
            let v = (3u8..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u64..1).sample(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn oneof_respects_zero_weight() {
        let strat = prop_oneof![
            1 => Just(1u32),
            0 => Just(2u32),
        ];
        let mut rng = TestRng::default_rng();
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut rng), 1);
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let strat = crate::collection::vec((0u64..8, any::<bool>()), 1..5);
        let mut rng = TestRng::default_rng();
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 8));
        }
    }

    #[test]
    fn determinism_with_same_seed() {
        let strat = crate::collection::vec(0u32..1000, 3..4);
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: mixed parameter forms and assertions.
        #[test]
        fn macro_smoke(
            x: u64,
            y in 1u8..9,
            pairs in crate::collection::vec((0u32..4, any::<bool>()), 0..6),
        ) {
            prop_assert!((1..9).contains(&y));
            prop_assert_eq!(x, x);
            for (n, _) in &pairs {
                prop_assert!(*n < 4);
            }
        }
    }
}
