//! Offline stand-in for the `criterion` crate.
//!
//! A small wall-clock micro-benchmark harness exposing the criterion API
//! subset this workspace uses: `Criterion::bench_function`, `Bencher::iter`
//! / `iter_batched`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Compared to the real crate there is no
//! statistical analysis — each benchmark is warmed up, then timed over
//! enough iterations to fill a fixed measurement window, and the mean time
//! per iteration is printed.
//!
//! Command-line compatibility: `--test` runs every routine exactly once
//! (CI smoke mode), a positional `<filter>` substring selects benchmarks,
//! and `--bench`/`--quick`/other harness flags are accepted and ignored.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; the shim sizes batches the
/// same way for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (large batches).
    SmallInput,
    /// Large per-iteration inputs (small batches).
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Benchmark registry and runner.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Harness flags cargo/criterion users pass; no-ops here.
                "--bench" | "--quick" | "--noplot" | "--verbose" | "-v" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            test_mode,
            filter,
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(700),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            warmup: self.warmup,
            measure: self.measure,
            result: None,
        };
        f(&mut b);
        match b.result {
            _ if self.test_mode => println!("test {name} ... ok"),
            Some((iters, elapsed)) => {
                let per = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<50} time: [{}]  ({iters} iters)", fmt_ns(per));
            }
            None => println!("{name:<50} time: [no measurement]"),
        }
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times one routine.
pub struct Bencher {
    test_mode: bool,
    warmup: Duration,
    measure: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` over a measurement window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_until = Instant::now() + self.warmup;
        let mut batch = 1u64;
        while Instant::now() < warm_until {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_est = t0.elapsed() / batch.max(1) as u32;
            // Aim each warm-up batch at ~10 ms so the estimate stabilizes.
            batch = (10_000_000 / per_est.as_nanos().max(1) as u64).clamp(1, 1 << 24);
        }
        // Measure: run batches until the window is filled.
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        self.result = Some((iters, elapsed));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let deadline = Instant::now() + self.warmup + self.measure;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut warmed = false;
        let mut warm_elapsed = Duration::ZERO;
        while Instant::now() < deadline {
            let inputs: Vec<I> = (0..64).map(|_| setup()).collect();
            let n = inputs.len() as u64;
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed();
            if !warmed {
                warm_elapsed += dt;
                warmed = warm_elapsed >= self.warmup;
                continue;
            }
            elapsed += dt;
            iters += n;
        }
        if iters == 0 {
            // Warm-up consumed the whole window: fall back to one batch.
            let inputs: Vec<I> = (0..64).map(|_| setup()).collect();
            let n = inputs.len() as u64;
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            elapsed = t0.elapsed();
            iters = n;
        }
        self.result = Some((iters, elapsed));
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            warmup: Duration::ZERO,
            measure: Duration::ZERO,
        };
        let mut ran = false;
        c.bench_function("x", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher {
            test_mode: true,
            warmup: Duration::ZERO,
            measure: Duration::ZERO,
            result: None,
        };
        let mut total = 0u64;
        b.iter_batched(|| 2u64, |v| total += v, BatchSize::SmallInput);
        assert_eq!(total, 2);
    }

    #[test]
    fn measurement_mode_reports_iterations() {
        let mut b = Bencher {
            test_mode: false,
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            result: None,
        };
        b.iter(|| black_box(1u64 + 1));
        let (iters, elapsed) = b.result.expect("measured");
        assert!(iters > 0);
        assert!(elapsed >= Duration::from_millis(5));
    }
}
