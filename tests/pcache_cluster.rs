//! The proxy cache tier in full clusters: cold fills, warm hits, V_h
//! advertisement redirecting other clients to the proxy, read-only
//! write handling, survival of origin death, the same flow on the live
//! threaded runtime, and a chaos soak with a proxy in the membership.

use scalla::client::{ClientConfig, ClientNode};
use scalla::prelude::*;
use scalla::sim::LiveNet;
use std::sync::Arc;

const FILE: &str = "/d/big";
const SIZE: u64 = 8 * 1024;
const BLOCK: u32 = 1024;

fn proxy_cfg(n_servers: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::flat(n_servers);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.heartbeat = Nanos::from_millis(500);
    cfg.n_proxies = 1;
    cfg.pcache = PcacheConfig { block_size: BLOCK, ..PcacheConfig::default() };
    cfg.obs = Obs::enabled();
    cfg
}

/// Reads one sample out of a prometheus export by name + label fragment.
fn metric(text: &str, name: &str, label_frag: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.contains(label_frag))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

#[test]
fn cold_read_fills_warm_read_hits_and_file_is_advertised() {
    let cfg = proxy_cfg(3);
    let obs = cfg.obs.clone();
    let mut c = SimCluster::build(cfg);
    c.seed_file(1, FILE, SIZE, true);
    c.settle(Nanos::from_secs(2));

    // Cold: every block must come from the origin data server.
    let cold = c.add_proxy_client(
        0,
        vec![ClientOp::OpenRead { path: FILE.into(), len: SIZE as u32 }],
        Nanos::ZERO,
    );
    c.start_node(cold);
    c.net.run_for(Nanos::from_secs(10));
    let results = c.client_results(cold);
    assert_eq!(results.len(), 1, "{results:?}");
    assert_eq!(results[0].outcome, OpOutcome::Ok, "{results:?}");

    let blocks = SIZE / BLOCK as u64;
    let stats_cold = c.with_proxy(0, |p| p.store().stats());
    assert_eq!(stats_cold.inserts, blocks, "whole file filled block by block");
    assert!(stats_cold.misses >= 1, "cold read must miss: {stats_cold:?}");
    assert!(c.with_proxy(0, |p| p.is_advertised(FILE)), "fully cached ⇒ advertised");

    // Warm: a second client reads the same range with zero new fills.
    let warm = c.add_proxy_client(
        0,
        vec![ClientOp::OpenRead { path: FILE.into(), len: SIZE as u32 }],
        Nanos::ZERO,
    );
    c.start_node(warm);
    c.net.run_for(Nanos::from_secs(10));
    let results = c.client_results(warm);
    assert_eq!(results[0].outcome, OpOutcome::Ok, "{results:?}");
    let stats_warm = c.with_proxy(0, |p| p.store().stats());
    assert_eq!(stats_warm.inserts, stats_cold.inserts, "warm read fetches nothing");
    assert!(stats_warm.hits >= stats_cold.hits + blocks, "all blocks hit");

    // Obs: served-byte counters split by source, fills timed.
    let text = obs.registry().prometheus_text();
    let cache = metric(&text, "scalla_pcache_bytes_served_total", "source=\"cache\"");
    let origin = metric(&text, "scalla_pcache_bytes_served_total", "source=\"origin\"");
    assert!(cache >= SIZE, "warm read served from cache: {text}");
    assert_eq!(origin, SIZE, "cold read came from the origin exactly once: {text}");
    assert_eq!(metric(&text, "scalla_pcache_origin_fetches_total", "pxy-0"), blocks);
    assert!(metric(&text, "scalla_pcache_fill_latency_ns_count", "pxy-0") >= blocks);
    assert_eq!(metric(&text, "scalla_pcache_advertised_files_total", "pxy-0"), 1);
}

#[test]
fn advertised_file_survives_origin_death_via_vh_redirect() {
    let mut c = SimCluster::build(proxy_cfg(3));
    c.seed_file(1, FILE, SIZE, true);
    c.settle(Nanos::from_secs(2));

    // Fill the proxy completely, which advertises the file upward.
    let filler = c.add_proxy_client(
        0,
        vec![ClientOp::OpenRead { path: FILE.into(), len: SIZE as u32 }],
        Nanos::ZERO,
    );
    c.start_node(filler);
    c.net.run_for(Nanos::from_secs(10));
    assert_eq!(c.client_results(filler)[0].outcome, OpOutcome::Ok);
    assert!(c.with_proxy(0, |p| p.is_advertised(FILE)));

    // Kill the only real holder and let the manager notice.
    let origin = c.servers[1];
    c.net.kill(origin);
    c.net.run_for(Nanos::from_secs(5));

    // An ordinary client (talking to the manager, not the proxy) must now
    // be redirected to the proxy — the only live member of V_h — and the
    // whole read must be served without any origin traffic.
    let stats_before = c.with_proxy(0, |p| p.store().stats());
    let reader =
        c.add_client(vec![ClientOp::OpenRead { path: FILE.into(), len: SIZE as u32 }], Nanos::ZERO);
    c.start_node(reader);
    c.net.run_for(Nanos::from_secs(15));
    let results = c.client_results(reader);
    assert_eq!(results[0].outcome, OpOutcome::Ok, "{results:?}");
    assert_eq!(results[0].server.as_deref(), Some("pxy-0"), "{results:?}");
    let stats_after = c.with_proxy(0, |p| p.store().stats());
    assert_eq!(stats_after.inserts, stats_before.inserts, "no origin fetch after death");
    assert_eq!(stats_after.misses, stats_before.misses, "fully cached: zero misses");
}

#[test]
fn write_opens_are_bounced_to_a_real_redirector() {
    let mut c = SimCluster::build(proxy_cfg(3));
    c.seed_file(0, "/d/w", 64, true);
    c.settle(Nanos::from_secs(2));
    let writer = c.add_proxy_client(
        0,
        vec![ClientOp::Open { path: "/d/w".into(), write: true }],
        Nanos::ZERO,
    );
    c.start_node(writer);
    c.net.run_for(Nanos::from_secs(15));
    let results = c.client_results(writer);
    assert_eq!(results[0].outcome, OpOutcome::Ok, "{results:?}");
    assert_eq!(results[0].server.as_deref(), Some("srv-0"), "landed on the real holder");
    assert!(results[0].redirects >= 2, "proxy -> manager -> server: {results:?}");
}

#[test]
fn live_runtime_proxy_serves_cold_then_warm() {
    let mut net = LiveNet::new();
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache = CacheConfig { full_delay: Nanos::from_millis(500), ..CacheConfig::default() };
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let manager = net.add_node(Box::new(CmsdNode::new(mgr_cfg, clock)));
    directory.register("mgr", manager);

    let mut scfg = ServerConfig::new("srv-0", manager);
    scfg.heartbeat = Nanos::from_millis(200);
    let mut srv = ServerNode::new(scfg);
    srv.fs_mut().put_online("/live/p", 4096);
    let saddr = net.add_node(Box::new(srv));
    directory.register("srv-0", saddr);

    let mut pcfg = ProxyConfig::new("pxy-0", manager, directory.clone());
    pcfg.cache = PcacheConfig { block_size: 1024, ..PcacheConfig::default() };
    pcfg.heartbeat = Nanos::from_millis(200);
    let proxy = net.add_node(Box::new(ProxyNode::new(pcfg)));
    directory.register("pxy-0", proxy);

    let ops = vec![
        ClientOp::OpenRead { path: "/live/p".into(), len: 4096 },
        ClientOp::OpenRead { path: "/live/p".into(), len: 4096 },
    ];
    let mut ccfg = ClientConfig::new(proxy, directory, ops);
    ccfg.start_delay = Nanos::from_millis(600);
    ccfg.request_timeout = Nanos::from_secs(5);
    let client = net.add_node(Box::new(ClientNode::new(ccfg)));

    net.start();
    std::thread::sleep(std::time::Duration::from_secs(3));
    let mut nodes = net.shutdown();
    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert_eq!(results.len(), 2, "both reads must complete: {results:?}");
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok), "{results:?}");

    let pxy = nodes[proxy.0 as usize].as_any_mut().unwrap().downcast_ref::<ProxyNode>().unwrap();
    let stats = pxy.store().stats();
    assert_eq!(stats.inserts, 4, "4 KiB in 1 KiB blocks filled once");
    assert!(stats.hits >= 4, "warm read hit every block: {stats:?}");
    assert!(pxy.is_advertised("/live/p"));
}

/// Chaos soak with a proxy in the membership: servers crash and restart
/// under seeded plans while clients read *through the proxy*. Afterwards
/// every script terminated, membership (including the proxy) reconverged,
/// and the §III-A1 invariant held on the manager.
#[test]
fn chaos_crash_restart_with_proxy_passes_invariant_audit() {
    const N: usize = 4;
    for seed in [1101, 2202] {
        let mut cfg = proxy_cfg(N);
        cfg.membership.drop_after = Nanos::from_secs(3600);
        cfg.seed = seed;
        let mut c = SimCluster::build(cfg);
        for i in 0..N {
            c.seed_file(i, &format!("/d/f{i}"), 2048, true);
        }
        c.settle(Nanos::from_secs(2));

        let start = c.net.now() + Nanos::from_secs(1);
        let horizon = start + Nanos::from_secs(30);
        let targets = c.servers.clone();
        let spine = c.managers.clone();
        let plan =
            FaultPlan::random(seed, ChaosProfile::CrashRestart, &targets, &spine, start, horizon);
        let mut sched = ChaosScheduler::new(plan);

        let mut clients = Vec::new();
        for k in 0..2usize {
            let ops: Vec<ClientOp> = (0..6)
                .flat_map(|j| {
                    vec![
                        ClientOp::OpenRead { path: format!("/d/f{}", (j + k) % N), len: 2048 },
                        ClientOp::Sleep { duration: Nanos::from_secs(3) },
                    ]
                })
                .collect();
            let client = c.add_proxy_client(0, ops, Nanos::ZERO);
            c.start_node(client);
            clients.push(client);
        }

        sched.run(&mut c.net, horizon);
        assert!(sched.exhausted(), "plan applied by horizon [seed={seed}]");

        let cap = horizon + Nanos::from_secs(900);
        while c.net.now() < cap && !clients.iter().all(|&cl| c.client_done(cl)) {
            c.net.run_for(Nanos::from_secs(5));
        }
        c.net.run_for(Nanos::from_secs(30));

        for &client in &clients {
            assert!(c.client_done(client), "script must terminate [seed={seed}]");
            let results = c.client_results(client);
            let opens = results.iter().filter(|r| r.path != "<sleep>").count();
            assert_eq!(opens, 6, "every op records a verdict [seed={seed}]: {results:?}");
        }

        // Membership reconverged: N servers plus the proxy.
        let mgr = c.managers[0];
        let active = c.with_cmsd(mgr, |n| n.members().active());
        assert_eq!(active.len(), (N + 1) as u32, "reconvergence [seed={seed}]");

        for addr in c.managers.clone() {
            let (checked, violations) = c.with_cmsd(addr, |n| n.cache().invariant_violations());
            assert_eq!(violations, 0, "invariant broke in {checked} entries [seed={seed}]");
        }
    }
}
