//! The proxy cache tier over real TCP sockets — the acceptance flow:
//! a cold read fills the proxy from the origin, a repeat read generates
//! **zero** origin traffic (asserted via the admin endpoint's served-byte
//! counters), and after the origin server is killed the proxy keeps
//! serving the fully cached file.

use scalla::client::{ClientConfig, ClientNode};
use scalla::prelude::*;
use scalla::sim::{assert_poll, scrape, TcpNet};
use std::sync::Arc;
use std::time::Duration;

const FILE: &str = "/tcp/cached";
const SIZE: u64 = 32 * 1024;
const BLOCK: u32 = 16 * 1024;
const BLOCKS: u64 = SIZE / BLOCK as u64;

/// Reads one sample out of a prometheus export by name + label fragment.
fn metric(text: &str, name: &str, label_frag: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.contains(label_frag))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

#[test]
fn tcp_proxy_cold_warm_and_origin_death() {
    let obs = Obs::with_config(1, 4096);
    let mut net = TcpNet::new().expect("bind localhost");
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache = CacheConfig { full_delay: Nanos::from_millis(500), ..CacheConfig::default() };
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let mut mgr_node = CmsdNode::new(mgr_cfg, clock);
    mgr_node.set_obs(obs.clone());
    let manager = net.add_node(Box::new(mgr_node)).unwrap();
    directory.register("mgr", manager);

    let mut origin = Addr(0);
    for i in 0..2 {
        let name = format!("srv-{i}");
        let mut cfg = ServerConfig::new(&name, manager);
        cfg.heartbeat = Nanos::from_millis(200);
        let mut node = ServerNode::new(cfg);
        if i == 0 {
            node.fs_mut().put_online(FILE, SIZE);
        }
        let addr = net.add_node(Box::new(node)).unwrap();
        directory.register(&name, addr);
        if i == 0 {
            origin = addr;
        }
    }

    let mut pcfg = ProxyConfig::new("pxy-0", manager, directory.clone());
    pcfg.cache = PcacheConfig { block_size: BLOCK, ..PcacheConfig::default() };
    pcfg.heartbeat = Nanos::from_millis(200);
    pcfg.request_timeout = Nanos::from_secs(2);
    let mut pxy_node = ProxyNode::new(pcfg);
    pxy_node.set_obs(obs.clone());
    let proxy = net.add_node(Box::new(pxy_node)).unwrap();
    directory.register("pxy-0", proxy);

    // Three staggered readers, all pointed at the proxy: cold at 0.8 s,
    // warm at 3 s, and a post-kill reader at 10 s.
    let mut clients = Vec::new();
    for delay_ms in [800u64, 3_000, 10_000] {
        let ops = vec![ClientOp::OpenRead { path: FILE.into(), len: SIZE as u32 }];
        let mut ccfg = ClientConfig::new(proxy, directory.clone(), ops);
        ccfg.start_delay = Nanos::from_millis(delay_ms);
        ccfg.request_timeout = Nanos::from_secs(5);
        clients.push(net.add_node(Box::new(ClientNode::new(ccfg))).unwrap());
    }

    let admin = net.serve_admin(obs.clone()).expect("admin endpoint binds");
    net.start();

    // Phase 1 — cold fill: the whole file crosses the origin link once.
    assert_poll(Duration::from_secs(10), "cold read fills from origin", || {
        let text = scrape(admin, "/metrics").unwrap_or_default();
        metric(&text, "scalla_pcache_bytes_served_total", "source=\"origin\"") >= SIZE
    });
    let text = scrape(admin, "/metrics").expect("scrape after cold");
    let origin_after_cold = metric(&text, "scalla_pcache_bytes_served_total", "source=\"origin\"");
    assert_eq!(origin_after_cold, SIZE, "cold read is all origin bytes:\n{text}");
    assert_eq!(metric(&text, "scalla_pcache_origin_fetches_total", "pxy-0"), BLOCKS, "{text}");

    // Phase 2 — warm repeat: served from cache, zero new origin traffic.
    assert_poll(Duration::from_secs(10), "warm read served from cache", || {
        let text = scrape(admin, "/metrics").unwrap_or_default();
        metric(&text, "scalla_pcache_bytes_served_total", "source=\"cache\"") >= SIZE
    });
    let text = scrape(admin, "/metrics").expect("scrape after warm");
    assert_eq!(
        metric(&text, "scalla_pcache_bytes_served_total", "source=\"origin\""),
        origin_after_cold,
        "repeat read must generate zero origin traffic:\n{text}"
    );
    assert_eq!(metric(&text, "scalla_pcache_origin_fetches_total", "pxy-0"), BLOCKS, "{text}");

    // Phase 3 — origin death: the fully cached file stays servable.
    net.kill(origin);
    assert_poll(Duration::from_secs(15), "post-kill read served from cache", || {
        let text = scrape(admin, "/metrics").unwrap_or_default();
        metric(&text, "scalla_pcache_bytes_served_total", "source=\"cache\"") >= 2 * SIZE
    });
    let text = scrape(admin, "/metrics").expect("scrape after kill");
    assert_eq!(
        metric(&text, "scalla_pcache_bytes_served_total", "source=\"origin\""),
        origin_after_cold,
        "a dead origin cannot have served bytes:\n{text}"
    );

    let mut nodes = net.shutdown();
    for &client in &clients {
        let results = nodes[client.0 as usize]
            .as_any_mut()
            .unwrap()
            .downcast_ref::<ClientNode>()
            .unwrap()
            .results()
            .to_vec();
        assert_eq!(results.len(), 1, "op must terminate: {results:?}");
        assert_eq!(results[0].outcome, OpOutcome::Ok, "{results:?}");
    }
    let pxy = nodes[proxy.0 as usize].as_any_mut().unwrap().downcast_ref::<ProxyNode>().unwrap();
    assert!(pxy.is_advertised(FILE), "fully cached file advertised upward");
    let stats = pxy.store().stats();
    assert_eq!(stats.inserts, BLOCKS, "each block fetched exactly once: {stats:?}");
    assert!(stats.hits >= 2 * BLOCKS, "warm + post-kill reads all hit: {stats:?}");
}
