//! Chaos soak: seeded fault plans driven against full clusters while
//! scripted clients keep working. After every run the harness asserts the
//! §III invariants survived: `V_q ∩ (V_h ∪ V_p) = ∅` everywhere, every
//! client operation terminated, membership reconverged, and every
//! `peer_dead` recovery event was paired with a `peer_reconnected`.
//! Failures print the profile + seed so the run can be replayed verbatim.

use scalla::prelude::*;
use scalla::sim::ClusterConfig;
use std::collections::HashMap;

const N_SERVERS: usize = 6;
const OPS_PER_CLIENT: usize = 10;

fn chaos_cfg(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::flat(N_SERVERS);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.heartbeat = Nanos::from_millis(500);
    // No drops mid-soak: reconnects must be §III-A4 case 3, not case 4.
    cfg.membership.drop_after = Nanos::from_secs(3600);
    cfg.seed = seed;
    cfg.obs = Obs::enabled();
    cfg
}

/// Reads one labelled recovery counter out of a prometheus export.
fn recovery_count(text: &str, event: &str) -> u64 {
    let needle = format!("scalla_recovery_events_total{{event=\"{event}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .map(|v| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

/// Whether the applied plan held any disruption long enough that the
/// manager's health timer (offline_after = 3 s + ≤1.5 s detection lag)
/// must have declared a peer dead.
fn had_long_outage(applied: &[(Nanos, Fault)]) -> bool {
    let threshold = Nanos::from_secs(6);
    let mut crash_at: HashMap<Addr, Nanos> = HashMap::new();
    let mut cut_at: HashMap<(Addr, Addr), Nanos> = HashMap::new();
    let mut long = false;
    for (at, fault) in applied {
        match *fault {
            Fault::Crash(a) => {
                crash_at.insert(a, *at);
            }
            Fault::Restart(a) => {
                if let Some(t0) = crash_at.remove(&a) {
                    long |= at.since(t0) > threshold;
                }
            }
            Fault::Partition(a, b) => {
                cut_at.insert((a, b), *at);
            }
            Fault::Heal(a, b) => {
                if let Some(t0) = cut_at.remove(&(a, b)) {
                    long |= at.since(t0) > threshold;
                }
            }
            _ => {}
        }
    }
    long
}

/// One full soak: build, fault, converge, audit.
fn soak(profile: ChaosProfile, seed: u64) {
    let cfg = chaos_cfg(seed);
    let obs = cfg.obs.clone();
    let mut c = SimCluster::build(cfg);
    for i in 0..N_SERVERS {
        c.seed_file(i, &format!("/d/f{i}"), 1, true);
    }
    c.settle(Nanos::from_secs(2));

    let start = c.net.now() + Nanos::from_secs(1);
    let horizon = start + Nanos::from_secs(40);
    let targets = c.servers.clone();
    let spine = c.managers.clone();
    let plan = FaultPlan::random(seed, profile, &targets, &spine, start, horizon);
    let mut sched = ChaosScheduler::with_obs(plan, obs.clone());

    let mut clients = Vec::new();
    for k in 0..3usize {
        let ops: Vec<ClientOp> = (0..OPS_PER_CLIENT)
            .flat_map(|j| {
                vec![
                    ClientOp::Open { path: format!("/d/f{}", (j + k) % N_SERVERS), write: false },
                    ClientOp::Sleep { duration: Nanos::from_secs(3) },
                ]
            })
            .collect();
        let client = c.add_client_with(|cc| {
            cc.ops = ops.clone();
            cc.request_timeout = Nanos::from_secs(2);
            cc.retry.max_waits = 6;
            cc.retry.op_deadline = Nanos::from_secs(60);
        });
        c.start_node(client);
        clients.push(client);
    }

    sched.run(&mut c.net, horizon);
    assert!(sched.exhausted(), "plan must be fully applied by its horizon");

    // Convergence: run until every client script is done (bounded), then a
    // quiet window so reconnect traffic settles membership.
    let replay = format!("[profile={} seed={seed}]", profile.name());
    let cap = horizon + Nanos::from_secs(900);
    while c.net.now() < cap && !clients.iter().all(|&cl| c.client_done(cl)) {
        c.net.run_for(Nanos::from_secs(5));
    }
    c.net.run_for(Nanos::from_secs(30));

    // 1. Every operation terminated — no hangs, no lost clients.
    for &client in &clients {
        assert!(c.client_done(client), "client script must terminate {replay}");
        let results = c.client_results(client);
        let opens = results.iter().filter(|r| r.path != "<sleep>").count();
        assert_eq!(opens, OPS_PER_CLIENT, "all ops must record a verdict {replay}: {results:?}");
    }

    // 2. Membership reconverged: every fault was healed before the
    // horizon, so all servers must be active again.
    let mgr = c.managers[0];
    let active = c.with_cmsd(mgr, |n| n.members().active());
    assert_eq!(active.len(), N_SERVERS as u32, "membership must reconverge {replay}");

    // 3. The paper's structural invariant held everywhere.
    for addr in c.managers.clone() {
        let (checked, violations) = c.with_cmsd(addr, |n| n.cache().invariant_violations());
        assert_eq!(violations, 0, "V_q ∩ (V_h ∪ V_p) ≠ ∅ in {checked} audited entries {replay}");
    }

    // 4. Recovery bookkeeping pairs up: every declared death was followed
    // by a reconnect once the fault cleared.
    let text = obs.registry().prometheus_text();
    let dead = recovery_count(&text, "peer_dead");
    let reconnected = recovery_count(&text, "peer_reconnected");
    assert_eq!(dead, reconnected, "unpaired recovery events {replay}\n{text}");
    if had_long_outage(&sched.applied) {
        assert!(dead >= 1, "a long outage must be detected as peer_dead {replay}");
    }
}

#[test]
fn soak_crash_restart_three_seeds() {
    for seed in [101, 202, 303] {
        soak(ChaosProfile::CrashRestart, seed);
    }
}

#[test]
fn soak_partition_heal_three_seeds() {
    for seed in [404, 505, 606] {
        soak(ChaosProfile::PartitionHeal, seed);
    }
}

#[test]
fn soak_loss_burst_three_seeds() {
    for seed in [707, 808, 909] {
        soak(ChaosProfile::LossBurst, seed);
    }
}

/// The no-fault control run: identical harness, empty plan. Anything other
/// than a perfect score here means the harness itself (not the injected
/// chaos) loses messages.
#[test]
fn control_run_without_faults_is_lossless() {
    let cfg = chaos_cfg(9999);
    let obs = cfg.obs.clone();
    let mut c = SimCluster::build(cfg);
    for i in 0..N_SERVERS {
        c.seed_file(i, &format!("/d/f{i}"), 1, true);
    }
    c.settle(Nanos::from_secs(2));
    let mut sched = ChaosScheduler::with_obs(FaultPlan::empty(), obs.clone());

    let ops: Vec<ClientOp> =
        (0..N_SERVERS).map(|i| ClientOp::Open { path: format!("/d/f{i}"), write: false }).collect();
    let client = c.add_client(ops, Nanos::ZERO);
    c.start_node(client);
    let until = c.net.now() + Nanos::from_secs(60);
    sched.run(&mut c.net, until);

    let results = c.client_results(client);
    assert_eq!(results.len(), N_SERVERS);
    for r in &results {
        assert_eq!(r.outcome, OpOutcome::Ok, "control run must be perfect: {r:?}");
    }
    let stats = c.net.stats();
    assert_eq!(stats.dropped, 0, "zero silent message loss in the control run");
    assert_eq!(stats.duplicated, 0);
    let text = obs.registry().prometheus_text();
    assert_eq!(recovery_count(&text, "peer_dead"), 0, "{text}");
}

/// Satellite regression: at-least-once delivery. With heavy duplication
/// and reordering injected, every handler must stay idempotent — location
/// state converges to the same `V_h`/`V_p` and the invariant holds.
#[test]
fn duplicated_and_reordered_delivery_is_idempotent() {
    let mut cfg = chaos_cfg(77);
    cfg.n_servers = 4;
    let mut c = SimCluster::build(cfg);
    c.seed_file(1, "/d/f", 1, true);
    c.seed_file(2, "/d/f", 1, true);
    c.settle(Nanos::from_secs(2));
    c.net.set_dup_permille(400);
    c.net.set_reorder_jitter(Nanos::from_micros(200));

    let ops: Vec<ClientOp> = (0..10)
        .flat_map(|_| {
            vec![
                ClientOp::Open { path: "/d/f".into(), write: false },
                ClientOp::Sleep { duration: Nanos::from_millis(500) },
            ]
        })
        .collect();
    let client = c.add_client_with(|cc| {
        cc.ops = ops.clone();
        cc.request_timeout = Nanos::from_secs(2);
    });
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(120));

    let results = c.client_results(client);
    let opens: Vec<_> = results.iter().filter(|r| r.path != "<sleep>").collect();
    assert_eq!(opens.len(), 10, "every op must terminate under duplication");
    for r in &opens {
        assert_eq!(r.outcome, OpOutcome::Ok, "{r:?}");
    }
    assert!(c.net.stats().duplicated > 0, "duplication must actually have fired");

    let mgr = c.managers[0];
    let state = c.with_cmsd(mgr, |n| n.cache().peek("/d/f")).expect("cached");
    assert!(state.vh.is_subset(ServerSet(0b0110)), "only true holders recorded: {state:?}");
    let (_, violations) = c.with_cmsd(mgr, |n| n.cache().invariant_violations());
    assert_eq!(violations, 0);
}

/// Satellite: the retry budget is a hard stop. With every server offline
/// the cluster keeps answering Wait, and the client must surface a
/// terminal GaveUp — not hang, not fake an Ok.
#[test]
fn retry_budget_exhaustion_is_terminal_not_a_hang() {
    let mut c = SimCluster::build(chaos_cfg(55));
    c.seed_file(1, "/d/f", 1, true);
    c.settle(Nanos::from_secs(2));
    for addr in c.servers.clone() {
        c.net.kill(addr);
    }
    c.net.run_for(Nanos::from_secs(8)); // manager marks everyone offline

    let client = c.add_client_with(|cc| {
        cc.ops = vec![ClientOp::Open { path: "/d/f".into(), write: false }];
        cc.request_timeout = Nanos::from_secs(2);
        cc.retry.max_waits = 4;
    });
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(300));

    let results = c.client_results(client);
    assert_eq!(results.len(), 1, "op must terminate");
    assert_eq!(results[0].outcome, OpOutcome::GaveUp, "budget exhaustion is terminal: {results:?}");
}
