//! Cluster Name Space daemon end-to-end (footnote 3, §V): the cluster
//! itself never answers `ls`, but the CNS composes the namespace from
//! server notifications — initial sync at start plus create/delete events.

use scalla::prelude::*;
use scalla::sim::ClusterConfig;

fn cns_cluster(n: usize) -> SimCluster {
    let mut cfg = ClusterConfig::flat(n);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.with_cns = true;
    SimCluster::build(cfg)
}

#[test]
fn initial_sync_builds_composite_namespace() {
    let mut c = cns_cluster(4);
    c.seed_file(0, "/store/run1/a.root", 1, true);
    c.seed_file(1, "/store/run1/b.root", 1, true);
    c.seed_file(2, "/store/run2/c.root", 1, true);
    // Replica of a.root on a second server: must list once.
    c.seed_file(3, "/store/run1/a.root", 1, true);
    c.settle(Nanos::from_secs(2));

    let client = c.add_client(
        vec![
            ClientOp::List { dir: "/store/run1".into() },
            ClientOp::List { dir: "/store".into() },
            ClientOp::List { dir: "/nope".into() },
        ],
        Nanos::ZERO,
    );
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(5));
    let r = c.client_results(client);
    assert!(r.iter().all(|x| x.outcome == OpOutcome::Ok));
    assert_eq!(r[0].entries, vec!["a.root", "b.root"]);
    assert_eq!(r[1].entries, vec!["run1", "run2"]);
    assert!(r[2].entries.is_empty());
}

#[test]
fn created_files_appear_in_listings() {
    let mut c = cns_cluster(4);
    c.settle(Nanos::from_secs(2));
    let client = c.add_client(
        vec![
            ClientOp::Create {
                path: "/out/new1.root".into(),
                data: bytes::Bytes::from_static(b"x"),
            },
            ClientOp::List { dir: "/out".into() },
        ],
        Nanos::ZERO,
    );
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(30)); // creation pays the full delay
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok, "{r:?}");
    assert_eq!(r[1].outcome, OpOutcome::Ok);
    assert_eq!(r[1].entries, vec!["new1.root"]);
}

#[test]
fn deletions_remove_entries_when_last_replica_goes() {
    let mut c = cns_cluster(4);
    c.seed_file(0, "/d/f.root", 1, true);
    c.seed_file(1, "/d/f.root", 1, true);
    c.settle(Nanos::from_secs(2));

    // Node-level delete on one replica: still listed.
    let cns_addr = c.cns.unwrap();
    let srv0 = c.servers[0];
    // Drive the deletion through the node API so the NsEvent flows.
    {
        let node = c.net.node_mut(srv0).as_any_mut().unwrap();
        let server = node.downcast_mut::<scalla::node::ServerNode>().unwrap();
        struct DirectCtx<'a> {
            q: &'a mut Vec<(Addr, Msg)>,
        }
        impl NetCtx for DirectCtx<'_> {
            fn now(&self) -> Nanos {
                Nanos::ZERO
            }
            fn me(&self) -> Addr {
                Addr(0)
            }
            fn send(&mut self, to: Addr, msg: Msg) {
                self.q.push((to, msg));
            }
            fn set_timer(&mut self, _: Nanos, _: u64) {}
            fn rand_u64(&mut self) -> u64 {
                0
            }
        }
        let mut q = Vec::new();
        let mut ctx = DirectCtx { q: &mut q };
        assert!(server.delete(&mut ctx, "/d/f.root"));
        // Relay the captured NsEvent into the network.
        for (to, msg) in q {
            assert_eq!(to, cns_addr);
            c.net.inject(srv0, to, msg);
        }
    }
    c.net.run_for(Nanos::from_secs(1));

    let client = c.add_client(vec![ClientOp::List { dir: "/d".into() }], Nanos::ZERO);
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(2));
    let r = c.client_results(client);
    assert_eq!(r[0].entries, vec!["f.root"], "one replica remains listed");
}

#[test]
fn list_at_data_server_is_rejected() {
    // §II-B4: ls across the cluster is deliberately absent from the data
    // path. Sending List straight to a server must error, not hang.
    let mut c = cns_cluster(2);
    c.settle(Nanos::from_secs(2));
    let srv = c.servers[0];
    c.net.inject(Addr(9999), srv, ClientMsg::List { dir: "/".into() }.into());
    // Nothing to assert beyond "no panic, message consumed": run it.
    c.net.run_for(Nanos::from_secs(1));
}
