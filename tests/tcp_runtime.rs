//! Full cluster over real TCP sockets: logins, locate floods, redirects,
//! and file I/O all cross the wire through the binary codec.

use bytes::Bytes;
use scalla::cache::CacheConfig;
use scalla::client::{ClientConfig, ClientNode, ClientOp, Directory, OpOutcome};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla::prelude::*;
use scalla::sim::TcpNet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn tcp_cluster_end_to_end() {
    let mut net = TcpNet::new().expect("bind localhost");
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache = CacheConfig { full_delay: Nanos::from_millis(500), ..CacheConfig::default() };
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let manager = net.add_node(Box::new(CmsdNode::new(mgr_cfg, clock))).unwrap();
    directory.register("mgr", manager);

    for i in 0..3 {
        let name = format!("srv-{i}");
        let mut cfg = ServerConfig::new(&name, manager);
        cfg.heartbeat = Nanos::from_millis(200);
        let mut node = ServerNode::new(cfg);
        if i == 1 {
            node.fs_mut().put_online("/tcp/hello", 256);
        }
        let addr = net.add_node(Box::new(node)).unwrap();
        directory.register(&name, addr);
    }

    let ops = vec![
        ClientOp::OpenRead { path: "/tcp/hello".into(), len: 64 },
        ClientOp::OpenRead { path: "/tcp/hello".into(), len: 64 },
        ClientOp::Open { path: "/tcp/ghost".into(), write: false },
    ];
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_millis(800);
    ccfg.request_timeout = Nanos::from_secs(5);
    let client = net.add_node(Box::new(ClientNode::new(ccfg))).unwrap();

    net.start();
    std::thread::sleep(std::time::Duration::from_secs(4));
    let mut nodes = net.shutdown();
    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert_eq!(results.len(), 3, "all ops must terminate: {results:?}");
    assert_eq!(results[0].outcome, OpOutcome::Ok, "{results:?}");
    assert_eq!(results[0].server.as_deref(), Some("srv-1"));
    assert_eq!(results[1].outcome, OpOutcome::Ok);
    assert!(
        results[1].latency() <= results[0].latency(),
        "warm open can't be slower than cold: {results:?}"
    );
    assert_eq!(results[2].outcome, OpOutcome::NotFound);
    assert!(results[2].latency() >= Nanos::from_millis(500), "full delay over TCP");
}

/// Replies to every `Open` with `OpenOk`.
struct EchoNode;
impl Node for EchoNode {
    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        if matches!(msg, Msg::Client(ClientMsg::Open { .. })) {
            ctx.send(from, ServerMsg::OpenOk { handle: 7 }.into());
        }
    }
}

fn open_msg() -> Msg {
    ClientMsg::Open { path: "/stress".into(), write: false, refresh: false, avoid: None }.into()
}

/// Keeps `window` requests in flight to each echo peer until `per_peer`
/// replies have come back from every one of them.
struct Pinger {
    echoes: Vec<Addr>,
    window: u64,
    per_peer: u64,
    sent: HashMap<Addr, u64>,
    replies: Arc<AtomicU64>,
}

impl Node for Pinger {
    fn on_start(&mut self, ctx: &mut dyn NetCtx) {
        for &echo in &self.echoes.clone() {
            let burst = self.window.min(self.per_peer);
            for _ in 0..burst {
                ctx.send(echo, open_msg());
            }
            self.sent.insert(echo, burst);
        }
    }
    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        if !matches!(msg, Msg::Server(ServerMsg::OpenOk { handle: 7 })) {
            return;
        }
        self.replies.fetch_add(1, Ordering::SeqCst);
        let sent = self.sent.entry(from).or_insert(0);
        if *sent < self.per_peer {
            *sent += 1;
            ctx.send(from, open_msg());
        }
    }
}

/// Hundreds of concurrent round-trips across several nodes: below queue
/// and mailbox capacity the egress pipeline must lose nothing.
#[test]
fn tcp_stress_zero_loss_below_capacity() {
    const ECHOES: usize = 3;
    const PINGERS: usize = 3;
    const PER_PEER: u64 = 100;

    let mut net = TcpNet::new().expect("bind localhost");
    let mut echoes = Vec::new();
    for _ in 0..ECHOES {
        echoes.push(net.add_node(Box::new(EchoNode)).unwrap());
    }
    let replies = Arc::new(AtomicU64::new(0));
    for _ in 0..PINGERS {
        net.add_node(Box::new(Pinger {
            echoes: echoes.clone(),
            window: 8,
            per_peer: PER_PEER,
            sent: HashMap::new(),
            replies: replies.clone(),
        }))
        .unwrap();
    }
    net.start();

    let expect = (ECHOES * PINGERS) as u64 * PER_PEER;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while replies.load(Ordering::SeqCst) < expect && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(replies.load(Ordering::SeqCst), expect, "every round-trip must complete");

    let counters = net.counters();
    assert_eq!(counters.total_mailbox_drops(), 0, "{}", counters.row());
    assert_eq!(counters.egress.queue_drops, 0, "{}", counters.row());
    assert_eq!(counters.egress.conn_drops, 0, "{}", counters.row());
    // 2 wire frames per round-trip, plus nothing else on this net.
    assert_eq!(counters.egress.frames, 2 * expect, "{}", counters.row());
    net.shutdown();
}

/// Floods a black-hole peer (accepts, never reads) with large frames while
/// running echo round-trips with a healthy peer. The kernel socket to the
/// black hole wedges almost immediately; with the old inline-write design
/// the protocol thread would block in `write_all` and the echo traffic
/// would stall. With queued egress the echo traffic must keep flowing.
#[test]
fn stalled_peer_does_not_block_protocol_thread() {
    const FLOOD_FRAMES: u64 = 256; // 256 × 64 KiB ≫ kernel socket buffers
    const ECHO_GOAL: u64 = 200;
    const TOK_FLOOD: u64 = 1;

    // The black hole: accepts connections, holds them open, reads nothing.
    let hole_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let hole_addr = hole_listener.local_addr().unwrap();
    let held = Arc::new(std::sync::Mutex::new(Vec::new()));
    {
        let held = held.clone();
        // Detached on purpose: it blocks in accept for the process
        // lifetime; the test only needs the sockets kept open (unread).
        std::thread::spawn(move || {
            while let Ok((stream, _)) = hole_listener.accept() {
                held.lock().unwrap().push(stream);
            }
        });
    }

    struct Flooder {
        hole: Addr,
        echo: Addr,
        to_flood: u64,
        replies: Arc<AtomicU64>,
    }
    impl Node for Flooder {
        fn on_start(&mut self, ctx: &mut dyn NetCtx) {
            for _ in 0..4 {
                ctx.send(self.echo, open_msg());
            }
            ctx.set_timer(Nanos::from_millis(1), TOK_FLOOD);
        }
        fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
            if token != TOK_FLOOD || self.to_flood == 0 {
                return;
            }
            self.to_flood -= 1;
            // A 64 KiB write frame: a handful of these wedge the socket.
            let data = Bytes::from(vec![0xABu8; 64 * 1024]);
            ctx.send(self.hole, ClientMsg::Write { handle: 1, offset: 0, data }.into());
            ctx.set_timer(Nanos::from_millis(1), TOK_FLOOD);
        }
        fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
            if matches!(msg, Msg::Server(ServerMsg::OpenOk { .. })) {
                let n = self.replies.fetch_add(1, Ordering::SeqCst) + 1;
                if n < ECHO_GOAL + 4 {
                    ctx.send(from, open_msg());
                }
            }
        }
    }

    let mut net = TcpNet::new().expect("bind localhost");
    let echo = net.add_node(Box::new(EchoNode)).unwrap();
    let hole = net.add_external(hole_addr);
    let replies = Arc::new(AtomicU64::new(0));
    net.add_node(Box::new(Flooder {
        hole,
        echo,
        to_flood: FLOOD_FRAMES,
        replies: replies.clone(),
    }))
    .unwrap();
    net.start();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while replies.load(Ordering::SeqCst) < ECHO_GOAL && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        replies.load(Ordering::SeqCst) >= ECHO_GOAL,
        "echo traffic starved while a peer was stalled: {} < {ECHO_GOAL} ({})",
        replies.load(Ordering::SeqCst),
        net.counters().row()
    );
    let t0 = std::time::Instant::now();
    net.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "teardown with a wedged peer must still be bounded, took {:?}",
        t0.elapsed()
    );
    drop(held.lock().unwrap().drain(..).collect::<Vec<_>>());
}
