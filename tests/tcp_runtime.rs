//! Full cluster over real TCP sockets: logins, locate floods, redirects,
//! and file I/O all cross the wire through the binary codec.

use scalla::cache::CacheConfig;
use scalla::client::{ClientConfig, ClientNode, ClientOp, Directory, OpOutcome};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla::prelude::*;
use scalla::sim::TcpNet;
use std::sync::Arc;

#[test]
fn tcp_cluster_end_to_end() {
    let mut net = TcpNet::new().expect("bind localhost");
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache = CacheConfig { full_delay: Nanos::from_millis(500), ..CacheConfig::default() };
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let manager = net.add_node(Box::new(CmsdNode::new(mgr_cfg, clock))).unwrap();
    directory.register("mgr", manager);

    for i in 0..3 {
        let name = format!("srv-{i}");
        let mut cfg = ServerConfig::new(&name, manager);
        cfg.heartbeat = Nanos::from_millis(200);
        let mut node = ServerNode::new(cfg);
        if i == 1 {
            node.fs_mut().put_online("/tcp/hello", 256);
        }
        let addr = net.add_node(Box::new(node)).unwrap();
        directory.register(&name, addr);
    }

    let ops = vec![
        ClientOp::OpenRead { path: "/tcp/hello".into(), len: 64 },
        ClientOp::OpenRead { path: "/tcp/hello".into(), len: 64 },
        ClientOp::Open { path: "/tcp/ghost".into(), write: false },
    ];
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_millis(800);
    ccfg.request_timeout = Nanos::from_secs(5);
    let client = net.add_node(Box::new(ClientNode::new(ccfg))).unwrap();

    net.start();
    std::thread::sleep(std::time::Duration::from_secs(4));
    let mut nodes = net.shutdown();
    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert_eq!(results.len(), 3, "all ops must terminate: {results:?}");
    assert_eq!(results[0].outcome, OpOutcome::Ok, "{results:?}");
    assert_eq!(results[0].server.as_deref(), Some("srv-1"));
    assert_eq!(results[1].outcome, OpOutcome::Ok);
    assert!(
        results[1].latency() <= results[0].latency(),
        "warm open can't be slower than cold: {results:?}"
    );
    assert_eq!(results[2].outcome, OpOutcome::NotFound);
    assert!(results[2].latency() >= Nanos::from_millis(500), "full delay over TCP");
}
