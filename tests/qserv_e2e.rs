//! Qserv scatter/gather end-to-end through a real Scalla cluster: the
//! master dispatches by writing task files, workers execute and publish
//! results, the master reads them back — and the merged answer matches a
//! direct computation (§IV-B).

use scalla::client::{ClientConfig, ClientNode, OpOutcome};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig};
use scalla::prelude::*;
use scalla::qserv::{
    gather_results, scatter_script, ChunkStore, QservWorkerNode, Query, QueryResult,
};
use std::sync::Arc;

struct QservRig {
    net: SimNet,
    workers: Vec<Addr>,
    master: Addr,
    partitions: Vec<u32>,
    chunks: Vec<ChunkStore>,
}

fn rig(query: &Query, n_partitions: u32, n_workers: usize, qid: u64) -> QservRig {
    let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(30)), 5);
    let clock = net.clock();
    let directory = Arc::new(Directory::new());
    let manager = net.add_node(Box::new(CmsdNode::new(CmsdConfig::manager("mgr"), clock)));
    directory.register("mgr", manager);

    let mut workers = Vec::new();
    let mut chunks = Vec::new();
    for w in 0..n_workers {
        let name = format!("w{w}");
        let mine: Vec<ChunkStore> = (0..n_partitions)
            .filter(|p| (*p as usize) % n_workers == w)
            .map(|p| ChunkStore::generate(p, 1_000, 77))
            .collect();
        chunks.extend(mine.iter().cloned());
        let addr =
            net.add_node(Box::new(QservWorkerNode::new(ServerConfig::new(&name, manager), mine)));
        directory.register(&name, addr);
        workers.push(addr);
    }

    let partitions: Vec<u32> = (0..n_partitions).collect();
    let ops = scatter_script(query, &partitions, qid);
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_secs(2);
    let master = net.add_node(Box::new(ClientNode::new(ccfg)));

    net.start();
    QservRig { net, workers, master, partitions, chunks }
}

fn read_from_workers(rig: &mut QservRig, path: &str) -> Option<Vec<u8>> {
    for &w in &rig.workers.clone() {
        let node = rig.net.node_mut(w).as_any_mut().unwrap();
        let worker = node.downcast_ref::<QservWorkerNode>().unwrap();
        if let Some(entry) = worker.server().fs().get(path) {
            return Some(entry.data.to_vec());
        }
    }
    None
}

#[test]
fn distributed_count_matches_direct() {
    let query = Query::CountRange { lo: 16.0, hi: 19.0 };
    let mut rig = rig(&query, 6, 3, 1);
    rig.net.run_for(Nanos::from_secs(90));

    let results = rig
        .net
        .node_mut(rig.master)
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert_eq!(results.len(), 12, "6 creates + 6 reads: {results:?}");
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok), "{results:?}");

    let partitions = rig.partitions.clone();
    let merged = gather_results(&partitions, 1, |p| read_from_workers(&mut rig, p)).unwrap();
    let expected: u64 = rig
        .chunks
        .iter()
        .map(|c| match query.execute(c) {
            QueryResult::Count(n) => n,
            _ => unreachable!(),
        })
        .sum();
    assert_eq!(merged, QueryResult::Count(expected));
    assert!(expected > 0, "test data must be non-trivial");
}

#[test]
fn tasks_land_on_partition_owners_only() {
    let query = Query::MeanMag { lo: 14.0, hi: 26.0 };
    let mut rig = rig(&query, 4, 2, 2);
    rig.net.run_for(Nanos::from_secs(90));

    // Each worker executed exactly its own partitions' tasks.
    for (w, &addr) in rig.workers.clone().iter().enumerate() {
        let node = rig.net.node_mut(addr).as_any_mut().unwrap();
        let worker = node.downcast_ref::<QservWorkerNode>().unwrap();
        assert_eq!(worker.tasks_executed, 2, "worker {w} owns 2 of 4 partitions");
        for p in worker.partitions() {
            assert_eq!(p as usize % 2, w, "partition routed to its owner");
        }
    }

    let partitions = rig.partitions.clone();
    let merged = gather_results(&partitions, 2, |p| read_from_workers(&mut rig, p)).unwrap();
    let QueryResult::Mean { count, mean } = merged else { panic!("{merged:?}") };
    assert_eq!(count, 4_000, "all rows covered across partitions");
    assert!((14.0..26.0).contains(&mean));
}

#[test]
fn master_survives_worker_restart_between_queries() {
    let query = Query::CountRange { lo: 15.0, hi: 25.0 };
    let mut rig = rig(&query, 4, 2, 3);
    // Bounce one worker during settle; it re-logins and still executes.
    rig.net.run_for(Nanos::from_millis(500));
    let w0 = rig.workers[0];
    rig.net.kill(w0);
    rig.net.run_for(Nanos::from_millis(500));
    rig.net.revive(w0);
    rig.net.run_for(Nanos::from_secs(120));

    let results = rig
        .net
        .node_mut(rig.master)
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    let ok = results.iter().filter(|r| r.outcome == OpOutcome::Ok).count();
    assert_eq!(ok, results.len(), "all ops ok after worker bounce: {results:?}");
}

#[test]
fn new_worker_extends_partition_coverage_without_reconfiguration() {
    // §IV-B: "in Qserv's current implementation, there is no configuration
    // for the number of nodes in the cluster." A worker that joins later
    // with new partitions becomes dispatchable immediately — the master
    // only ever names partition numbers.
    let query = Query::CountRange { lo: 14.0, hi: 26.0 };
    // Initially partitions 0-1 on one worker.
    let mut rig = rig(&query, 2, 1, 7);
    rig.net.run_for(Nanos::from_secs(60));

    // A new worker joins, carrying partitions 2-3.
    let manager = scalla_proto::Addr(0);
    let new_chunks: Vec<ChunkStore> = (2..4).map(|p| ChunkStore::generate(p, 1_000, 77)).collect();
    let expected_new: u64 = new_chunks
        .iter()
        .map(|c| match query.execute(c) {
            QueryResult::Count(n) => n,
            _ => unreachable!(),
        })
        .sum();
    let w_new = rig
        .net
        .add_node(Box::new(QservWorkerNode::new(ServerConfig::new("w-late", manager), new_chunks)));
    rig.workers.push(w_new);
    // Start the latecomer (kill+revive runs on_start -> Login).
    rig.net.kill(w_new);
    rig.net.revive(w_new);
    rig.net.run_for(Nanos::from_secs(3));

    // Dispatch to the new partitions through a fresh master script.
    let dir = Arc::new(Directory::new());
    dir.register("mgr", manager);
    dir.register("w-late", w_new);
    let parts: Vec<u32> = vec![2, 3];
    let ops = scatter_script(&query, &parts, 99);
    let mut ccfg = ClientConfig::new(manager, dir, ops);
    ccfg.start_delay = Nanos::from_millis(100);
    let master2 = rig.net.add_node(Box::new(ClientNode::new(ccfg)));
    rig.net.kill(master2);
    rig.net.revive(master2);
    rig.net.run_for(Nanos::from_secs(90));

    let results = rig
        .net
        .node_mut(master2)
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok), "{results:?}");
    let merged = gather_results(&parts, 99, |p| read_from_workers(&mut rig, p)).unwrap();
    assert_eq!(merged, QueryResult::Count(expected_new));
}

#[test]
fn autonomous_master_node_gathers_in_node() {
    // The QservMasterNode drives the whole scatter/gather itself and holds
    // the merged answer — no harness-side file reading.
    let query = Query::CountRange { lo: 15.0, hi: 22.0 };
    let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(30)), 8);
    let clock = net.clock();
    let directory = Arc::new(Directory::new());
    let manager = net.add_node(Box::new(CmsdNode::new(CmsdConfig::manager("mgr"), clock)));
    directory.register("mgr", manager);

    let mut expected = 0u64;
    for w in 0..3usize {
        let name = format!("w{w}");
        let chunks: Vec<ChunkStore> = (0..6u32)
            .filter(|p| (*p as usize) % 3 == w)
            .map(|p| ChunkStore::generate(p, 800, 55))
            .collect();
        for c in &chunks {
            if let QueryResult::Count(n) = query.execute(c) {
                expected += n;
            }
        }
        let addr =
            net.add_node(Box::new(QservWorkerNode::new(ServerConfig::new(&name, manager), chunks)));
        directory.register(&name, addr);
    }

    let mut ccfg = ClientConfig::new(manager, directory, Vec::new());
    ccfg.start_delay = Nanos::from_secs(2);
    let master = net.add_node(Box::new(scalla::qserv::QservMasterNode::new(
        ccfg,
        &query,
        (0..6).collect(),
        41,
    )));
    net.start();
    net.run_for(Nanos::from_secs(120));

    let node = net.node_mut(master).as_any_mut().unwrap();
    let m = node.downcast_ref::<scalla::qserv::QservMasterNode>().unwrap();
    assert!(!m.failed(), "{:?}", m.records());
    assert_eq!(m.answer(), Some(&QueryResult::Count(expected)));
}
