//! Failure injection: lossy links, supervisor death, cluster-full logins.
//! "recover gracefully from failures expected when a massive amount of
//! hardware is deployed" (§II-A).

use scalla::prelude::*;
use scalla::sim::ClusterConfig;

#[test]
fn workload_survives_message_loss() {
    let mut cfg = ClusterConfig::flat(8);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.seed = 77;
    let mut c = SimCluster::build(cfg);
    for i in 0..8 {
        c.seed_file(i, &format!("/d/f{i}"), 1, true);
    }
    c.settle(Nanos::from_secs(2));
    // 5% loss on every link from here on.
    c.net.set_loss_permille(50);

    let ops: Vec<ClientOp> =
        (0..8).map(|i| ClientOp::Open { path: format!("/d/f{i}"), write: false }).collect();
    let client = c.add_client_with(|cc| {
        cc.ops = ops.clone();
        cc.request_timeout = Nanos::from_secs(2);
        cc.retry.max_waits = 50;
    });
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(600));
    let results = c.client_results(client);
    assert_eq!(results.len(), 8, "all ops must terminate: {results:?}");
    let ok = results.iter().filter(|r| r.outcome == OpOutcome::Ok).count();
    // Loss can turn an op into NotFound (lost Have) but most must succeed
    // via timeouts and retries; none may hang.
    assert!(ok >= 6, "too many losses leaked to clients: {results:?}");
}

#[test]
fn supervisor_death_and_recovery() {
    let mut cfg = ClusterConfig::flat(9);
    cfg.fanout = 3; // 3 supervisors x 3 servers
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    let mut c = SimCluster::build(cfg);
    assert_eq!(c.spec.depth(), 2);
    c.seed_file(8, "/deep/f", 1, true);
    c.settle(Nanos::from_secs(2));

    // Sanity: reachable.
    let probe =
        c.add_client(vec![ClientOp::Open { path: "/deep/f".into(), write: false }], Nanos::ZERO);
    c.start_node(probe);
    c.net.run_for(Nanos::from_secs(10));
    assert_eq!(c.client_results(probe)[0].outcome, OpOutcome::Ok);

    // Kill the supervisor above srv-8 (the last supervisor).
    let sup = *c.supervisors.last().unwrap();
    c.net.kill(sup);
    c.net.run_for(Nanos::from_secs(10)); // manager notices via heartbeats

    // The subtree is unreachable; the client must get a terminal answer,
    // not hang forever.
    let during = c.add_client_with(|cc| {
        cc.ops = vec![ClientOp::Open { path: "/deep/f".into(), write: false }];
        cc.request_timeout = Nanos::from_secs(3);
    });
    c.start_node(during);
    c.net.run_for(Nanos::from_secs(60));
    let r = c.client_results(during);
    assert_eq!(r.len(), 1, "op must terminate");
    assert_ne!(r[0].outcome, OpOutcome::Ok, "file cannot be served now");

    // Supervisor returns; its servers re-login to it, it re-logins to the
    // manager, and service resumes without any operator action.
    c.net.revive(sup);
    // Servers under it must also re-login since the supervisor lost state:
    // their heartbeats keep flowing, but membership at the revived sup is
    // empty — bounce them so on_start re-sends Login.
    let children: Vec<_> = (6..9).map(|i| c.servers[i]).collect();
    for s in children {
        c.net.kill(s);
        c.net.revive(s);
    }
    c.net.run_for(Nanos::from_secs(15));

    let after =
        c.add_client(vec![ClientOp::Open { path: "/deep/f".into(), write: false }], Nanos::ZERO);
    c.start_node(after);
    c.net.run_for(Nanos::from_secs(30));
    let r = c.client_results(after);
    assert_eq!(r[0].outcome, OpOutcome::Ok, "service must resume: {r:?}");
    assert_eq!(r[0].server.as_deref(), Some("srv-8"));
}

#[test]
fn sixty_fifth_server_is_rejected_not_fatal() {
    let mut cfg = ClusterConfig::flat(64);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    let mut c = SimCluster::build(cfg);
    c.settle(Nanos::from_secs(2));
    let mgr = c.managers[0];
    assert_eq!(c.with_cmsd(mgr, |n| n.members().active()).len(), 64);

    // A 65th server tries to join the already-full manager.
    use scalla::node::{ServerConfig, ServerNode};
    let cfg65 = ServerConfig::new("srv-extra", mgr);
    let extra = c.net.add_node(Box::new(ServerNode::new(cfg65)));
    c.directory.register("srv-extra", extra);
    c.net.kill(extra);
    c.net.revive(extra); // triggers on_start -> Login
    c.net.run_for(Nanos::from_secs(5));

    // Cluster unaffected; still 64 active members and service works.
    assert_eq!(c.with_cmsd(mgr, |n| n.members().active()).len(), 64);
    c.seed_file(7, "/ok/f", 1, true);
    let client =
        c.add_client(vec![ClientOp::Open { path: "/ok/f".into(), write: false }], Nanos::ZERO);
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(10));
    assert_eq!(c.client_results(client)[0].outcome, OpOutcome::Ok);
}

#[test]
fn flapping_server_never_corrupts_resolution() {
    let mut cfg = ClusterConfig::flat(4);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.membership.drop_after = Nanos::from_secs(30);
    let mut c = SimCluster::build(cfg);
    c.seed_file(1, "/flap/f", 1, true);
    c.seed_file(2, "/flap/f", 1, true);
    c.settle(Nanos::from_secs(2));

    // Flap srv-1 repeatedly while a client keeps reading.
    let ops: Vec<ClientOp> = (0..20)
        .flat_map(|_| {
            vec![
                ClientOp::Open { path: "/flap/f".into(), write: false },
                ClientOp::Sleep { duration: Nanos::from_secs(2) },
            ]
        })
        .collect();
    let client = c.add_client_with(|cc| {
        cc.ops = ops.clone();
        cc.request_timeout = Nanos::from_secs(3);
        cc.max_refreshes = 5;
    });
    c.start_node(client);
    let victim = c.servers[1];
    for round in 0..5 {
        c.net.run_for(Nanos::from_secs(4));
        if round % 2 == 0 {
            c.net.kill(victim);
        } else {
            c.net.revive(victim);
        }
    }
    c.net.revive(victim);
    c.net.run_for(Nanos::from_secs(120));

    let results = c.client_results(client);
    let opens: Vec<_> = results.iter().filter(|r| r.path != "<sleep>").collect();
    assert_eq!(opens.len(), 20, "every op must terminate");
    // With a healthy replica always present, every open must succeed.
    for r in &opens {
        assert_eq!(r.outcome, OpOutcome::Ok, "{r:?}");
    }
}

#[test]
fn replicated_supervisor_masks_replica_death() {
    // §II-B1: "Every node in the cluster can be replicated to provide an
    // arbitrary level of reliability." With two replicas per supervisor,
    // killing one must not interrupt service to its subtree.
    let mut cfg = ClusterConfig::flat(6);
    cfg.fanout = 3;
    cfg.supervisor_replicas = 2;
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    let mut c = SimCluster::build(cfg);
    assert_eq!(c.spec.depth(), 2);
    assert_eq!(c.supervisors.len(), 4, "2 positions x 2 replicas");
    c.seed_file(5, "/rep/f", 1, true);
    c.settle(Nanos::from_secs(2));

    // Baseline access works.
    let probe =
        c.add_client(vec![ClientOp::Open { path: "/rep/f".into(), write: false }], Nanos::ZERO);
    c.start_node(probe);
    c.net.run_for(Nanos::from_secs(10));
    let via = c.client_results(probe)[0].server.clone();
    assert_eq!(via.as_deref(), Some("srv-5"));

    // Kill the replica that served the walk (whichever of the last two
    // supervisors the client was routed through): kill BOTH primaries to
    // be sure one of the used path nodes died, leaving the "r1" replicas.
    let sup_primary_1 = c.supervisors[2]; // second position, replica 0
    c.net.kill(sup_primary_1);
    // Manager must notice via heartbeat silence.
    c.net.run_for(Nanos::from_secs(8));

    let mut oks = 0;
    for i in 0..4 {
        let client = c.add_client_with(|cc| {
            cc.ops = vec![ClientOp::Open { path: "/rep/f".into(), write: false }];
            cc.request_timeout = Nanos::from_secs(3);
            cc.max_refreshes = 4;
        });
        c.start_node(client);
        c.net.run_for(Nanos::from_secs(30));
        if c.client_results(client)[0].outcome == OpOutcome::Ok {
            oks += 1;
        }
        let _ = i;
    }
    assert!(oks >= 3, "replica must keep the subtree served, got {oks}/4");
}
