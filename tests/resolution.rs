//! End-to-end resolution behaviour across crates: latency shape, staging,
//! refresh recovery, prepare, and deep trees.

use scalla::prelude::*;
use scalla::sim::ClusterConfig;

fn fixed_cfg(n: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::flat(n);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.staging_delay = Nanos::from_secs(3);
    cfg
}

#[test]
fn cold_resolution_includes_server_response_time() {
    let mut c = SimCluster::build(fixed_cfg(8));
    c.seed_file(4, "/data/f", 1, true);
    c.settle(Nanos::from_secs(2));
    let client = c.add_client(
        vec![
            ClientOp::Open { path: "/data/f".into(), write: false },
            ClientOp::Open { path: "/data/f".into(), write: false },
        ],
        Nanos::ZERO,
    );
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(10));
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok);
    assert_eq!(r[1].outcome, OpOutcome::Ok);
    // Cold: client->mgr, mgr->srv locate, srv->mgr have, mgr->client
    // redirect, open pair, close pair = 8 hops x 25 µs = 200 µs.
    // Warm: locate round trip absent = 150 µs.
    assert_eq!(r[0].latency(), Nanos::from_micros(200));
    assert_eq!(r[1].latency(), Nanos::from_micros(150));
}

#[test]
fn deeper_trees_cost_one_redirect_per_level() {
    // Depth 1 vs depth 2 with identical link latency.
    let mut shallow = SimCluster::build(fixed_cfg(4));
    shallow.seed_file(3, "/data/f", 1, true);
    shallow.settle(Nanos::from_secs(2));
    let c1 = shallow
        .add_client(vec![ClientOp::Open { path: "/data/f".into(), write: false }], Nanos::ZERO);
    shallow.start_node(c1);
    shallow.net.run_for(Nanos::from_secs(10));
    let r_shallow = shallow.client_results(c1);

    let mut cfg = fixed_cfg(16);
    cfg.fanout = 4; // depth 2
    let mut deep = SimCluster::build(cfg);
    assert_eq!(deep.spec.depth(), 2);
    deep.seed_file(15, "/data/f", 1, true);
    deep.settle(Nanos::from_secs(2));
    let c2 =
        deep.add_client(vec![ClientOp::Open { path: "/data/f".into(), write: false }], Nanos::ZERO);
    deep.start_node(c2);
    deep.net.run_for(Nanos::from_secs(10));
    let r_deep = deep.client_results(c2);

    assert_eq!(r_shallow[0].redirects, 1);
    assert_eq!(r_deep[0].redirects, 2);
    assert!(
        r_deep[0].latency() > r_shallow[0].latency(),
        "extra level must add latency: {} vs {}",
        r_deep[0].latency(),
        r_shallow[0].latency()
    );
    // But far less than double: each level adds a redirect + locate leg,
    // the paper's per-level O(1) claim.
    assert!(r_deep[0].latency() < r_shallow[0].latency().mul(3));
}

#[test]
fn mss_staging_flow() {
    let mut c = SimCluster::build(fixed_cfg(4));
    c.seed_file(2, "/mss/archive", 1 << 10, false);
    c.settle(Nanos::from_secs(2));
    let client = c
        .add_client(vec![ClientOp::OpenRead { path: "/mss/archive".into(), len: 64 }], Nanos::ZERO);
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(60));
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok, "staged file must eventually serve");
    // The op had to ride out the staging delay.
    assert!(r[0].latency() >= Nanos::from_secs(3));
    assert!(r[0].waits >= 1, "client was told to wait during staging");
    // Server-side: the file is now online.
    assert!(c.with_server(2, |s| s.fs().get("/mss/archive").unwrap().online));
}

#[test]
fn stale_cache_refresh_recovery() {
    let mut c = SimCluster::build(fixed_cfg(4));
    c.seed_file(1, "/data/f", 1, true);
    c.seed_file(3, "/data/f", 1, true);
    c.settle(Nanos::from_secs(2));

    // Warm the cache with both holders.
    let warm =
        c.add_client(vec![ClientOp::Open { path: "/data/f".into(), write: false }], Nanos::ZERO);
    c.start_node(warm);
    c.net.run_for(Nanos::from_secs(5));
    let first_server = c.client_results(warm)[0].server.clone().unwrap();
    let first_idx: usize = first_server.strip_prefix("srv-").unwrap().parse().unwrap();

    // Delete the file from the server the cache will vector to next...
    // with round-robin the next pick is the *other* holder, so delete
    // from both and reseed only one to force a stale redirect.
    let other_idx = if first_idx == 1 { 3 } else { 1 };
    c.with_server(other_idx, |s| s.fs_mut().remove("/data/f"));

    let client =
        c.add_client(vec![ClientOp::Open { path: "/data/f".into(), write: false }], Nanos::ZERO);
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(30));
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok, "recovery must find the survivor");
    assert_eq!(r[0].server.as_deref(), Some(first_server.as_str()));
    if r[0].refreshes > 0 {
        // The stale redirect happened and §III-C1 recovery kicked in.
        assert!(r[0].redirects >= 2);
    }
}

#[test]
fn prepare_overlaps_staging_delays() {
    // k MSS files, staging 3 s each. Without prepare the client pays ~3 s
    // per file sequentially; with prepare the stagings overlap.
    let k = 4usize;
    let paths: Vec<String> = (0..k).map(|i| format!("/mss/f{i}")).collect();

    let run = |prepare: bool| -> Nanos {
        let mut c = SimCluster::build(fixed_cfg(8));
        for (i, p) in paths.iter().enumerate() {
            c.seed_file(i, p, 64, false);
        }
        c.settle(Nanos::from_secs(2));
        let mut ops = Vec::new();
        if prepare {
            ops.push(ClientOp::Prepare { paths: paths.clone() });
            // Give the background stagings time to run.
            ops.push(ClientOp::Sleep { duration: Nanos::from_secs(5) });
        }
        for p in &paths {
            ops.push(ClientOp::OpenRead { path: p.clone(), len: 16 });
        }
        let client = c.add_client(ops, Nanos::ZERO);
        c.start_node(client);
        c.net.run_for(Nanos::from_secs(120));
        let rs = c.client_results(client);
        assert!(rs.iter().all(|r| r.outcome == OpOutcome::Ok), "{rs:?}");
        let start = rs.first().unwrap().start;
        let end = rs.last().unwrap().end;
        end.since(start)
    };

    let without = run(false);
    let with = run(true);
    assert!(with < without, "prepare must overlap staging: with={with} without={without}");
    // Sequential staging costs ~k * 3 s; prepared costs ~one staging delay
    // plus the 5 s sleep.
    assert!(without >= Nanos::from_secs(3 * k as u64));
    assert!(with < Nanos::from_secs(3 * k as u64));
}

#[test]
fn write_creation_pays_one_full_delay_then_allocates() {
    let mut c = SimCluster::build(fixed_cfg(8));
    c.settle(Nanos::from_secs(2));
    let client = c.add_client(
        vec![ClientOp::Create {
            path: "/out/new.root".into(),
            data: bytes::Bytes::from_static(b"payload"),
        }],
        Nanos::ZERO,
    );
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(30));
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok);
    // One full delay (5 s) to prove non-existence, then allocation.
    assert!(r[0].latency() >= Nanos::from_secs(5), "{}", r[0].latency());
    assert!(r[0].latency() < Nanos::from_secs(11), "{}", r[0].latency());
    // The file landed on exactly one server.
    let holders =
        (0..8).filter(|&i| c.with_server(i, |s| s.fs().get("/out/new.root").is_some())).count();
    assert_eq!(holders, 1);
}

#[test]
fn determinism_identical_seeds_identical_latencies() {
    let run = || {
        let mut cfg = ClusterConfig::flat(6);
        cfg.seed = 99;
        let mut c = SimCluster::build(cfg);
        c.seed_file(2, "/d/f", 1, true);
        c.settle(Nanos::from_secs(2));
        let client =
            c.add_client(vec![ClientOp::Open { path: "/d/f".into(), write: false }], Nanos::ZERO);
        c.start_node(client);
        c.net.run_for(Nanos::from_secs(10));
        c.client_results(client)[0].latency()
    };
    assert_eq!(run(), run());
}

#[test]
fn stat_walks_to_server_and_reports_metadata() {
    let mut c = SimCluster::build(fixed_cfg(4));
    c.seed_file(2, "/meta/f", 12345, true);
    c.seed_file(3, "/meta/off", 777, false);
    c.settle(Nanos::from_secs(2));
    let client = c.add_client(
        vec![
            ClientOp::Stat { path: "/meta/f".into() },
            ClientOp::Stat { path: "/meta/off".into() },
        ],
        Nanos::ZERO,
    );
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(60));
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok);
    assert_eq!(r[0].server.as_deref(), Some("srv-2"));
    // Stat of an MSS-resident file: the open side waits for staging, so
    // it eventually succeeds too (after the 3 s staging delay).
    assert_eq!(r[1].outcome, OpOutcome::Ok, "{r:?}");
    assert!(r[1].latency() >= Nanos::from_secs(3));
}

#[test]
fn read_returns_exactly_the_available_bytes() {
    let mut c = SimCluster::build(fixed_cfg(2));
    c.seed_file(0, "/data/small", 100, true);
    c.settle(Nanos::from_secs(2));
    let client = c.add_client(
        vec![ClientOp::OpenRead { path: "/data/small".into(), len: 4096 }],
        Nanos::ZERO,
    );
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(10));
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok, "short read at EOF is not an error");
}

#[test]
fn concurrent_cold_opens_share_one_query_flood() {
    // Deadline synchronization (§III-C2): many clients racing on the same
    // cold file must produce one locate flood, not one per client.
    let mut c = SimCluster::build(fixed_cfg(8));
    c.seed_file(5, "/hot/f", 1, true);
    c.settle(Nanos::from_secs(2));
    let mut clients = Vec::new();
    for i in 0..16 {
        let cl = c.add_client(
            vec![ClientOp::Open { path: "/hot/f".into(), write: false }],
            Nanos::from_micros(i), // nearly simultaneous
        );
        c.start_node(cl);
        clients.push(cl);
    }
    c.net.run_for(Nanos::from_secs(10));
    for cl in clients {
        assert_eq!(c.client_results(cl)[0].outcome, OpOutcome::Ok);
    }
    // Exactly one location object was created and one flood issued: the
    // other 15 racing clients parked on the fast response queue behind the
    // object's processing deadline.
    let mgr = c.managers[0];
    let (creates, misses, queued, fast) = c.with_cmsd(mgr, |n| {
        let s = n.cache().stats();
        use scalla::cache::CacheStats as S;
        (S::get(&s.creates), S::get(&s.misses), S::get(&s.queued_waiters), S::get(&s.fast_releases))
    });
    assert_eq!(creates, 1, "one location object for the shared file");
    assert_eq!(misses, 1, "only the first racer misses");
    assert!(queued >= 15, "the other racers must queue, got {queued}");
    assert_eq!(fast, queued, "every queued racer released by the one Have");
}

#[test]
fn least_load_policy_steers_around_busy_server() {
    // §II-B3 end-to-end: a server's load (its open-handle count) flows up
    // via heartbeats and the LeastLoad policy steers new opens away.
    let mut cfg = fixed_cfg(2);
    cfg.policy = SelectionPolicy::LeastLoad;
    cfg.heartbeat = Nanos::from_millis(200);
    let mut c = SimCluster::build(cfg);
    c.seed_file(0, "/ll/f", 1, true);
    c.seed_file(1, "/ll/f", 1, true);
    c.settle(Nanos::from_secs(2));

    // A "hog" client opens 10 handles on srv-0 and never closes them, so
    // srv-0's heartbeat reports load 10.
    let srv0 = c.servers[0];
    for h in 0..10u64 {
        c.net.inject(
            Addr(7_000 + h),
            srv0,
            ClientMsg::Open { path: "/ll/f".into(), write: false, refresh: false, avoid: None }
                .into(),
        );
    }
    c.net.run_for(Nanos::from_secs(2)); // heartbeats carry the load up

    // Warm the cache (the cold open is released by whichever server
    // responds first, bypassing policy — §III-B1), then every policy-
    // driven open must pick the idle srv-1.
    let client = c.add_client(
        (0..5).map(|_| ClientOp::Open { path: "/ll/f".into(), write: false }).collect(),
        Nanos::ZERO,
    );
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(20));
    let r = c.client_results(client);
    assert!(r.iter().all(|x| x.outcome == OpOutcome::Ok), "{r:?}");
    for x in &r[1..] {
        assert_eq!(x.server.as_deref(), Some("srv-1"), "{r:?}");
    }
}
