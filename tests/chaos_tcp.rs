//! Live-runtime recovery over real sockets: a peer killed and restarted
//! mid-run must be re-detected by the cmsd health sweep and traffic must
//! resume — without restarting any process. Recovery is observed from the
//! outside through the obs registry while the cluster is still running.

use scalla::cache::CacheConfig;
use scalla::client::{ClientConfig, ClientNode, ClientOp, Directory, OpOutcome};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla::prelude::*;
use scalla::sim::{assert_poll, TcpNet};
use std::sync::Arc;
use std::time::Duration;

fn recovery_count(text: &str, event: &str) -> u64 {
    let needle = format!("scalla_recovery_events_total{{event=\"{event}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .map(|v| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

struct TcpCluster {
    net: TcpNet,
    obs: Obs,
    manager: Addr,
    servers: Vec<Addr>,
    directory: Arc<Directory>,
}

/// One manager + three fast-heartbeat servers; `srv-1` holds `/d/f`.
fn build_cluster() -> TcpCluster {
    let mut net = TcpNet::new().expect("bind localhost");
    let clock = net.clock();
    let obs = Obs::enabled();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache = CacheConfig { full_delay: Nanos::from_millis(500), ..CacheConfig::default() };
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    mgr_cfg.offline_after = Nanos::from_secs(1);
    mgr_cfg.membership.drop_after = Nanos::from_secs(60);
    let mut mgr_node = CmsdNode::new(mgr_cfg, clock);
    mgr_node.set_obs(obs.clone());
    let manager = net.add_node(Box::new(mgr_node)).unwrap();
    directory.register("mgr", manager);

    let mut servers = Vec::new();
    for i in 0..3 {
        let name = format!("srv-{i}");
        let mut cfg = ServerConfig::new(&name, manager);
        cfg.heartbeat = Nanos::from_millis(200);
        let mut node = ServerNode::new(cfg);
        if i == 1 {
            node.fs_mut().put_online("/d/f", 64);
        }
        let addr = net.add_node(Box::new(node)).unwrap();
        directory.register(&name, addr);
        servers.push(addr);
    }

    TcpCluster { net, obs, manager, servers, directory }
}

/// Acceptance criterion of the chaos tentpole: kill a data server over
/// real sockets, watch the manager declare it dead, restart it, watch the
/// manager take it back, and verify the next open reaches it again.
/// The whole cycle is observed live via the recovery counters; nothing is
/// torn down or restarted except the injected fault itself.
#[test]
fn tcp_killed_peer_is_redetected_and_traffic_resumes() {
    let TcpCluster { mut net, obs, manager, servers, directory } = build_cluster();

    let ops = vec![
        ClientOp::Open { path: "/d/f".into(), write: false },
        ClientOp::Sleep { duration: Nanos::from_secs(7) },
        ClientOp::Open { path: "/d/f".into(), write: false },
    ];
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_millis(600);
    ccfg.request_timeout = Nanos::from_secs(2);
    let client = net.add_node(Box::new(ClientNode::new(ccfg))).unwrap();

    net.start();

    // Let logins settle and the first open complete, then crash srv-1.
    std::thread::sleep(Duration::from_millis(1800));
    net.kill(servers[1]);
    assert_poll(Duration::from_secs(10), "manager must declare the silent peer dead", || {
        recovery_count(&obs.registry().prometheus_text(), "peer_dead") >= 1
    });

    // Restart it: the gate clears and the node re-runs on_start (re-login).
    net.revive(servers[1]);
    assert_poll(Duration::from_secs(10), "restarted peer must be re-admitted", || {
        recovery_count(&obs.registry().prometheus_text(), "peer_reconnected") >= 1
    });

    // The client's second open fires ~7.6 s in; give it room to finish.
    std::thread::sleep(Duration::from_secs(9));
    let mut nodes = net.shutdown();

    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    let opens: Vec<_> = results.iter().filter(|r| r.path != "<sleep>").collect();
    assert_eq!(opens.len(), 2, "both opens must terminate: {results:?}");
    assert_eq!(opens[0].outcome, OpOutcome::Ok, "{results:?}");
    assert_eq!(opens[0].server.as_deref(), Some("srv-1"));
    assert_eq!(opens[1].outcome, OpOutcome::Ok, "traffic must resume after restart: {results:?}");
    assert_eq!(opens[1].server.as_deref(), Some("srv-1"), "{results:?}");

    // Membership healed completely: all three servers active again.
    let mgr = nodes[manager.0 as usize].as_any_mut().unwrap().downcast_ref::<CmsdNode>().unwrap();
    assert_eq!(mgr.members().active().len(), 3, "membership must reconverge");
    let text = obs.registry().prometheus_text();
    assert_eq!(
        recovery_count(&text, "peer_dead"),
        recovery_count(&text, "peer_reconnected"),
        "every death must pair with a reconnect\n{text}"
    );
}

/// TCP port of `reconnect_within_window_preserves_cached_locations`
/// (tests/membership.rs): an outage shorter than `drop_after` keeps the
/// member's slot, and the cached location still resolves to it afterwards
/// without any relearning from scratch.
#[test]
fn tcp_reconnect_within_window_preserves_cached_locations() {
    let TcpCluster { mut net, obs: _obs, manager, servers, directory } = build_cluster();

    // Warm the cache, then reopen after a bounce that stays well inside
    // the 60 s drop window.
    let ops = vec![
        ClientOp::Open { path: "/d/f".into(), write: false },
        ClientOp::Sleep { duration: Nanos::from_secs(5) },
        ClientOp::Open { path: "/d/f".into(), write: false },
    ];
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_millis(600);
    ccfg.request_timeout = Nanos::from_secs(2);
    let client = net.add_node(Box::new(ClientNode::new(ccfg))).unwrap();

    net.start();
    std::thread::sleep(Duration::from_millis(1800));
    net.kill(servers[1]);
    std::thread::sleep(Duration::from_secs(2)); // detected, still within window
    net.revive(servers[1]);
    std::thread::sleep(Duration::from_secs(7));
    let mut nodes = net.shutdown();

    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    let opens: Vec<_> = results.iter().filter(|r| r.path != "<sleep>").collect();
    assert_eq!(opens.len(), 2, "{results:?}");
    for open in &opens {
        assert_eq!(open.outcome, OpOutcome::Ok, "{results:?}");
        assert_eq!(open.server.as_deref(), Some("srv-1"), "location must survive: {results:?}");
    }
    let mgr = nodes[manager.0 as usize].as_any_mut().unwrap().downcast_ref::<CmsdNode>().unwrap();
    assert_eq!(mgr.members().active().len(), 3);
}

/// Answers every client message with `Wait`, forever.
struct AlwaysWait;
impl Node for AlwaysWait {
    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        if matches!(msg, Msg::Client(_)) {
            ctx.send(from, ServerMsg::Wait { millis: 100 }.into());
        }
    }
}

/// The retry budget must be terminal over real sockets too: a cluster
/// that stalls forever produces a `GaveUp` verdict, not a hung client.
#[test]
fn tcp_retry_budget_exhaustion_is_terminal() {
    let mut net = TcpNet::new().expect("bind localhost");
    let waiter = net.add_node(Box::new(AlwaysWait)).unwrap();
    let directory = Arc::new(Directory::new());
    directory.register("stall", waiter);

    let ops = vec![ClientOp::Open { path: "/d/f".into(), write: false }];
    let mut ccfg = ClientConfig::new(waiter, directory, ops);
    ccfg.start_delay = Nanos::from_millis(100);
    ccfg.request_timeout = Nanos::from_secs(2);
    ccfg.retry.max_waits = 3;
    ccfg.retry.backoff_base = Nanos::from_millis(10);
    let client = net.add_node(Box::new(ClientNode::new(ccfg))).unwrap();

    net.start();
    std::thread::sleep(Duration::from_secs(3));
    let mut nodes = net.shutdown();
    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert_eq!(results.len(), 1, "op must terminate: {results:?}");
    assert_eq!(results[0].outcome, OpOutcome::GaveUp, "{results:?}");
}
