//! Observability acceptance over real TCP sockets: a client-minted trace
//! id must cross the wire into server-side flight spans, per-stage
//! histograms must fill, and the admin endpoint's Prometheus text must
//! survive a parser check.

use scalla::client::{ClientConfig, ClientNode, ClientOp, Directory, OpOutcome};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla::prelude::*;
use scalla::sim::{scrape, TcpNet};
use std::sync::Arc;

/// A minimal Prometheus text-exposition check: every comment is `# HELP`
/// or `# TYPE`, every sample line is `name[{labels}] value` with a
/// numeric value, and every sample's metric family appeared in a `# TYPE`
/// line first. Returns the parsed samples.
fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
    let mut typed = Vec::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            let kind = it.next().unwrap_or("");
            assert!(kind == "HELP" || kind == "TYPE", "bad comment: {line}");
            let name = it.next().expect("comment names a metric").to_string();
            if kind == "TYPE" {
                typed.push(name);
            }
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
        let family = series.split(['{', ' ']).next().unwrap();
        let base = family
            .strip_suffix("_bucket")
            .or_else(|| family.strip_suffix("_sum"))
            .or_else(|| family.strip_suffix("_count"))
            .unwrap_or(family);
        assert!(
            typed.iter().any(|t| t == base || t == family),
            "sample {series} missing a # TYPE header"
        );
        assert!(
            family.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name: {family}"
        );
        samples.push((series.to_string(), value));
    }
    samples
}

fn sample_value(samples: &[(String, f64)], series: &str) -> f64 {
    samples
        .iter()
        .find(|(s, _)| s == series)
        .unwrap_or_else(|| panic!("series {series} not exported"))
        .1
}

#[test]
fn obs_tcp_cluster_traces_and_metrics() {
    // sample_every = 1: every stage event is timed, so even this short
    // run fills each histogram deterministically.
    let obs = Obs::with_config(1, 4096);

    let mut net = TcpNet::new().expect("bind localhost");
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache.full_delay = Nanos::from_millis(500);
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let mut mgr_node = CmsdNode::new(mgr_cfg, clock);
    mgr_node.set_obs(obs.clone());
    let manager = net.add_node(Box::new(mgr_node)).unwrap();
    directory.register("mgr", manager);

    for i in 0..3 {
        let name = format!("srv-{i}");
        let mut cfg = ServerConfig::new(&name, manager);
        cfg.heartbeat = Nanos::from_millis(200);
        let mut node = ServerNode::new(cfg);
        node.set_obs(obs.clone());
        if i == 1 {
            node.fs_mut().put_online("/obs/traced", 256);
        }
        let addr = net.add_node(Box::new(node)).unwrap();
        directory.register(&name, addr);
    }

    let ops = vec![
        ClientOp::OpenRead { path: "/obs/traced".into(), len: 64 },
        ClientOp::Open { path: "/obs/traced".into(), write: false },
    ];
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_millis(800);
    ccfg.request_timeout = Nanos::from_secs(5);
    let mut client_node = ClientNode::new(ccfg);
    client_node.set_obs(obs.clone());
    let client = net.add_node(Box::new(client_node)).unwrap();

    let admin = net.serve_admin(obs.clone()).expect("admin endpoint binds");
    net.start();
    std::thread::sleep(std::time::Duration::from_secs(4));

    // Scrape while the net is live; the admin listener dies with shutdown.
    let metrics = scrape(admin, "/metrics").expect("scrape /metrics");
    let flight = scrape(admin, "/flight").expect("scrape /flight");
    let stats = scrape(admin, "/stats").expect("scrape /stats");

    let mut nodes = net.shutdown();
    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert_eq!(results.len(), 2, "all ops must terminate: {results:?}");
    assert_eq!(results[0].outcome, OpOutcome::Ok, "{results:?}");
    assert_ne!(results[0].trace_id, 0, "client minted a trace id");

    // (a) The trace id minted at the client reached the manager's resolve
    // span and the data server's open span across real sockets.
    let id = format!("{:016x}", results[0].trace_id);
    let with_id: Vec<&str> = flight.lines().filter(|l| l.contains(&id)).collect();
    assert!(
        with_id.iter().any(|l| l.contains("stage=cms_resolve")),
        "trace {id} never reached the manager:\n{flight}"
    );
    assert!(
        with_id.iter().any(|l| l.contains("stage=srv_open")),
        "trace {id} never reached a data server:\n{flight}"
    );
    assert!(
        with_id.iter().any(|l| l.contains("stage=client_op")),
        "client op span missing:\n{flight}"
    );

    // (b) Per-stage latency histograms are non-empty.
    let samples = parse_prometheus(&metrics);
    assert!(sample_value(&samples, "scalla_stage_ns_count{stage=\"resolve\"}") >= 1.0, "{metrics}");
    assert!(
        sample_value(&samples, "scalla_stage_ns_count{stage=\"redirect_hop\"}") >= 1.0,
        "{metrics}"
    );
    // Cache counters mirrored through the per-node collector.
    assert!(sample_value(&samples, "scalla_cache_lookups_total{node=\"mgr\"}") >= 1.0, "{metrics}");
    // Runtime egress counters from the TCP tier.
    assert!(sample_value(&samples, "scalla_egress_frames_total") >= 1.0, "{metrics}");

    // (c) The JSON snapshot is well-formed enough to carry the same data.
    assert!(stats.trim_start().starts_with('{'), "{stats}");
    assert!(stats.contains("scalla_stage_ns"), "{stats}");
}
