//! Cluster dynamics end-to-end: the four occurrences of §III-A4 —
//! disconnect, drop, reconnect, new server — observed through client
//! behaviour and cache corrections.

use scalla::node::{ServerConfig, ServerNode};
use scalla::prelude::*;
use scalla::sim::ClusterConfig;

fn cfg(n: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::flat(n);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    // Fast drop so tests exercise the whole lifecycle quickly.
    cfg.membership.drop_after = Nanos::from_secs(20);
    cfg
}

#[test]
fn disconnected_server_marked_offline_then_dropped() {
    let mut c = SimCluster::build(cfg(3));
    c.settle(Nanos::from_secs(2));
    let mgr = c.managers[0];
    assert_eq!(c.with_cmsd(mgr, |n| n.members().active()).len(), 3);

    let victim = c.servers[1];
    c.net.kill(victim);
    // Heartbeat silence (> offline_after = 3 s) marks it offline.
    c.net.run_for(Nanos::from_secs(8));
    assert_eq!(c.with_cmsd(mgr, |n| n.members().offline()), ServerSet::single(1));
    // Still a cluster member: V_m keeps the bit (case 1).
    assert!(c.with_cmsd(mgr, |n| n.members().vm_for("/x")).contains(1));

    // Past the drop limit: removed from the cluster and every V_m (case 2).
    c.net.run_for(Nanos::from_secs(30));
    assert!(c.with_cmsd(mgr, |n| n.members().offline()).is_empty());
    assert!(!c.with_cmsd(mgr, |n| n.members().vm_for("/x")).contains(1));
}

#[test]
fn reconnect_within_window_preserves_cached_locations() {
    let mut c = SimCluster::build(cfg(3));
    c.seed_file(1, "/d/f", 1, true);
    c.settle(Nanos::from_secs(2));

    // Warm the manager's cache.
    let warm =
        c.add_client(vec![ClientOp::Open { path: "/d/f".into(), write: false }], Nanos::ZERO);
    c.start_node(warm);
    c.net.run_for(Nanos::from_secs(5));
    assert_eq!(c.client_results(warm)[0].outcome, OpOutcome::Ok);

    // Bounce the server briefly (well within the 20 s drop window).
    let victim = c.servers[1];
    c.net.kill(victim);
    c.net.run_for(Nanos::from_secs(6));
    c.net.revive(victim); // on_start re-logins with the same exports
    c.net.run_for(Nanos::from_secs(3));

    let mgr = c.managers[0];
    assert_eq!(c.with_cmsd(mgr, |n| n.members().active()).len(), 3, "case 3 reconnect");

    // The cached location still resolves — and fast, because prior cached
    // info about an un-dropped reconnector stays valid.
    let client =
        c.add_client(vec![ClientOp::Open { path: "/d/f".into(), write: false }], Nanos::ZERO);
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(10));
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok);
    assert_eq!(r[0].server.as_deref(), Some("srv-1"));
}

#[test]
fn late_joining_server_found_via_connect_correction() {
    // A file hosted ONLY on a server that joins after the location object
    // was cached (and proven absent). The correction vectors (§III-A4)
    // must re-query the newcomer instead of trusting the stale verdict.
    let mut c = SimCluster::build(cfg(2));
    c.settle(Nanos::from_secs(2));

    // Resolve before the newcomer exists: NotFound after the full delay.
    let before =
        c.add_client(vec![ClientOp::Open { path: "/late/f".into(), write: false }], Nanos::ZERO);
    c.start_node(before);
    c.net.run_for(Nanos::from_secs(20));
    assert_eq!(c.client_results(before)[0].outcome, OpOutcome::NotFound);

    // A new server joins carrying the file.
    let mgr = c.managers[0];
    let mut scfg = ServerConfig::new("srv-late", mgr);
    let mut node = ServerNode::new(scfg.clone());
    node.fs_mut().put_online("/late/f", 1);
    scfg.exports = vec!["/".into()];
    let addr = c.net.add_node(Box::new(node));
    c.directory.register("srv-late", addr);
    c.net.kill(addr);
    c.net.revive(addr); // run on_start (login)
    c.net.run_for(Nanos::from_secs(3));
    assert_eq!(c.with_cmsd(mgr, |n| n.members().active()).len(), 3);

    // Resolve again: C_n != N_c on the cached object, V_c adds the
    // newcomer to V_q, the query finds the file.
    let after =
        c.add_client(vec![ClientOp::Open { path: "/late/f".into(), write: false }], Nanos::ZERO);
    c.start_node(after);
    c.net.run_for(Nanos::from_secs(30));
    let r = c.client_results(after);
    assert_eq!(r[0].outcome, OpOutcome::Ok, "correction must find the newcomer");
    assert_eq!(r[0].server.as_deref(), Some("srv-late"));

    // And the manager's stats show a computed (or memoized) correction.
    let (computed, memo) = c.with_cmsd(mgr, |n| {
        let s = n.cache().stats();
        (
            scalla::cache::CacheStats::get(&s.corrections_computed),
            scalla::cache::CacheStats::get(&s.corrections_memo),
        )
    });
    assert!(computed + memo > 0, "a correction must have been applied");
}

#[test]
fn exclusive_files_vanish_with_their_server() {
    let mut c = SimCluster::build(cfg(3));
    c.seed_file(0, "/only/f", 1, true);
    c.settle(Nanos::from_secs(2));

    // Confirm it resolves.
    let ok =
        c.add_client(vec![ClientOp::Open { path: "/only/f".into(), write: false }], Nanos::ZERO);
    c.start_node(ok);
    c.net.run_for(Nanos::from_secs(5));
    assert_eq!(c.client_results(ok)[0].outcome, OpOutcome::Ok);

    // Kill the only holder and let it be dropped entirely.
    c.net.kill(c.servers[0]);
    c.net.run_for(Nanos::from_secs(60));

    let gone =
        c.add_client(vec![ClientOp::Open { path: "/only/f".into(), write: false }], Nanos::ZERO);
    c.start_node(gone);
    c.net.run_for(Nanos::from_secs(30));
    let r = c.client_results(gone);
    assert_eq!(
        r[0].outcome,
        OpOutcome::NotFound,
        "dropped server's files must become not-found, got {:?}",
        r[0]
    );
}

#[test]
fn manager_failover_with_replicated_heads() {
    let mut cfg = cfg(4);
    cfg.n_managers = 2;
    let mut c = SimCluster::build(cfg);
    c.seed_file(2, "/d/f", 1, true);
    c.settle(Nanos::from_secs(2));

    // Both managers know the cluster.
    for &m in &c.managers.clone() {
        assert_eq!(c.with_cmsd(m, |n| n.members().active()).len(), 4);
    }

    // Primary dies; the client times out and fails over to the replica.
    c.net.kill(c.managers[0]);
    let client = c.add_client_with(|cc| {
        cc.ops = vec![ClientOp::Open { path: "/d/f".into(), write: false }];
        cc.request_timeout = Nanos::from_secs(2);
    });
    c.start_node(client);
    c.net.run_for(Nanos::from_secs(60));
    let r = c.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok, "replica head must serve: {:?}", r[0]);
    assert!(r[0].latency() >= Nanos::from_secs(2), "paid the failover timeout");
}
