//! Large-scale soak: a 4 096-server, three-level tree under sustained
//! mixed load with failures injected mid-run. Run explicitly with
//! `cargo test --test soak -- --ignored` (it takes tens of seconds).

use scalla::prelude::*;
use scalla::sim::{summarize, workload, ClusterConfig, WorkloadConfig};

#[test]
#[ignore = "large: run with --ignored"]
fn four_thousand_servers_under_load_with_failures() {
    let mut cfg = ClusterConfig::flat(4096);
    cfg.fanout = 64; // 64 supervisors x 64 servers
    cfg.latency = LatencyModel::lan();
    cfg.heartbeat = Nanos::from_secs(5); // keep background traffic sane
    let mut c = SimCluster::build(cfg);
    assert_eq!(c.spec.depth(), 2);

    // 20 000-file catalog, 2 replicas each.
    let catalog = workload::make_catalog(20_000, "soak");
    let placement = workload::place_catalog(catalog.len(), 4096, 2, 1);
    for (i, homes) in placement.iter().enumerate() {
        for &s in homes {
            c.seed_file(s, &catalog[i], 1 << 16, true);
        }
    }
    c.settle(Nanos::from_secs(10));

    // 64 analysis jobs.
    let mut clients = Vec::new();
    for j in 0..64u64 {
        let wl = WorkloadConfig {
            files_per_job: 16,
            metadata_ops_per_file: 1,
            think: Nanos::from_millis(5),
            seed: j,
        };
        let ops = workload::analysis_job(&catalog, &wl);
        let a = c.add_client_with(|cc| {
            cc.ops = ops.clone();
            cc.start_delay = Nanos::from_millis(j * 7);
            cc.request_timeout = Nanos::from_secs(10);
            cc.max_refreshes = 5;
        });
        c.start_node(a);
        clients.push(a);
    }

    // Let load build, then kill 40 random-ish servers and one supervisor.
    c.net.run_for(Nanos::from_secs(5));
    for k in 0..40 {
        let idx = (k * 97) % 4096;
        let addr = c.servers[idx];
        c.net.kill(addr);
    }
    let sup = c.supervisors[3];
    c.net.kill(sup);
    c.net.run_for(Nanos::from_secs(120));

    let mut all = Vec::new();
    for a in clients {
        all.extend(c.client_results(a));
    }
    let s = summarize(&all);
    let total = s.ok + s.not_found + s.failed;
    assert_eq!(total, 64 * 32, "every op must terminate, got {total}");
    // With 2 replicas, a 1%-server + one-supervisor kill must leave the
    // overwhelming majority of operations successful.
    assert!(s.ok as f64 / total as f64 > 0.95, "too many casualties: {}", s.row());

    // Manager health: cache stayed bounded and hits dominated.
    let mgr = c.managers[0];
    let snap = c.with_cmsd(mgr, |n| n.cache().stats().snapshot());
    assert!(snap.hit_ratio() > 0.3, "hit ratio {:.2}", snap.hit_ratio());
    let len = c.with_cmsd(mgr, |n| n.cache().len());
    assert!(len <= 20_000 + 64, "cache bounded by requested set, got {len}");
}
