//! The same state machines under real threads: a full cluster on the live
//! runtime with genuine concurrency — locks, channels, wall-clock timers.

use scalla::cache::CacheConfig;
use scalla::client::{ClientConfig, ClientNode, ClientOp, Directory, OpOutcome};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla::prelude::*;
use scalla::sim::LiveNet;
use std::sync::Arc;

fn build_live(
    n_servers: usize,
    seeds: &[(usize, &str)],
) -> (LiveNet, Vec<ClientOp>, Arc<Directory>, Addr) {
    let mut net = LiveNet::new();
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    // Live runtime runs in real time: shrink the cache full delay so
    // negative verdicts don't stall the test suite.
    mgr_cfg.cache = CacheConfig { full_delay: Nanos::from_millis(500), ..CacheConfig::default() };
    mgr_cfg.offline_after = Nanos::from_millis(1500);
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let manager = net.add_node(Box::new(CmsdNode::new(mgr_cfg, clock)));
    directory.register("mgr", manager);

    for i in 0..n_servers {
        let name = format!("srv-{i}");
        let mut cfg = ServerConfig::new(&name, manager);
        cfg.heartbeat = Nanos::from_millis(200);
        let mut node = ServerNode::new(cfg);
        for (idx, path) in seeds {
            if *idx == i {
                node.fs_mut().put_online(path, 4096);
            }
        }
        let addr = net.add_node(Box::new(node));
        directory.register(&name, addr);
    }
    (net, Vec::new(), directory, manager)
}

fn harvest(nodes: Vec<Box<dyn Node>>, client_addr: Addr) -> Vec<scalla::client::OpResult> {
    let mut nodes = nodes;
    let node = &mut nodes[client_addr.0 as usize];
    node.as_any_mut()
        .expect("client")
        .downcast_ref::<ClientNode>()
        .expect("client node")
        .results()
        .to_vec()
}

#[test]
fn live_cluster_serves_reads() {
    let (mut net, _, directory, manager) = build_live(4, &[(2, "/live/f1"), (3, "/live/f2")]);
    let ops = vec![
        ClientOp::OpenRead { path: "/live/f1".into(), len: 128 },
        ClientOp::OpenRead { path: "/live/f2".into(), len: 128 },
        ClientOp::OpenRead { path: "/live/f1".into(), len: 128 },
    ];
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_millis(600); // let logins land
    ccfg.request_timeout = Nanos::from_secs(5);
    let client = net.add_node(Box::new(ClientNode::new(ccfg)));
    net.start();
    std::thread::sleep(std::time::Duration::from_secs(3));
    let nodes = net.shutdown();
    let results = harvest(nodes, client);
    assert_eq!(results.len(), 3, "all ops must complete: {results:?}");
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok), "{results:?}");
    assert_eq!(results[0].server.as_deref(), Some("srv-2"));
    assert_eq!(results[1].server.as_deref(), Some("srv-3"));
    // Third op is a warm hit: strictly fewer messages, so never slower
    // than 10x the warm path (loose bound; wall-clock is noisy).
    assert!(results[2].latency() < Nanos::from_secs(1));
}

#[test]
fn live_cluster_notfound_after_full_delay() {
    let (mut net, _, directory, manager) = build_live(3, &[]);
    let ops = vec![ClientOp::Open { path: "/live/ghost".into(), write: false }];
    let mut ccfg = ClientConfig::new(manager, directory, ops);
    ccfg.start_delay = Nanos::from_millis(600);
    ccfg.request_timeout = Nanos::from_secs(5);
    let client = net.add_node(Box::new(ClientNode::new(ccfg)));
    net.start();
    std::thread::sleep(std::time::Duration::from_secs(3));
    let nodes = net.shutdown();
    let results = harvest(nodes, client);
    assert_eq!(results.len(), 1, "{results:?}");
    assert_eq!(results[0].outcome, OpOutcome::NotFound);
    // The 500 ms full delay was imposed before the verdict.
    assert!(results[0].latency() >= Nanos::from_millis(500));
}

#[test]
fn live_cluster_concurrent_clients() {
    let (mut net, _, directory, manager) = build_live(4, &[(0, "/live/shared")]);
    let mut clients = Vec::new();
    for _ in 0..8 {
        let ops = vec![
            ClientOp::OpenRead { path: "/live/shared".into(), len: 64 },
            ClientOp::OpenRead { path: "/live/shared".into(), len: 64 },
        ];
        let mut ccfg = ClientConfig::new(manager, directory.clone(), ops);
        ccfg.start_delay = Nanos::from_millis(600);
        ccfg.request_timeout = Nanos::from_secs(5);
        clients.push(net.add_node(Box::new(ClientNode::new(ccfg))));
    }
    net.start();
    std::thread::sleep(std::time::Duration::from_secs(4));
    let nodes = net.shutdown();
    let mut nodes = nodes;
    for &addr in &clients {
        let results = nodes[addr.0 as usize]
            .as_any_mut()
            .unwrap()
            .downcast_ref::<ClientNode>()
            .unwrap()
            .results()
            .to_vec();
        assert_eq!(results.len(), 2, "{results:?}");
        assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok), "{results:?}");
    }
}

#[test]
fn live_eviction_ticks_in_real_time() {
    // A short lifetime makes windows tick every 100 ms of *real* time:
    // cached entries must expire and be collected by the background
    // timers without any harness intervention.
    let mut net = LiveNet::new();
    let clock = net.clock();
    let directory = Arc::new(Directory::new());
    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache = CacheConfig {
        lifetime: Nanos::from_millis(6_400), // 100 ms windows
        full_delay: Nanos::from_millis(300),
        ..CacheConfig::default()
    };
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let manager = net.add_node(Box::new(CmsdNode::new(mgr_cfg, clock)));
    directory.register("mgr", manager);
    let mut scfg = ServerConfig::new("srv-0", manager);
    scfg.heartbeat = Nanos::from_millis(200);
    let mut srv = ServerNode::new(scfg);
    srv.fs_mut().put_online("/live/e", 1);
    let saddr = net.add_node(Box::new(srv));
    directory.register("srv-0", saddr);

    let mut ccfg = ClientConfig::new(
        manager,
        directory,
        vec![ClientOp::Open { path: "/live/e".into(), write: false }],
    );
    ccfg.start_delay = Nanos::from_millis(500);
    let client = net.add_node(Box::new(ClientNode::new(ccfg)));
    net.start();
    // Wait past the open plus a full lifetime (6.4 s) plus slack.
    std::thread::sleep(std::time::Duration::from_secs(9));
    let mut nodes = net.shutdown();
    let results = nodes[client.0 as usize]
        .as_any_mut()
        .unwrap()
        .downcast_ref::<ClientNode>()
        .unwrap()
        .results()
        .to_vec();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].outcome, OpOutcome::Ok);
    // The manager's cache entry for the file must have expired and been
    // background-collected by the live timers.
    let mgr_node =
        nodes[manager.0 as usize].as_any_mut().unwrap().downcast_ref::<CmsdNode>().unwrap();
    let stats = mgr_node.cache().stats();
    use scalla::cache::CacheStats as S;
    assert!(S::get(&stats.evictions) >= 1, "entry must expire in real time");
    assert!(S::get(&stats.collected) >= 1, "background collection must run");
    assert_eq!(mgr_node.cache().len(), 0, "cache empty after a lifetime");
}
