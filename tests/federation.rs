//! Hierarchical federation (§IV-A): "The ALICE LHC experiment uses Scalla
//! to provide world-wide file access by clustering storage over 60 sites
//! in 20 countries." A global redirector sits above per-site managers
//! (which are just supervisor-role cmsds); sites are WAN-distant and
//! export site-prefixed namespaces.

use scalla::cache::CacheConfig;
use scalla::client::{ClientConfig, ClientNode, ClientOp, Directory, OpOutcome};
use scalla::node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla::prelude::*;
use std::sync::Arc;

struct Federation {
    net: SimNet,
    directory: Arc<Directory>,
    global: Addr,
    sites: Vec<Addr>,
    servers: Vec<Vec<Addr>>,
}

/// Builds `n_sites` sites with `per_site` servers each. Site `s` exports
/// `/fed/site{s}` plus the shared `/fed/common` prefix.
fn build(n_sites: usize, per_site: usize) -> Federation {
    let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(25)), 21);
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let global =
        net.add_node(Box::new(CmsdNode::new(CmsdConfig::manager("global"), clock.clone())));
    directory.register("global", global);

    let mut sites = Vec::new();
    let mut servers = Vec::new();
    for s in 0..n_sites {
        let name = format!("site{s}-mgr");
        let mut cfg = CmsdConfig::supervisor(&name, global);
        cfg.exports = vec![format!("/fed/site{s}"), "/fed/common".to_string()];
        cfg.cache = CacheConfig::default();
        let site = net.add_node(Box::new(CmsdNode::new(cfg, clock.clone())));
        directory.register(&name, site);
        // WAN: 40 ms from the global redirector to each site head.
        net.set_link(global, site, LatencyModel::fixed(Nanos::from_millis(40)));
        let mut site_servers = Vec::new();
        for k in 0..per_site {
            let sname = format!("site{s}-srv{k}");
            let mut scfg = ServerConfig::new(&sname, site);
            scfg.exports = vec![format!("/fed/site{s}"), "/fed/common".to_string()];
            let addr = net.add_node(Box::new(ServerNode::new(scfg)));
            directory.register(&sname, addr);
            site_servers.push(addr);
        }
        sites.push(site);
        servers.push(site_servers);
    }
    Federation { net, directory, global, sites, servers }
}

fn seed(fed: &mut Federation, site: usize, srv: usize, path: &str) {
    let addr = fed.servers[site][srv];
    let node = fed.net.node_mut(addr).as_any_mut().unwrap();
    node.downcast_mut::<ServerNode>().unwrap().fs_mut().put_online(path, 1 << 12);
}

fn run_client(fed: &mut Federation, ops: Vec<ClientOp>) -> Vec<scalla::client::OpResult> {
    let mut ccfg = ClientConfig::new(fed.global, fed.directory.clone(), ops);
    ccfg.request_timeout = Nanos::from_secs(10);
    let client = fed.net.add_node(Box::new(ClientNode::new(ccfg)));
    fed.net.kill(client);
    fed.net.revive(client);
    fed.net.run_for(Nanos::from_secs(120));
    let node = fed.net.node_mut(client).as_any_mut().unwrap();
    node.downcast_ref::<ClientNode>().unwrap().results().to_vec()
}

#[test]
fn global_redirector_routes_to_the_owning_site() {
    let mut fed = build(3, 2);
    seed(&mut fed, 2, 1, "/fed/site2/dataset.root");
    fed.net.start();
    fed.net.run_for(Nanos::from_secs(3));

    let r = run_client(
        &mut fed,
        vec![ClientOp::Open { path: "/fed/site2/dataset.root".into(), write: false }],
    );
    assert_eq!(r[0].outcome, OpOutcome::Ok, "{r:?}");
    assert_eq!(r[0].server.as_deref(), Some("site2-srv1"));
    assert_eq!(r[0].redirects, 2, "global -> site head -> server");
    // The walk crossed the WAN twice (query + client hop): latency is
    // dominated by the 40 ms links.
    assert!(r[0].latency() >= Nanos::from_millis(80), "{}", r[0].latency());
}

#[test]
fn prefix_scoping_limits_the_flood_to_eligible_sites() {
    let mut fed = build(3, 2);
    seed(&mut fed, 1, 0, "/fed/site1/f.root");
    fed.net.start();
    fed.net.run_for(Nanos::from_secs(3));
    let r = run_client(
        &mut fed,
        vec![ClientOp::Open { path: "/fed/site1/f.root".into(), write: false }],
    );
    assert_eq!(r[0].outcome, OpOutcome::Ok);
    // V_m at the global redirector contains only site1 for this prefix, so
    // only that site was flooded: the other site heads must have no cache
    // entry (they were never asked) and no lookups at all for the path.
    for &other in [0usize, 2].iter() {
        let site = fed.sites[other];
        let node = fed.net.node_mut(site).as_any_mut().unwrap();
        let cmsd = node.downcast_ref::<CmsdNode>().unwrap();
        assert!(
            cmsd.cache().peek("/fed/site1/f.root").is_none(),
            "site{other} must never have been queried"
        );
    }
}

#[test]
fn common_namespace_found_at_any_hosting_site() {
    let mut fed = build(2, 2);
    // The shared dataset exists at both sites.
    seed(&mut fed, 0, 0, "/fed/common/shared.root");
    seed(&mut fed, 1, 1, "/fed/common/shared.root");
    fed.net.start();
    fed.net.run_for(Nanos::from_secs(3));
    let r = run_client(
        &mut fed,
        vec![
            ClientOp::Open { path: "/fed/common/shared.root".into(), write: false },
            ClientOp::Open { path: "/fed/common/shared.root".into(), write: false },
            ClientOp::Open { path: "/fed/common/shared.root".into(), write: false },
            ClientOp::Open { path: "/fed/common/shared.root".into(), write: false },
        ],
    );
    assert!(r.iter().all(|x| x.outcome == OpOutcome::Ok), "{r:?}");
    let via: Vec<&str> = r.iter().map(|x| x.server.as_deref().unwrap()).collect();
    for v in &via {
        assert!(v.starts_with("site0-") || v.starts_with("site1-"));
    }
    // Round-robin across sites: over four opens both sites must serve.
    let sites_used: std::collections::HashSet<&str> = via.iter().map(|v| &v[..5]).collect();
    assert_eq!(sites_used.len(), 2, "selection should rotate sites: {via:?}");
}

#[test]
fn site_outage_fails_over_to_surviving_replica_site() {
    let mut fed = build(2, 2);
    seed(&mut fed, 0, 0, "/fed/common/ha.root");
    seed(&mut fed, 1, 0, "/fed/common/ha.root");
    fed.net.start();
    fed.net.run_for(Nanos::from_secs(3));

    // Site 0 (head + servers) goes dark.
    let dead_head = fed.sites[0];
    fed.net.kill(dead_head);
    for &s in fed.servers[0].clone().iter() {
        fed.net.kill(s);
    }
    fed.net.run_for(Nanos::from_secs(10)); // global notices the silence

    let r = run_client(
        &mut fed,
        vec![ClientOp::Open { path: "/fed/common/ha.root".into(), write: false }],
    );
    assert_eq!(r[0].outcome, OpOutcome::Ok, "surviving site must serve: {r:?}");
    assert!(r[0].server.as_deref().unwrap().starts_with("site1-"));
}
