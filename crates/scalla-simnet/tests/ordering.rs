//! Simnet delivery-order and determinism properties.

use proptest::prelude::*;
use scalla_proto::{Addr, ClientMsg, Msg};
use scalla_simnet::{LatencyModel, NetCtx, Node, SimNet};
use scalla_util::Nanos;
use std::sync::{Arc, Mutex};

/// Records (arrival time, tag) of every message it hears.
struct Recorder {
    log: Arc<Mutex<Vec<(Nanos, u64)>>>,
}

impl Node for Recorder {
    fn on_message(&mut self, ctx: &mut dyn NetCtx, _from: Addr, msg: Msg) {
        if let Msg::Client(ClientMsg::Close { handle }) = msg {
            self.log.lock().unwrap().push((ctx.now(), handle));
        }
    }
}

fn msg(tag: u64) -> Msg {
    ClientMsg::Close { handle: tag }.into()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delivery times are never earlier than send time + base latency and
    /// never later than send time + base + jitter.
    #[test]
    fn delivery_within_latency_bounds(
        base_us in 1u64..500,
        jitter_us in 0u64..500,
        n_msgs in 1usize..50,
        seed: u64,
    ) {
        let model = LatencyModel {
            base: Nanos::from_micros(base_us),
            jitter: Nanos::from_micros(jitter_us),
        };
        let mut net = SimNet::new(model, seed);
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = net.add_node(Box::new(Recorder { log: log.clone() }));
        net.start();
        for i in 0..n_msgs {
            net.inject(Addr(1000), sink, msg(i as u64));
        }
        let t_send = net.now();
        net.run_until(Nanos::from_secs(10));
        let log = log.lock().unwrap();
        prop_assert_eq!(log.len(), n_msgs);
        for &(at, _) in log.iter() {
            prop_assert!(at >= t_send + Nanos::from_micros(base_us));
            prop_assert!(at < t_send + Nanos::from_micros(base_us + jitter_us.max(1)));
        }
        // Arrival timestamps are non-decreasing in processing order.
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
        }
    }

    /// Identical seeds produce byte-identical delivery logs; different
    /// jitter draws change only timing, never the message set.
    #[test]
    fn determinism_and_completeness(seed: u64, n_msgs in 1usize..40) {
        let run = |seed: u64| {
            let model = LatencyModel {
                base: Nanos::from_micros(10),
                jitter: Nanos::from_micros(100),
            };
            let mut net = SimNet::new(model, seed);
            let log = Arc::new(Mutex::new(Vec::new()));
            let sink = net.add_node(Box::new(Recorder { log: log.clone() }));
            net.start();
            for i in 0..n_msgs {
                net.inject(Addr(7), sink, msg(i as u64));
            }
            net.run_until(Nanos::from_secs(10));
            let v = log.lock().unwrap().clone();
            v
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(&a, &b, "same seed must replay identically");
        let c = run(seed.wrapping_add(1));
        let mut tags_a: Vec<u64> = a.iter().map(|x| x.1).collect();
        let mut tags_c: Vec<u64> = c.iter().map(|x| x.1).collect();
        tags_a.sort_unstable();
        tags_c.sort_unstable();
        prop_assert_eq!(tags_a, tags_c, "seed changes timing, not delivery");
    }
}
