//! The event loop, latency model, and node traits.

use scalla_proto::{Addr, Msg};
use scalla_util::{Clock, Nanos, SplitMix64, VirtualClock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// What a protocol state machine can do to the outside world. Both the
/// discrete-event runtime (here) and the live threaded runtime implement
/// this, so node logic is written once.
pub trait NetCtx {
    /// Current time.
    fn now(&self) -> Nanos;
    /// This node's address.
    fn me(&self) -> Addr;
    /// Sends `msg` to `to`; delivery is asynchronous and may be lossy.
    fn send(&mut self, to: Addr, msg: Msg);
    /// Arms a one-shot timer that fires `on_timer(token)` after `delay`.
    fn set_timer(&mut self, delay: Nanos, token: u64);
    /// Uniform random bits (deterministic under the simulator).
    fn rand_u64(&mut self) -> u64;
    /// Sets the ambient request trace id: subsequent `send`s from this
    /// callback carry it on the wire (runtimes without tracing ignore it).
    fn set_trace(&mut self, _trace: u64) {}
    /// The ambient request trace id (0 = untraced). Set by the runtime
    /// before dispatching a traced inbound message, or by the node itself
    /// via [`NetCtx::set_trace`] when it originates a request.
    fn trace(&self) -> u64 {
        0
    }
}

/// A protocol state machine attached to the network.
pub trait Node: Send {
    /// Called once when the node is started (or revived).
    fn on_start(&mut self, _ctx: &mut dyn NetCtx) {}
    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg);
    /// Called when a timer armed with `set_timer` fires.
    fn on_timer(&mut self, _ctx: &mut dyn NetCtx, _token: u64) {}
    /// Optional downcast hook so harnesses can inspect or mutate concrete
    /// node state (seed files, read client results) between events.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Per-link delivery latency: `base` plus uniform jitter in `[0, jitter)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed one-way latency.
    pub base: Nanos,
    /// Upper bound (exclusive) of the uniform jitter added per message.
    pub jitter: Nanos,
}

impl LatencyModel {
    /// A LAN-ish default: 20 µs ± 10 µs one-way, in line with the paper's
    /// commodity-interconnect setting.
    pub fn lan() -> LatencyModel {
        LatencyModel { base: Nanos::from_micros(20), jitter: Nanos::from_micros(10) }
    }

    /// A fixed, jitter-free latency (unit tests, analytic experiments).
    pub fn fixed(latency: Nanos) -> LatencyModel {
        LatencyModel { base: latency, jitter: Nanos::ZERO }
    }

    fn sample(&self, rng: &mut SplitMix64) -> Nanos {
        if self.jitter.0 == 0 {
            self.base
        } else {
            self.base + Nanos(rng.next_below(self.jitter.0))
        }
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver { from: Addr, msg: Msg, trace: u64 },
    Timer { token: u64 },
}

struct Event {
    at: Nanos,
    seq: u64,
    to: Addr,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Event) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Traffic counters.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered to live nodes.
    pub delivered: u64,
    /// Messages dropped (dead endpoint, partition, or injected loss).
    pub dropped: u64,
    /// Timer firings.
    pub timers: u64,
    /// Extra copies enqueued by duplication injection.
    pub duplicated: u64,
}

/// Collected effects of one handler invocation. Each send carries the
/// trace id that was ambient when it was issued.
#[derive(Default)]
struct Effects {
    sends: Vec<(Addr, Msg, u64)>,
    timers: Vec<(Nanos, u64)>,
}

struct SimCtx<'a> {
    now: Nanos,
    me: Addr,
    // Ambient trace id: seeded from the event being delivered, stamped on
    // every send issued during the callback (see `NetCtx::set_trace`).
    trace: u64,
    rng: &'a mut SplitMix64,
    effects: &'a mut Effects,
}

impl NetCtx for SimCtx<'_> {
    fn now(&self) -> Nanos {
        self.now
    }
    fn me(&self) -> Addr {
        self.me
    }
    fn send(&mut self, to: Addr, msg: Msg) {
        self.effects.sends.push((to, msg, self.trace));
    }
    fn set_timer(&mut self, delay: Nanos, token: u64) {
        self.effects.timers.push((delay, token));
    }
    fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }
    fn trace(&self) -> u64 {
        self.trace
    }
}

/// The discrete-event network.
pub struct SimNet {
    clock: Arc<VirtualClock>,
    nodes: Vec<Option<Box<dyn Node>>>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    default_latency: LatencyModel,
    links: HashMap<(Addr, Addr), LatencyModel>,
    down: HashSet<Addr>,
    /// Directed pairs whose traffic is blackholed (bidirectional partitions
    /// insert both orientations).
    blocked: HashSet<(Addr, Addr)>,
    loss_permille: u16,
    dup_permille: u16,
    /// Extra uniform per-message delay in `[0, reorder_jitter)`; two
    /// messages on the same link may overtake each other once this exceeds
    /// their spacing.
    reorder_jitter: Nanos,
    rng: SplitMix64,
    stats: SimStats,
}

impl SimNet {
    /// Creates a network with the given default link model and RNG seed.
    pub fn new(default_latency: LatencyModel, seed: u64) -> SimNet {
        SimNet {
            clock: Arc::new(VirtualClock::new()),
            nodes: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            default_latency,
            links: HashMap::new(),
            down: HashSet::new(),
            blocked: HashSet::new(),
            loss_permille: 0,
            dup_permille: 0,
            reorder_jitter: Nanos::ZERO,
            rng: SplitMix64::new(seed),
            stats: SimStats::default(),
        }
    }

    /// The virtual clock, shareable with caches and other components.
    pub fn clock(&self) -> Arc<VirtualClock> {
        self.clock.clone()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Traffic counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Registers a node; its `on_start` runs at the current time during
    /// [`SimNet::start`] (or immediately if the net already started).
    pub fn add_node(&mut self, node: Box<dyn Node>) -> Addr {
        let addr = Addr(self.nodes.len() as u64);
        self.nodes.push(Some(node));
        addr
    }

    /// Runs `on_start` for every node (in registration order).
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            let addr = Addr(i as u64);
            if !self.down.contains(&addr) {
                self.dispatch_start(addr);
            }
        }
    }

    /// Sets a symmetric per-link latency override.
    pub fn set_link(&mut self, a: Addr, b: Addr, model: LatencyModel) {
        self.links.insert((a, b), model);
        self.links.insert((b, a), model);
    }

    /// Removes a per-link latency override, restoring the default model.
    pub fn clear_link(&mut self, a: Addr, b: Addr) {
        self.links.remove(&(a, b));
        self.links.remove(&(b, a));
    }

    /// Sets a global message loss rate in permille (0–1000).
    pub fn set_loss_permille(&mut self, permille: u16) {
        self.loss_permille = permille.min(1000);
    }

    /// Sets a global duplication rate in permille (0–1000): each affected
    /// message is delivered twice, the copy with an independently sampled
    /// latency (so duplicates may arrive out of order).
    pub fn set_dup_permille(&mut self, permille: u16) {
        self.dup_permille = permille.min(1000);
    }

    /// Sets a bounded reordering knob: every message gets an extra uniform
    /// delay in `[0, jitter)` on top of its link latency, so back-to-back
    /// messages can overtake each other. `Nanos::ZERO` disables it (FIFO
    /// per link is then preserved by the event-sequence tiebreak).
    pub fn set_reorder_jitter(&mut self, jitter: Nanos) {
        self.reorder_jitter = jitter;
    }

    /// Installs a bidirectional partition: traffic between `a` and `b` is
    /// dropped (and counted) in both directions. Messages already in
    /// flight still arrive — they left the NIC before the cut.
    pub fn partition(&mut self, a: Addr, b: Addr) {
        self.blocked.insert((a, b));
        self.blocked.insert((b, a));
    }

    /// Heals a partition installed with [`SimNet::partition`].
    pub fn heal(&mut self, a: Addr, b: Addr) {
        self.blocked.remove(&(a, b));
        self.blocked.remove(&(b, a));
    }

    /// Takes a node down: all queued and future messages to it are dropped,
    /// as are its pending timers.
    pub fn kill(&mut self, addr: Addr) {
        self.down.insert(addr);
    }

    /// Revives a node; its `on_start` runs again (e.g. to re-login).
    pub fn revive(&mut self, addr: Addr) {
        if self.down.remove(&addr) {
            self.dispatch_start(addr);
        }
    }

    /// Whether `addr` is currently down.
    pub fn is_down(&self, addr: Addr) -> bool {
        self.down.contains(&addr)
    }

    /// Injects a message from an external source (e.g. a test harness)
    /// with normal latency applied.
    pub fn inject(&mut self, from: Addr, to: Addr, msg: Msg) {
        self.queue_send(from, to, msg, 0);
    }

    fn latency_between(&mut self, from: Addr, to: Addr) -> Nanos {
        let model = self.links.get(&(from, to)).copied().unwrap_or(self.default_latency);
        let base = model.sample(&mut self.rng);
        if self.reorder_jitter.0 == 0 {
            base
        } else {
            base + Nanos(self.rng.next_below(self.reorder_jitter.0))
        }
    }

    fn queue_send(&mut self, from: Addr, to: Addr, msg: Msg, trace: u64) {
        if self.blocked.contains(&(from, to)) {
            self.stats.dropped += 1;
            return;
        }
        if self.loss_permille > 0 && self.rng.next_below(1000) < self.loss_permille as u64 {
            self.stats.dropped += 1;
            return;
        }
        if self.dup_permille > 0 && self.rng.next_below(1000) < self.dup_permille as u64 {
            // At-least-once delivery: the copy samples its own latency, so
            // it can land before or after the original.
            self.stats.duplicated += 1;
            let at = self.clock.now() + self.latency_between(from, to);
            let kind = EventKind::Deliver { from, msg: msg.clone(), trace };
            self.push_event(Event { at, seq: 0, to, kind });
        }
        let at = self.clock.now() + self.latency_between(from, to);
        self.push_event(Event { at, seq: 0, to, kind: EventKind::Deliver { from, msg, trace } });
    }

    fn push_event(&mut self, mut ev: Event) {
        ev.seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(ev));
    }

    fn dispatch_start(&mut self, addr: Addr) {
        let Some(mut node) = self.nodes[addr.0 as usize].take() else {
            return;
        };
        let mut effects = Effects::default();
        {
            let mut ctx = SimCtx {
                now: self.clock.now(),
                me: addr,
                trace: 0,
                rng: &mut self.rng,
                effects: &mut effects,
            };
            node.on_start(&mut ctx);
        }
        self.nodes[addr.0 as usize] = Some(node);
        self.apply_effects(addr, effects);
    }

    fn apply_effects(&mut self, from: Addr, effects: Effects) {
        for (to, msg, trace) in effects.sends {
            self.queue_send(from, to, msg, trace);
        }
        let now = self.clock.now();
        for (delay, token) in effects.timers {
            self.push_event(Event {
                at: now + delay,
                seq: 0,
                to: from,
                kind: EventKind::Timer { token },
            });
        }
    }

    /// Processes the next event, if any, returning its timestamp.
    pub fn step(&mut self) -> Option<Nanos> {
        let Reverse(ev) = self.events.pop()?;
        debug_assert!(ev.at >= self.clock.now(), "event from the past");
        self.clock.set(ev.at);

        if self.down.contains(&ev.to) || ev.to.0 as usize >= self.nodes.len() {
            // Dead or unregistered endpoint (e.g. a synthetic external
            // address used by a test harness): drop on the floor.
            self.stats.dropped += 1;
            return Some(ev.at);
        }
        let Some(mut node) = self.nodes[ev.to.0 as usize].take() else {
            self.stats.dropped += 1;
            return Some(ev.at);
        };
        let mut effects = Effects::default();
        {
            let inbound_trace = match &ev.kind {
                EventKind::Deliver { trace, .. } => *trace,
                EventKind::Timer { .. } => 0,
            };
            let mut ctx = SimCtx {
                now: ev.at,
                me: ev.to,
                trace: inbound_trace,
                rng: &mut self.rng,
                effects: &mut effects,
            };
            match ev.kind {
                EventKind::Deliver { from, msg, .. } => {
                    if self.down.contains(&from) {
                        // Sender died while the message was in flight; the
                        // bytes still arrive (they already left the NIC).
                    }
                    self.stats.delivered += 1;
                    node.on_message(&mut ctx, from, msg);
                }
                EventKind::Timer { token } => {
                    self.stats.timers += 1;
                    node.on_timer(&mut ctx, token);
                }
            }
        }
        self.nodes[ev.to.0 as usize] = Some(node);
        self.apply_effects(ev.to, effects);
        Some(ev.at)
    }

    /// Runs until the event queue is exhausted or virtual time would pass
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: Nanos) -> u64 {
        let mut n = 0;
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        // Time advances to the deadline even if the queue ran dry first.
        if self.clock.now() < deadline {
            self.clock.set(deadline);
        }
        n
    }

    /// Runs for `duration` of virtual time from now.
    pub fn run_for(&mut self, duration: Nanos) -> u64 {
        let deadline = self.clock.now() + duration;
        self.run_until(deadline)
    }

    /// Mutable access to a node for harness inspection. The node must have
    /// been registered and not be mid-dispatch.
    pub fn node_mut(&mut self, addr: Addr) -> &mut dyn Node {
        self.nodes[addr.0 as usize].as_deref_mut().expect("node present outside dispatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_proto::{ClientMsg, ServerMsg};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Echoes every Open back as a Redirect carrying the receive time.
    struct Echo;
    impl Node for Echo {
        fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
            if matches!(msg, Msg::Client(ClientMsg::Open { .. })) {
                let host = format!("{}", ctx.now().0);
                ctx.send(from, ServerMsg::Redirect { host }.into());
            }
        }
    }

    /// Records delivery times of everything it hears.
    struct Sink(Arc<AtomicU64>, Vec<Nanos>);
    impl Node for Sink {
        fn on_message(&mut self, ctx: &mut dyn NetCtx, _from: Addr, _msg: Msg) {
            self.0.fetch_add(1, Ordering::SeqCst);
            self.1.push(ctx.now());
        }
    }

    fn open() -> Msg {
        ClientMsg::Open { path: "/f".into(), write: false, refresh: false, avoid: None }.into()
    }

    #[test]
    fn fixed_latency_roundtrip() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(50)), 1);
        let echo = net.add_node(Box::new(Echo));
        let count = Arc::new(AtomicU64::new(0));
        let sink = net.add_node(Box::new(Sink(count.clone(), Vec::new())));
        net.start();
        net.inject(sink, echo, open());
        net.run_until(Nanos::from_secs(1));
        assert_eq!(count.load(Ordering::SeqCst), 1);
        // One hop there (50 µs) + one hop back (50 µs).
        assert_eq!(net.now(), Nanos::from_secs(1));
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut net = SimNet::new(
                LatencyModel { base: Nanos::from_micros(20), jitter: Nanos::from_micros(30) },
                seed,
            );
            let echo = net.add_node(Box::new(Echo));
            let count = Arc::new(AtomicU64::new(0));
            let sink = net.add_node(Box::new(Sink(count.clone(), Vec::new())));
            net.start();
            for _ in 0..20 {
                net.inject(sink, echo, open());
            }
            net.run_until(Nanos::from_secs(1));
            (count.load(Ordering::SeqCst), net.stats())
        };
        assert_eq!(run(7), run(7));
        let (a, _) = run(7);
        assert_eq!(a, 20);
    }

    #[test]
    fn killed_node_drops_messages_revive_restarts() {
        struct Greeter {
            peer: Addr,
        }
        impl Node for Greeter {
            fn on_start(&mut self, ctx: &mut dyn NetCtx) {
                ctx.send(self.peer, ServerMsg::CloseOk.into());
            }
            fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {}
        }
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(10)), 3);
        let count = Arc::new(AtomicU64::new(0));
        let sink = net.add_node(Box::new(Sink(count.clone(), Vec::new())));
        let greeter = net.add_node(Box::new(Greeter { peer: sink }));
        net.start();
        net.run_for(Nanos::from_millis(1));
        assert_eq!(count.load(Ordering::SeqCst), 1);

        net.kill(sink);
        net.inject(greeter, sink, open());
        net.run_for(Nanos::from_millis(1));
        assert_eq!(count.load(Ordering::SeqCst), 1, "down node hears nothing");
        assert!(net.stats().dropped >= 1);

        net.revive(sink);
        // Reviving the greeter-side works too: on_start re-sends.
        net.kill(greeter);
        net.revive(greeter);
        net.run_for(Nanos::from_millis(1));
        assert_eq!(count.load(Ordering::SeqCst), 2, "revive re-runs on_start");
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Arc<AtomicU64>,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut dyn NetCtx) {
                ctx.set_timer(Nanos::from_millis(30), 3);
                ctx.set_timer(Nanos::from_millis(10), 1);
                ctx.set_timer(Nanos::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
                // Tokens must arrive 1, 2, 3 at 10, 20, 30 ms.
                let n = self.fired.fetch_add(1, Ordering::SeqCst) + 1;
                assert_eq!(n, token);
                assert_eq!(ctx.now(), Nanos::from_millis(10 * token));
            }
        }
        let fired = Arc::new(AtomicU64::new(0));
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::ZERO), 0);
        net.add_node(Box::new(TimerNode { fired: fired.clone() }));
        net.start();
        net.run_until(Nanos::from_secs(1));
        assert_eq!(fired.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn loss_rate_drops_roughly_that_fraction() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(1)), 11);
        let count = Arc::new(AtomicU64::new(0));
        let sink = net.add_node(Box::new(Sink(count.clone(), Vec::new())));
        net.start();
        net.set_loss_permille(500);
        for _ in 0..1000 {
            net.inject(Addr(99), sink, open());
        }
        net.run_until(Nanos::from_secs(1));
        let delivered = count.load(Ordering::SeqCst);
        assert!((350..=650).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn partition_blocks_both_directions_until_healed() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(1)), 5);
        let count = Arc::new(AtomicU64::new(0));
        let sink = net.add_node(Box::new(Sink(count.clone(), Vec::new())));
        let echo = net.add_node(Box::new(Echo));
        net.start();
        net.partition(sink, echo);
        net.inject(sink, echo, open());
        net.inject(echo, sink, ServerMsg::CloseOk.into());
        net.run_for(Nanos::from_millis(1));
        assert_eq!(count.load(Ordering::SeqCst), 0, "partition cuts both ways");
        assert_eq!(net.stats().dropped, 2);
        net.heal(sink, echo);
        net.inject(echo, sink, ServerMsg::CloseOk.into());
        net.run_for(Nanos::from_millis(1));
        assert_eq!(count.load(Ordering::SeqCst), 1, "healed link delivers");
    }

    #[test]
    fn dup_permille_delivers_extra_copies() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(1)), 9);
        let count = Arc::new(AtomicU64::new(0));
        let sink = net.add_node(Box::new(Sink(count.clone(), Vec::new())));
        net.start();
        net.set_dup_permille(1000);
        for _ in 0..100 {
            net.inject(Addr(99), sink, open());
        }
        net.run_until(Nanos::from_secs(1));
        assert_eq!(count.load(Ordering::SeqCst), 200, "every message duplicated");
        assert_eq!(net.stats().duplicated, 100);
    }

    #[test]
    fn reorder_jitter_lets_messages_overtake() {
        struct OrderSink(Arc<std::sync::Mutex<Vec<String>>>);
        impl Node for OrderSink {
            fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, msg: Msg) {
                if let Msg::Client(ClientMsg::Open { path, .. }) = msg {
                    self.0.lock().unwrap().push(path);
                }
            }
        }
        let run = |jitter: Nanos| {
            let order = Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(5)), 13);
            let sink = net.add_node(Box::new(OrderSink(order.clone())));
            net.start();
            net.set_reorder_jitter(jitter);
            for i in 0..50 {
                let msg = ClientMsg::Open {
                    path: format!("/m{i:02}"),
                    write: false,
                    refresh: false,
                    avoid: None,
                };
                net.inject(Addr(99), sink, msg.into());
            }
            net.run_until(Nanos::from_secs(1));
            let got = order.lock().unwrap().clone();
            got
        };
        let fifo = run(Nanos::ZERO);
        let mut sorted = fifo.clone();
        sorted.sort();
        assert_eq!(fifo, sorted, "no jitter: FIFO preserved by seq tiebreak");
        let jittered = run(Nanos::from_millis(1));
        assert_eq!(jittered.len(), 50, "reordering never loses messages");
        let mut resorted = jittered.clone();
        resorted.sort();
        assert_ne!(jittered, resorted, "1 ms jitter over 0-latency spacing reorders");
        assert_eq!(resorted, sorted, "same multiset either way");
    }

    #[test]
    fn link_override_beats_default() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_millis(10)), 0);
        let count = Arc::new(AtomicU64::new(0));
        let sink = net.add_node(Box::new(Sink(count.clone(), Vec::new())));
        let src = net.add_node(Box::new(Echo));
        net.set_link(src, sink, LatencyModel::fixed(Nanos::from_micros(1)));
        net.start();
        net.inject(src, sink, open());
        // Well before the 10 ms default, the override has delivered.
        net.run_until(Nanos::from_millis(1));
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}
