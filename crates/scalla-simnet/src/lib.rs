//! Deterministic discrete-event network runtime.
//!
//! The paper's latency claims are per-hop figures on a production LAN/WAN
//! (~100 µs server response on 1 GbE, §III-B). We reproduce the *fabric*
//! with a discrete-event simulator: a virtual clock, a single event heap,
//! and a configurable per-link latency model. Every protocol state machine
//! (cmsd, xrootd, client) implements [`Node`] and runs unmodified under
//! either this simulated network or the live threaded runtime in
//! `scalla-sim` — both provide the same [`NetCtx`] interface.
//!
//! Determinism: events are ordered by `(time, sequence)`, jitter comes from
//! a seeded SplitMix64, and nodes are dispatched one at a time, so a given
//! seed always produces the identical execution.
//!
//! Failure injection: nodes can be taken down (messages to and from them
//! are dropped, their timers discarded) and revived; links can be given
//! individual latencies; a global loss rate can be applied.

pub mod net;

pub use net::{LatencyModel, NetCtx, Node, SimNet, SimStats};
