//! Shared experiment-harness support.
//!
//! Every `e<NN>_*` bench target reproduces one quantitative claim of the
//! paper (the index lives in DESIGN.md §3 and results in EXPERIMENTS.md).
//! This library provides the shared plumbing: table printing, standard
//! cluster construction, and measurement loops over the simulated network.

use scalla_client::{ClientOp, OpOutcome, OpResult};
use scalla_sim::{ClusterConfig, SimCluster};
use scalla_simnet::LatencyModel;
use scalla_util::{Histogram, Nanos};

/// Prints an aligned experiment table.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The standard experiment cluster: fixed 25 µs links (so latency tables
/// are exact), fast heartbeats, paper-default cache tuning.
pub fn std_cluster(n_servers: usize, fanout: usize, seed: u64) -> SimCluster {
    let mut cfg = ClusterConfig::flat(n_servers);
    cfg.fanout = fanout;
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.seed = seed;
    SimCluster::build(cfg)
}

/// Runs `ops` through one client on `cluster` for up to `budget` of
/// virtual time and returns the records.
pub fn run_ops(cluster: &mut SimCluster, ops: Vec<ClientOp>, budget: Nanos) -> Vec<OpResult> {
    let client = cluster.add_client(ops, Nanos::ZERO);
    cluster.start_node(client);
    cluster.net.run_for(budget);
    cluster.client_results(client)
}

/// Builds a histogram over the latencies of successful results.
pub fn ok_latency_hist<'a>(results: impl IntoIterator<Item = &'a OpResult>) -> Histogram {
    let mut h = Histogram::new();
    for r in results {
        if r.outcome == OpOutcome::Ok && r.path != "<sleep>" {
            h.record(r.latency());
        }
    }
    h
}

/// Formats nanoseconds compactly for table cells.
pub fn ns(v: Nanos) -> String {
    format!("{v}")
}

/// Mean of a float slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
