//! E1 — "requests for files whose information has been cached require less
//! that 50us per tree level" (§II-B5).
//!
//! Two measurements:
//! 1. the raw cmsd cache hit path in real nanoseconds (the algorithmic
//!    budget inside the 50 µs), and
//! 2. warm client opens across tree depths 1–3 on the simulated network
//!    (25 µs links), reporting the redirection latency added per level.

use bench::{ns, run_ops, std_cluster, table};
use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
use scalla_client::{ClientOp, OpOutcome};
use scalla_util::{Nanos, ServerSet, SystemClock};
use std::sync::Arc;
use std::time::Instant;

fn real_hit_path_cost() -> (Nanos, Nanos) {
    let cache = NameCache::new(CacheConfig::default(), Arc::new(SystemClock::new()));
    let vm = ServerSet::first_n(64);
    let n_files = 10_000u64;
    for i in 0..n_files {
        let path = format!("/store/run{}/f{}.root", i % 97, i);
        cache.resolve(&path, vm, AccessMode::Read, Waiter::new(1, i));
        cache.update_have(&path, (i % 64) as u8, false);
    }
    // Warm fetches.
    let iters = 200_000u64;
    let t0 = Instant::now();
    let mut redirects = 0u64;
    for i in 0..iters {
        let path = format!("/store/run{}/f{}.root", (i % n_files) % 97, i % n_files);
        let out = cache.resolve(&path, vm, AccessMode::Read, Waiter::new(2, i));
        if matches!(out.resolution, Resolution::Redirect { .. }) {
            redirects += 1;
        }
    }
    let per_op = t0.elapsed().as_nanos() as u64 / iters;
    assert_eq!(redirects, iters, "every warm fetch must redirect");
    // Compare against a path that includes the format! cost only.
    let t1 = Instant::now();
    let mut acc = 0usize;
    for i in 0..iters {
        let path = format!("/store/run{}/f{}.root", (i % n_files) % 97, i % n_files);
        acc += path.len();
    }
    let fmt_cost = t1.elapsed().as_nanos() as u64 / iters;
    std::hint::black_box(acc);
    (Nanos(per_op.saturating_sub(fmt_cost)), Nanos(per_op))
}

fn sim_depth(depth_servers: usize, fanout: usize) -> (usize, Nanos, u32) {
    let mut cluster = std_cluster(depth_servers, fanout, 1);
    let target = depth_servers - 1;
    cluster.seed_file(target, "/d/f", 1, true);
    cluster.settle(Nanos::from_secs(2));
    // One cold pass to fill every cache on the path, then warm passes.
    let mut ops = vec![ClientOp::Open { path: "/d/f".into(), write: false }];
    for _ in 0..8 {
        ops.push(ClientOp::Open { path: "/d/f".into(), write: false });
    }
    let results = run_ops(&mut cluster, ops, Nanos::from_secs(60));
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok));
    let warm = &results[1..];
    let mean = Nanos(warm.iter().map(|r| r.latency().0).sum::<u64>() / warm.len() as u64);
    (cluster.spec.depth(), mean, warm[0].redirects)
}

fn main() {
    println!("E1: cached look-up latency per tree level (paper: < 50 us/level)");

    let (algo, with_fmt) = real_hit_path_cost();
    println!("\ncmsd cache hit path (real time): {algo}/fetch (incl. key formatting: {with_fmt})");

    let mut rows = Vec::new();
    let mut prev: Option<Nanos> = None;
    for (servers, fanout) in [(4usize, 64usize), (16, 4), (64, 4)] {
        let (depth, warm, hops) = sim_depth(servers, fanout);
        let added = prev.map(|p| ns(warm - p)).unwrap_or_else(|| "-".into());
        let per_level = Nanos(warm.0 / (depth as u64 + 1));
        rows.push(vec![
            servers.to_string(),
            depth.to_string(),
            hops.to_string(),
            ns(warm),
            added,
            ns(per_level),
        ]);
        prev = Some(warm);
    }
    table(
        "warm open latency vs tree depth (25 us links)",
        &["servers", "depth", "hops", "warm open", "added vs prev", "per level"],
        &rows,
    );
    println!(
        "\npaper shape: cached redirection < 50 us per tree level; the per-level\n\
         column stays below 50 us and each extra level adds a constant increment."
    );
}
