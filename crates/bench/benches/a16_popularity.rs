//! Ablation A16 — "[Scalla's] scalability is weakly dependent on the
//! number of currently popular files but completely independent of the
//! number of files available" (§V).
//!
//! We drive one cmsd cache with a Zipf-popular request stream for a fixed
//! duration, sweeping (a) the total namespace size at a fixed popular set
//! and (b) the popularity skew at a fixed namespace. The cache population
//! must track the *requested working set*, never the namespace.

use bench::table;
use scalla_cache::{AccessMode, CacheConfig, NameCache, Waiter};
use scalla_sim::ZipfSampler;
use scalla_util::{Clock, Nanos, ServerSet, VirtualClock};
use std::collections::HashSet;
use std::sync::Arc;

/// Runs `reqs_per_sec` Zipf(alpha) requests over `namespace` files for one
/// full lifetime; returns (distinct files touched, final cache population).
fn run(namespace: usize, alpha: f64, reqs_per_sec: u64) -> (usize, usize) {
    let clock = Arc::new(VirtualClock::new());
    let lifetime = Nanos::from_secs(640);
    let cfg = CacheConfig { lifetime, ..CacheConfig::default() };
    let window = cfg.window_period();
    let cache = NameCache::new(cfg, clock.clone());
    let vm = ServerSet::first_n(32);
    let mut zipf = ZipfSampler::new(namespace, alpha, 16);
    let mut touched = HashSet::new();
    let mut next_tick = window;
    let secs = lifetime.0 / 1_000_000_000;
    for _ in 0..secs {
        for _ in 0..reqs_per_sec {
            let rank = zipf.sample();
            touched.insert(rank);
            cache.resolve(&format!("/ns/f{rank}"), vm, AccessMode::Read, Waiter::new(1, 0));
        }
        clock.advance(Nanos::from_secs(1));
        cache.sweep();
        while clock.now() >= next_tick {
            cache.tick();
            cache.collect(usize::MAX);
            next_tick += window;
        }
    }
    (touched.len(), cache.len())
}

fn main() {
    println!(
        "A16 (ablation): cache population vs namespace size and popularity\n\
         (paper §V: scalability weakly dependent on popular files, completely\n\
         independent of files available)"
    );

    // (a) Namespace sweep at fixed popularity.
    let mut rows = Vec::new();
    for &ns in &[10_000usize, 100_000, 1_000_000, 10_000_000] {
        let (touched, cached) = run(ns, 1.1, 100);
        rows.push(vec![
            ns.to_string(),
            touched.to_string(),
            cached.to_string(),
            format!("{:.2}%", 100.0 * cached as f64 / ns as f64),
        ]);
    }
    table(
        "namespace sweep (Zipf alpha=1.1, 100 req/s, one lifetime)",
        &["namespace files", "distinct requested", "cached objects", "cached/namespace"],
        &rows,
    );

    // (b) Popularity sweep at fixed namespace.
    let mut rows = Vec::new();
    for &alpha in &[0.0f64, 0.8, 1.1, 1.5] {
        let (touched, cached) = run(1_000_000, alpha, 100);
        rows.push(vec![format!("{alpha:.1}"), touched.to_string(), cached.to_string()]);
    }
    table(
        "popularity sweep (1M-file namespace, 100 req/s)",
        &["zipf alpha", "distinct requested", "cached objects"],
        &rows,
    );
    println!(
        "\npaper shape: the cached-object count follows the distinct requested\n\
         set (bounded by rate x lifetime) and the cached/namespace ratio\n\
         collapses as the namespace grows — the cache never scales with the\n\
         number of files available, only with what is currently popular."
    );
}
