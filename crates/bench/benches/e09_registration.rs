//! E9 — "node registration and deregistration are extremely light
//! operations … In GFS, node registration is more expensive since the
//! incoming server must transmit its entire manifest to the master."
//! Early manifest-based Scalla prototypes saw "long delays (minutes for a
//! single server)" (§V).
//!
//! We measure both join protocols as the server's file count grows:
//! message bytes on the wire (encoded with the real codec) and modeled
//! time-to-ready (transfer + master-side ingest for the manifest; one
//! round trip for the prefix login).

use bench::table;
use bytes::BytesMut;
use scalla_baseline::{GfsMasterConfig, GfsMasterNode};
use scalla_proto::{encode_msg, CmsMsg, NodeRoleTag};
use scalla_util::Nanos;

fn login_bytes(prefixes: usize) -> usize {
    let msg = CmsMsg::Login {
        name: "srv-042.slac.stanford.edu".into(),
        role: NodeRoleTag::Server,
        exports: (0..prefixes).map(|i| format!("/store/data/set{i}")).collect(),
    }
    .into();
    let mut buf = BytesMut::new();
    encode_msg(&msg, &mut buf);
    buf.len()
}

fn manifest_bytes(files: usize) -> usize {
    let msg = CmsMsg::Manifest {
        name: "srv-042.slac.stanford.edu".into(),
        files: (0..files)
            .map(|i| format!("/store/data/run{:05}/events-{:07}.root", i / 500, i % 500))
            .collect(),
    }
    .into();
    let mut buf = BytesMut::new();
    encode_msg(&msg, &mut buf);
    buf.len()
}

fn main() {
    println!(
        "E9: join cost — Scalla prefix login vs GFS-style manifest upload\n\
         (paper: light operation vs 'minutes for a single server')"
    );
    let master = GfsMasterNode::new(GfsMasterConfig::default());
    let scalla_bytes = login_bytes(2);
    // Scalla ready time: one login round trip on a 25 us LAN.
    let scalla_ready = Nanos::from_micros(50);

    let mut rows = Vec::new();
    for &files in &[1_000usize, 10_000, 100_000, 1_000_000] {
        // Encoding a million-entry manifest really allocates it; cap the
        // byte measurement at 100k and extrapolate linearly above.
        let mbytes = if files <= 100_000 {
            manifest_bytes(files)
        } else {
            manifest_bytes(100_000) * (files / 100_000)
        };
        let ready = master.ingest_delay(files);
        rows.push(vec![
            files.to_string(),
            format!("{scalla_bytes} B"),
            format!("{scalla_ready}"),
            format!("{:.2} MB", mbytes as f64 / 1e6),
            format!("{ready}"),
            format!("{:.0}x", ready.0 as f64 / scalla_ready.0 as f64),
        ]);
    }
    table(
        "one server joining (2 export prefixes vs full manifest)",
        &[
            "files on server",
            "scalla bytes",
            "scalla ready",
            "manifest bytes",
            "manifest ready",
            "ready ratio",
        ],
        &rows,
    );
    println!(
        "\npaper shape: the Scalla join is constant (~{scalla_bytes} bytes, one round\n\
         trip) regardless of file count; the manifest join grows linearly in both\n\
         bytes and ingest time, reaching the paper's minutes-per-server regime at\n\
         production file counts."
    );
}
