//! E13 — "a client can provide a list of files that will be needed …
//! ahead of any individual file request. The list spawns parallel look-ups
//! in the background. While each background look-up suffers a full delay;
//! externally, at most a single full delay is encountered by the client"
//! (§III-B2).
//!
//! We open k MSS-resident files (each needs staging) with and without a
//! preceding prepare and compare the client-observed total time.

use bench::{ns, run_ops, table};
use scalla_client::{ClientOp, OpOutcome};
use scalla_sim::{ClusterConfig, SimCluster};
use scalla_simnet::LatencyModel;
use scalla_util::Nanos;

const STAGING: Nanos = Nanos::from_secs(30);

fn run(k: usize, prepare: bool) -> Nanos {
    let mut cfg = ClusterConfig::flat(16);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.staging_delay = STAGING;
    cfg.seed = 13;
    let mut cluster = SimCluster::build(cfg);
    let paths: Vec<String> = (0..k).map(|i| format!("/mss/f{i}")).collect();
    for (i, p) in paths.iter().enumerate() {
        cluster.seed_file(i % 16, p, 64, false);
    }
    cluster.settle(Nanos::from_secs(2));
    let mut ops = Vec::new();
    if prepare {
        ops.push(ClientOp::Prepare { paths: paths.clone() });
        // Analysis start-up work happens here in real frameworks; the
        // stagings proceed in parallel underneath.
        ops.push(ClientOp::Sleep { duration: STAGING + Nanos::from_secs(2) });
    }
    for p in &paths {
        ops.push(ClientOp::OpenRead { path: p.clone(), len: 16 });
    }
    let results = run_ops(&mut cluster, ops, Nanos::from_secs(3_600));
    assert!(
        results.iter().all(|r| r.outcome == OpOutcome::Ok),
        "k={k} prepare={prepare}: {results:?}"
    );
    results.last().unwrap().end.since(results.first().unwrap().start)
}

fn main() {
    println!(
        "E13: parallel prepare (paper: at most one full delay observed,\n\
         instead of one per file)"
    );
    let mut rows = Vec::new();
    for &k in &[2usize, 4, 8, 16] {
        let without = run(k, false);
        let with = run(k, true);
        rows.push(vec![
            k.to_string(),
            ns(without),
            ns(with),
            format!("{:.1}x", without.0 as f64 / with.0 as f64),
        ]);
    }
    table(
        &format!("open k MSS files needing {STAGING} staging each"),
        &["k files", "ad hoc (serial)", "prepared", "speedup"],
        &rows,
    );
    println!(
        "\npaper shape: the ad-hoc column grows ~linearly in k (each open rides\n\
         its own staging), the prepared column is ~flat at one staging delay,\n\
         so the speedup approaches k."
    );
}
