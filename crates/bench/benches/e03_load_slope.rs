//! E3 — "as more simultaneous requests need to be processed, the average
//! redirection time increases as well. However, the cache uses linear and
//! constant-time algorithms, so the redirection time rises with a very low
//! linear slope as load increases" (§II-B5).
//!
//! Redirection time decomposes into constant network hops plus the cmsd's
//! per-request service demand plus queueing. The paper's low slope holds
//! because the service demand is (a) tiny and (b) *independent of
//! concurrency* — no lock convoys, no super-linear costs. We verify both:
//!
//! 1. hammer one real `NameCache` from increasing thread counts and check
//!    that throughput holds and per-op CPU demand stays flat (any
//!    contention pathology would sink throughput as threads rise);
//! 2. feed the measured service demand into an M/D/1 queue to tabulate
//!    mean redirection time versus offered request rate — the curve the
//!    paper describes.

use bench::table;
use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
use scalla_util::{ServerSet, SystemClock};
use std::sync::Arc;
use std::time::Instant;

const FILES: u64 = 50_000;
const OPS_PER_THREAD: u64 = 200_000;

fn populate(cache: &NameCache, vm: ServerSet) -> Vec<String> {
    let paths: Vec<String> =
        (0..FILES).map(|i| format!("/store/run{}/f{}.root", i % 113, i)).collect();
    for (i, p) in paths.iter().enumerate() {
        cache.resolve(p, vm, AccessMode::Read, Waiter::new(1, i as u64));
        cache.update_have(p, (i % 64) as u8, false);
    }
    paths
}

/// Returns (throughput ops/s, per-op CPU demand ns).
fn run_threads(cache: &Arc<NameCache>, paths: &Arc<Vec<String>>, threads: usize) -> (f64, f64) {
    let vm = ServerSet::first_n(64);
    let mut handles = Vec::new();
    let t0 = Instant::now();
    for t in 0..threads {
        let cache = cache.clone();
        let paths = paths.clone();
        handles.push(std::thread::spawn(move || {
            let mut hits = 0u64;
            let mut x = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1);
            for i in 0..OPS_PER_THREAD {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let p = &paths[(x % FILES) as usize];
                let out = cache.resolve(p, vm, AccessMode::Read, Waiter::new(t as u64, i));
                if matches!(out.resolution, Resolution::Redirect { .. }) {
                    hits += 1;
                }
            }
            hits
        }));
    }
    let total_hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = t0.elapsed();
    let total_ops = threads as u64 * OPS_PER_THREAD;
    assert_eq!(total_hits, total_ops);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let busy_cores = cores.min(threads) as f64;
    let throughput = total_ops as f64 / elapsed.as_secs_f64();
    // CPU demand per op: busy cores x wall / ops.
    let cpu_per_op = elapsed.as_nanos() as f64 * busy_cores / total_ops as f64;
    (throughput, cpu_per_op)
}

fn main() {
    println!(
        "E3: redirection-time slope under load (paper: rises with a very low\n\
         linear slope because all hot paths are linear/constant time)"
    );
    let clock = Arc::new(SystemClock::new());
    let cache = Arc::new(NameCache::new(CacheConfig::default(), clock));
    let vm = ServerSet::first_n(64);
    let paths = Arc::new(populate(&cache, vm));

    let mut rows = Vec::new();
    let mut service_ns = 0.0;
    let mut base_tput: Option<f64> = None;
    for threads in [1usize, 2, 4, 8] {
        let (tput, cpu) = run_threads(&cache, &paths, threads);
        if threads == 1 {
            service_ns = cpu;
        }
        let rel = base_tput.map(|b| format!("{:.2}x", tput / b)).unwrap_or_else(|| "1.00x".into());
        if base_tput.is_none() {
            base_tput = Some(tput);
        }
        rows.push(vec![
            threads.to_string(),
            format!("{:.2} Mops/s", tput / 1e6),
            format!("{cpu:.0} ns"),
            rel,
        ]);
    }
    table(
        "cmsd cache under concurrent warm fetches (real threads)",
        &["threads", "throughput", "CPU demand/op", "throughput vs 1"],
        &rows,
    );
    println!(
        "\nconstant-time check: per-op CPU demand stays ~flat and throughput does\n\
         not collapse as concurrency rises — no contention pathology."
    );

    // M/D/1 queue at the measured service time: mean response
    // R = s + s*rho/(2(1-rho)), rho = lambda*s.
    let s = service_ns / 1e9;
    let mut rows = Vec::new();
    let mut prev: Option<f64> = None;
    for &kops in &[1u64, 10, 50, 100, 500, 1_000, 2_000] {
        let lambda = kops as f64 * 1e3;
        let rho = lambda * s;
        if rho >= 1.0 {
            rows.push(vec![
                format!("{kops}k/s"),
                format!("{:.1}%", rho * 100.0),
                "saturated".into(),
                "-".into(),
            ]);
            continue;
        }
        let resp_ns = (s + s * rho / (2.0 * (1.0 - rho))) * 1e9;
        let delta = prev.map(|p| format!("+{:.1} ns", resp_ns - p)).unwrap_or_else(|| "-".into());
        prev = Some(resp_ns);
        rows.push(vec![
            format!("{kops}k req/s"),
            format!("{:.1}%", rho * 100.0),
            format!("{resp_ns:.0} ns"),
            delta,
        ]);
    }
    table(
        &format!("modeled cmsd residence time vs offered load (M/D/1, s = {service_ns:.0} ns)"),
        &["offered load", "utilization", "mean residence", "increase"],
        &rows,
    );
    println!(
        "\npaper shape: at the paper's 'thousands of transactions per second'\n\
         the cmsd sits at <1% utilization; redirection time grows by only\n\
         nanoseconds per thousand added requests/second — a very low linear\n\
         slope, exactly because every hot path is constant-time."
    );
}
