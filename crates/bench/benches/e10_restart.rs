//! E10 — "By foregoing persistent state and only caching file
//! recently-requested, Scalla clusters of hundreds of nodes can begin
//! serve files within seconds of restarting" (§V).
//!
//! Cold-start clusters of increasing size and measure the time from t=0
//! (every process just started, nothing logged in) until a client's first
//! successful open. Compared against the same cluster joining GFS-style,
//! where the master cannot serve until manifests are ingested.

use bench::table;
use scalla_baseline::{GfsMasterConfig, GfsMasterNode};
use scalla_client::Directory;
use scalla_client::{ClientConfig, ClientNode, ClientOp, OpOutcome};
use scalla_node::{JoinStyle, ServerConfig, ServerNode};
use scalla_simnet::{LatencyModel, SimNet};
use scalla_util::Nanos;
use std::sync::Arc;

/// Script that retries the open until it succeeds (restart probing).
fn probing_ops(path: &str, attempts: usize) -> Vec<ClientOp> {
    let mut ops = Vec::new();
    for _ in 0..attempts {
        ops.push(ClientOp::Open { path: path.into(), write: false });
        ops.push(ClientOp::Sleep { duration: Nanos::from_millis(200) });
    }
    ops
}

fn first_ok(results: &[scalla_client::OpResult]) -> Option<Nanos> {
    results.iter().find(|r| r.outcome == OpOutcome::Ok && r.path != "<sleep>").map(|r| r.end)
}

fn scalla_restart(n_servers: usize, _files_per_server: usize) -> Option<Nanos> {
    // A real tree (fanout 64 inserts supervisors above 64 servers); the
    // probing client is registered before start so t = 0 is the restart.
    let mut cfg = scalla_sim::ClusterConfig::flat(n_servers);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.seed = 10;
    let mut cluster = scalla_sim::SimCluster::build(cfg);
    let target_idx = n_servers - 1;
    let target = format!("/d/s{target_idx}/f0");
    cluster.seed_file(target_idx, &target, 1, true);
    let client = cluster.add_client_with(|cc| {
        cc.ops = probing_ops(&target, 100);
        cc.request_timeout = Nanos::from_secs(2);
    });
    cluster.net.start(); // t = 0: everything restarts simultaneously
    cluster.net.run_for(Nanos::from_secs(300));
    let _ = client;
    let results = cluster.client_results(client);
    first_ok(&results)
}

fn gfs_restart(n_servers: usize, files_per_server: usize) -> Option<Nanos> {
    let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(25)), 10);
    let directory = Arc::new(Directory::new());
    let master = net.add_node(Box::new(GfsMasterNode::new(GfsMasterConfig::default())));
    directory.register("master", master);
    for i in 0..n_servers {
        let name = format!("srv-{i}");
        let mut cfg = ServerConfig::new(&name, master);
        cfg.join = JoinStyle::FullManifest;
        let mut node = ServerNode::new(cfg);
        for f in 0..files_per_server {
            node.fs_mut().put_online(&format!("/d/s{i}/f{f}"), 1);
        }
        let addr = net.add_node(Box::new(node));
        directory.register(&name, addr);
    }
    let target = format!("/d/s{}/f0", n_servers - 1);
    let mut ccfg = ClientConfig::new(master, directory, probing_ops(&target, 600));
    ccfg.request_timeout = Nanos::from_secs(2);
    let client = net.add_node(Box::new(ClientNode::new(ccfg)));
    net.start();
    net.run_for(Nanos::from_secs(600));
    let node = net.node_mut(client).as_any_mut().unwrap();
    first_ok(node.downcast_ref::<ClientNode>().unwrap().results())
}

fn main() {
    println!(
        "E10: restart-to-first-served-file (paper: hundreds of nodes serving\n\
         within seconds, because no file state is exchanged at startup)"
    );
    let mut rows = Vec::new();
    for &(n, files) in &[(16usize, 5_000usize), (64, 5_000), (64, 20_000), (256, 5_000)] {
        let scalla = scalla_restart(n, 1); // file count is irrelevant to Scalla
        let gfs = gfs_restart(n, files);
        rows.push(vec![
            n.to_string(),
            files.to_string(),
            scalla.map(|t| format!("{t}")).unwrap_or_else(|| ">300 s".into()),
            gfs.map(|t| format!("{t}")).unwrap_or_else(|| ">600 s".into()),
        ]);
    }
    table(
        "time from cold start to first successful open",
        &["servers", "files/server", "scalla (prefix join)", "gfs-style (manifest join)"],
        &rows,
    );
    println!(
        "\npaper shape: Scalla's column is flat in both axes — logins are\n\
         constant-size, so first service lands within the first full-delay\n\
         window regardless of cluster or namespace size. The manifest column\n\
         grows with files/server (ingest) and stays far above Scalla."
    );
}
