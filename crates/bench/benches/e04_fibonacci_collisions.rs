//! E4 — "The combination of a CRC32 number modulo a Fibonacci number
//! produces a very uniform dispersion of file names with few collisions.
//! Despite the uniform distribution of CRC32, we found much higher
//! collision rates with power-of-two sized tables compared to
//! Fibonacci-sized" (§III-A1 + footnote 4).
//!
//! We insert HEP-shaped file names into both table variants at matched
//! entry counts and compare chain-length distributions. Power-of-two
//! moduli keep only the low bits of the hash; structured names (common
//! prefixes, sequential numbering) leave residual low-bit structure that a
//! Fibonacci modulus mixes across the whole word.

use bench::table;
use scalla_cache::slab::LocSlab;
use scalla_cache::table::{HashTable, SizePolicy};
use scalla_util::crc32;

/// HEP-style corpora with different kinds of structure.
fn corpus(kind: &str, n: usize) -> Vec<String> {
    match kind {
        // Sequential event files under a handful of runs.
        "runs" => (0..n)
            .map(|i| format!("/store/data/run{:05}/events-{:07}.root", i / 500, i % 500))
            .collect(),
        // Stride-structured names (fixed-width numeric tails, step 8).
        "strided" => (0..n).map(|i| format!("/mc/prod/job{:09}", i * 8)).collect(),
        // Pathological: names engineered so CRCs share low bits (step 2^k
        // in a counter that feeds the trailing characters).
        "lowbits" => (0..n).map(|i| format!("/cal/blk{:08x}", i << 6)).collect(),
        _ => unreachable!(),
    }
}

struct Dist {
    buckets_used: usize,
    max_chain: usize,
    mean_probe: f64,
    table_size: usize,
}

fn build(policy: SizePolicy, names: &[String]) -> Dist {
    let mut slab = LocSlab::new();
    let mut t = HashTable::with_policy(89, 80, policy);
    for name in names {
        let h = crc32(name.as_bytes());
        let slot = slab.alloc(name, h);
        t.insert(&mut slab, slot);
    }
    let chains = t.chain_lengths(&slab);
    let max_chain = chains.iter().copied().max().unwrap_or(0);
    // Expected probes for a successful search: sum over chains of
    // (1+2+..+len) / total entries.
    let total: usize = chains.iter().sum();
    let probe_sum: usize = chains.iter().map(|&l| l * (l + 1) / 2).sum();
    Dist {
        buckets_used: chains.len(),
        max_chain,
        mean_probe: probe_sum as f64 / total as f64,
        table_size: t.bucket_count(),
    }
}

fn main() {
    println!(
        "E4: Fibonacci vs power-of-two table sizing (paper: much higher\n\
         collision rates with power-of-two)"
    );
    let n = 200_000;
    let mut rows = Vec::new();
    for kind in ["runs", "strided", "lowbits"] {
        let names = corpus(kind, n);
        let fib = build(SizePolicy::Fibonacci, &names);
        let pow = build(SizePolicy::PowerOfTwo, &names);
        rows.push(vec![
            kind.to_string(),
            format!("{}/{}", fib.buckets_used, fib.table_size),
            format!("{:.3}", fib.mean_probe),
            fib.max_chain.to_string(),
            format!("{}/{}", pow.buckets_used, pow.table_size),
            format!("{:.3}", pow.mean_probe),
            pow.max_chain.to_string(),
            format!("{:.2}x", pow.mean_probe / fib.mean_probe),
        ]);
    }
    table(
        &format!("chain statistics, {n} HEP-style names, 80% load growth"),
        &[
            "corpus",
            "fib used/size",
            "fib probes",
            "fib maxchain",
            "pow2 used/size",
            "pow2 probes",
            "pow2 maxchain",
            "pow2/fib probes",
        ],
        &rows,
    );
    println!(
        "\npaper shape: Fibonacci moduli disperse structured names more uniformly:\n\
         the power-of-two variant needs 10-30% more probes per successful search\n\
         on every corpus at the same 80% growth policy — the footnote-4 'much\n\
         higher collision rates'."
    );
}
