//! E2 — "Requests for unknown files incur an additional latency equal to
//! the time it takes a leaf node to respond; increasing the redirection
//! time to about 150us, depending on the network speed" (§II-B5).
//!
//! We open distinct never-seen files (cold) and the same files again
//! (warm) on a flat cluster and report the cold/warm split; the difference
//! is exactly the leaf locate round trip.

use bench::{ns, run_ops, table};
use scalla_client::{ClientOp, OpOutcome};
use scalla_sim::{ClusterConfig, SimCluster};
use scalla_simnet::LatencyModel;
use scalla_util::Nanos;

fn measure(link_us: u64) -> (Nanos, Nanos) {
    let mut cfg = ClusterConfig::flat(16);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(link_us));
    cfg.seed = 2;
    let mut cluster = SimCluster::build(cfg);
    let n_files = 32usize;
    for i in 0..n_files {
        cluster.seed_file(i % 16, &format!("/cold/f{i}"), 1, true);
    }
    cluster.settle(Nanos::from_secs(2));
    let mut ops = Vec::new();
    for i in 0..n_files {
        ops.push(ClientOp::Open { path: format!("/cold/f{i}"), write: false });
    }
    for i in 0..n_files {
        ops.push(ClientOp::Open { path: format!("/cold/f{i}"), write: false });
    }
    let results = run_ops(&mut cluster, ops, Nanos::from_secs(120));
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok));
    let mean = |rs: &[scalla_client::OpResult]| {
        Nanos(rs.iter().map(|r| r.latency().0).sum::<u64>() / rs.len() as u64)
    };
    (mean(&results[..n_files]), mean(&results[n_files..]))
}

fn main() {
    println!("E2: unknown-file look-up latency (paper: ~150 us vs <50 us cached)");
    let mut rows = Vec::new();
    for link_us in [10u64, 25, 50] {
        let (cold, warm) = measure(link_us);
        rows.push(vec![
            format!("{link_us} us"),
            ns(cold),
            ns(warm),
            ns(cold - warm),
            format!("{:.2}x", cold.0 as f64 / warm.0 as f64),
        ]);
    }
    table(
        "cold vs warm open (flat cluster, 16 servers)",
        &["link", "cold open", "warm open", "leaf-response add", "cold/warm"],
        &rows,
    );
    println!(
        "\npaper shape: the uncached penalty equals one leaf locate round trip\n\
         (2 extra hops), putting cold ~= 150 us at ~25-50 us links, and the\n\
         cold/warm ratio stays modest (~1.3x) rather than multiplicative."
    );
}
