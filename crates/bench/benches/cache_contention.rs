//! Contended hit-path throughput: the benchmark behind the NameCache's
//! sharded interior.
//!
//! T resolver threads hammer warm entries (pure authenticator/redirect hit
//! path — no queries, no response-queue traffic) while the cache runs with
//! either one shard (the paper's original single global lock) or the
//! default sixteen. Sharding only pays under contention, so the matrix is
//! threads × shard count; the single-threaded rows double as a regression
//! guard that the shard indirection adds no measurable per-op cost.
//!
//! Run with `--test` for a CI smoke pass (tiny population, short windows,
//! no throughput assertions — just "every configuration completes").

use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
use scalla_util::{ServerSet, VirtualClock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const THREADS: &[usize] = &[1, 2, 4, 8];
const SHARDS: &[usize] = &[1, 16];

struct Params {
    paths: usize,
    warmup: Duration,
    measure: Duration,
}

fn warm_cache(shards: usize, n_paths: usize) -> (Arc<NameCache>, Arc<Vec<String>>) {
    let clock = Arc::new(VirtualClock::new());
    let cache = NameCache::new(CacheConfig::default().with_shards(shards), clock);
    let vm = ServerSet::first_n(64);
    let paths: Vec<String> =
        (0..n_paths).map(|i| format!("/store/run{}/f{i}.root", i % 101)).collect();
    for (i, p) in paths.iter().enumerate() {
        cache.resolve(p, vm, AccessMode::Read, Waiter::new(1, i as u64));
        cache.update_have(p, (i % 64) as u8, false);
    }
    (Arc::new(cache), Arc::new(paths))
}

/// Total resolve() calls completed by `threads` threads in the measure
/// window, every call required to be a redirect hit.
fn run_case(cache: &Arc<NameCache>, paths: &Arc<Vec<String>>, threads: usize, p: &Params) -> f64 {
    let vm = ServerSet::first_n(64);
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(threads + 1));

    let mut handles = Vec::new();
    for t in 0..threads {
        let cache = cache.clone();
        let paths = paths.clone();
        let stop = stop.clone();
        let measuring = measuring.clone();
        let total = total.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            // Distinct stride per thread so accesses interleave across the
            // whole population (and thus across shards).
            let stride = [7919usize, 104_729, 15_485_863, 32_452_843][t % 4] + t;
            let mut i = t * 1013;
            let mut ops = 0u64;
            let mut counted = false;
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                i = (i + stride) % paths.len();
                let out =
                    cache.resolve(&paths[i], vm, AccessMode::Read, Waiter::new(t as u64, i as u64));
                assert!(
                    matches!(out.resolution, Resolution::Redirect { .. }),
                    "hit-path bench must stay on the hit path"
                );
                if measuring.load(Ordering::Relaxed) {
                    if !counted {
                        // Warmup just ended: start this thread's count.
                        counted = true;
                        ops = 0;
                    }
                    ops += 1;
                }
            }
            total.fetch_add(ops, Ordering::Relaxed);
        }));
    }

    start.wait();
    std::thread::sleep(p.warmup);
    measuring.store(true, Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(p.measure);
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    total.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let p = if test_mode {
        Params {
            paths: 2_048,
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(50),
        }
    } else {
        Params {
            paths: 65_536,
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(700),
        }
    };

    println!(
        "cache_contention: warm hit-path throughput, {} paths, {} cores\n\
         (shards=1 is the original single-lock interior)",
        p.paths,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    let mut rows = Vec::new();
    let mut speedup_at = std::collections::BTreeMap::new();
    for &threads in THREADS {
        let mut per_shards = Vec::new();
        for &shards in SHARDS {
            let (cache, paths) = warm_cache(shards, p.paths);
            let ops = run_case(&cache, &paths, threads, &p);
            per_shards.push(ops);
        }
        let speedup = per_shards[1] / per_shards[0];
        speedup_at.insert(threads, speedup);
        rows.push(vec![
            format!("{threads}"),
            format!("{:.2} M/s", per_shards[0] / 1e6),
            format!("{:.2} M/s", per_shards[1] / 1e6),
            format!("{speedup:.2}x"),
        ]);
    }
    bench::table(
        "resolve() hit throughput under contention",
        &["threads", "1 shard", "16 shards", "speedup"],
        &rows,
    );
    println!(
        "\npaper shape: one global cache latch serializes every resolution, so\n\
         single-lock throughput is flat (or falls) with threads; per-shard\n\
         locks let disjoint look-ups proceed in parallel. Target: >= 2.5x at\n\
         4 threads (ISSUE 1 acceptance); single-thread rows must be ~equal."
    );
    if !test_mode {
        if let Some(s) = speedup_at.get(&4) {
            println!("4-thread speedup: {s:.2}x");
        }
    }
}
