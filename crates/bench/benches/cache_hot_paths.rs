//! Criterion micro-benchmarks of the cmsd cache hot paths — the code the
//! paper keeps "linear or constant time … in all high-use paths" (§VI).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scalla_cache::{AccessMode, CacheConfig, NameCache, Waiter};
use scalla_util::{crc32, Nanos, ServerSet, VirtualClock};
use std::sync::Arc;

fn warm_cache(n: usize) -> (Arc<VirtualClock>, NameCache, Vec<String>) {
    warm_cache_shards(n, CacheConfig::default().shards)
}

fn warm_cache_shards(n: usize, shards: usize) -> (Arc<VirtualClock>, NameCache, Vec<String>) {
    let clock = Arc::new(VirtualClock::new());
    let cache = NameCache::new(CacheConfig::default().with_shards(shards), clock.clone());
    let vm = ServerSet::first_n(64);
    let paths: Vec<String> = (0..n).map(|i| format!("/store/run{}/f{i}.root", i % 101)).collect();
    for (i, p) in paths.iter().enumerate() {
        cache.resolve(p, vm, AccessMode::Read, Waiter::new(1, i as u64));
        cache.update_have(p, (i % 64) as u8, false);
    }
    (clock, cache, paths)
}

fn bench_crc32(c: &mut Criterion) {
    let name = "/store/data/run01234/events-0005678.root";
    c.bench_function("crc32/40B file name", |b| {
        b.iter(|| crc32(std::hint::black_box(name.as_bytes())))
    });
}

fn bench_hit(c: &mut Criterion) {
    let (_clock, cache, paths) = warm_cache(100_000);
    let vm = ServerSet::first_n(64);
    let mut i = 0usize;
    c.bench_function("resolve/warm hit (100k entries)", |b| {
        b.iter(|| {
            i = (i + 7919) % paths.len();
            cache.resolve(&paths[i], vm, AccessMode::Read, Waiter::new(2, i as u64))
        })
    });
    // Single-lock regression guard: the sharded interior at shards=1 must
    // cost the same as the original design (the shard indirection and the
    // connect-log read lock are the only additions to this path).
    let (_clock, cache, paths) = warm_cache_shards(100_000, 1);
    let mut i = 0usize;
    c.bench_function("resolve/warm hit (100k entries, 1 shard)", |b| {
        b.iter(|| {
            i = (i + 7919) % paths.len();
            cache.resolve(&paths[i], vm, AccessMode::Read, Waiter::new(2, i as u64))
        })
    });
}

fn bench_miss_create(c: &mut Criterion) {
    let vm = ServerSet::first_n(64);
    let mut serial = 0u64;
    let (_clock, cache, _paths) = warm_cache(10_000);
    c.bench_function("resolve/miss+create", |b| {
        b.iter_batched(
            || {
                serial += 1;
                format!("/fresh/f{serial}")
            },
            |p| cache.resolve(&p, vm, AccessMode::Read, Waiter::new(1, 0)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_update_have(c: &mut Criterion) {
    let (_clock, cache, paths) = warm_cache(100_000);
    let mut i = 0usize;
    c.bench_function("update_have/hashed (no waiters)", |b| {
        b.iter(|| {
            i = (i + 104_729) % paths.len();
            let h = crc32(paths[i].as_bytes());
            cache.update_have_hashed(&paths[i], h, (i % 64) as u8, false)
        })
    });
}

fn bench_tick(c: &mut Criterion) {
    // Steady state with entries spread over all 64 windows.
    let clock = Arc::new(VirtualClock::new());
    let cfg = CacheConfig { lifetime: Nanos::from_secs(64), ..CacheConfig::default() };
    let cache = NameCache::new(cfg, clock.clone());
    let vm = ServerSet::first_n(64);
    let mut serial = 0u64;
    for _w in 0..64 {
        for _ in 0..1_000 {
            cache.resolve(&format!("/w/f{serial}"), vm, AccessMode::Read, Waiter::new(1, 0));
            serial += 1;
        }
        clock.advance(Nanos::from_secs(1));
        cache.tick();
        cache.collect(usize::MAX);
    }
    c.bench_function("tick+collect/64k entries steady state", |b| {
        b.iter(|| {
            // Keep the population constant: re-create what expires.
            for _ in 0..1_000 {
                cache.resolve(&format!("/w/f{serial}"), vm, AccessMode::Read, Waiter::new(1, 0));
                serial += 1;
            }
            clock.advance(Nanos::from_secs(1));
            let out = cache.tick();
            cache.collect(usize::MAX);
            out.scanned
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    let (_clock, cache, _paths) = warm_cache(10_000);
    c.bench_function("sweep/idle queue", |b| b.iter(|| cache.sweep()));
}

criterion_group!(
    benches,
    bench_crc32,
    bench_hit,
    bench_miss_create,
    bench_update_have,
    bench_tick,
    bench_sweep
);
criterion_main!(benches);
