//! Ablation A17 — "The choice of cluster size is crucial" (§II-B1,
//! footnote 2, citing Horling et al. on organizational structure).
//!
//! For a fixed server population we sweep the tree fanout and measure the
//! opposing forces: a larger fanout flattens the tree (fewer redirect
//! hops, lower warm latency) but widens every locate flood (more messages
//! per cold miss) and concentrates membership state per node. 64 sits
//! where depth is minimal for realistic cluster sizes while the flood
//! width and per-node state stay bounded — and it makes every server
//! vector one machine word.

use bench::{ns, run_ops, std_cluster, table};
use scalla_client::{ClientOp, OpOutcome};
use scalla_util::Nanos;

fn measure(n_servers: usize, fanout: usize) -> (usize, usize, Nanos, Nanos, u64) {
    let mut cluster = std_cluster(n_servers, fanout, 17);
    let target = n_servers - 1;
    cluster.seed_file(target, "/fan/f", 1, true);
    cluster.settle(Nanos::from_secs(3));
    let before = cluster.net.stats().delivered;
    let ops = vec![
        ClientOp::Open { path: "/fan/f".into(), write: false },
        ClientOp::Open { path: "/fan/f".into(), write: false },
    ];
    let results = run_ops(&mut cluster, ops, Nanos::from_secs(60));
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok));
    // Messages attributable to the cold resolution (minus the ~constant
    // client walk and heartbeat noise is small at 3 s settle + short run).
    let traffic = cluster.net.stats().delivered - before;
    (
        cluster.spec.depth(),
        cluster.spec.interior_count(),
        results[0].latency(),
        results[1].latency(),
        traffic,
    )
}

fn main() {
    println!(
        "A17 (ablation): tree fanout for 512 servers (paper fn.2: 'The choice\n\
         of cluster size is crucial')"
    );
    let mut rows = Vec::new();
    for &fanout in &[2usize, 4, 8, 16, 64] {
        let (depth, interior, cold, warm, traffic) = measure(512, fanout);
        rows.push(vec![
            fanout.to_string(),
            depth.to_string(),
            interior.to_string(),
            ns(cold),
            ns(warm),
            traffic.to_string(),
        ]);
    }
    table(
        "fixed 512 servers, 25 us links, deepest-server file",
        &["fanout", "depth", "interior nodes", "cold open", "warm open", "msgs (cold+warm)"],
        &rows,
    );
    println!(
        "\nshape: small fanouts pay in depth (hops, latency, interior nodes);\n\
         very large fanouts pay in flood width per miss and per-node state.\n\
         Fanout 64 reaches minimum depth for realistic sizes while keeping\n\
         every server vector in a single u64 — the paper's design point."
    );
}
