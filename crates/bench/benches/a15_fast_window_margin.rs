//! Ablation A15 — the 133 ms fast-response window's safety margin.
//!
//! "a request is given up to 133ms to be satisfied before a full wait is
//! imposed ... Generally, servers respond within 100us so a comfortable
//! margin of safety exists allowing for practically all queries for
//! existing files to be satisfied without imposing a large delay" (§III-B1).
//!
//! We sweep the one-way link latency so the server-response time crosses
//! the window, and report how many cold opens suffered a full 5 s wait.
//! Below the window: zero. Beyond it (response > 133 ms): every cold open
//! pays the full delay — the failure mode the margin guards against.

use bench::{ns, ok_latency_hist, run_ops, table};
use scalla_client::{ClientOp, OpOutcome};
use scalla_sim::{ClusterConfig, SimCluster};
use scalla_simnet::LatencyModel;
use scalla_util::Nanos;

fn run(link: Nanos) -> (Nanos, u64, usize) {
    let mut cfg = ClusterConfig::flat(8);
    cfg.latency = LatencyModel::fixed(link);
    cfg.seed = 15;
    let mut cluster = SimCluster::build(cfg);
    let n = 12usize;
    for i in 0..n {
        cluster.seed_file(i % 8, &format!("/m/f{i}"), 1, true);
    }
    cluster.settle(Nanos::from_secs(20));
    let ops: Vec<ClientOp> =
        (0..n).map(|i| ClientOp::Open { path: format!("/m/f{i}"), write: false }).collect();
    let results = run_ops(&mut cluster, ops, Nanos::from_secs(1200));
    let ok = results.iter().filter(|r| r.outcome == OpOutcome::Ok).count();
    let waits: u64 = results.iter().map(|r| u64::from(r.waits)).sum();
    (ok_latency_hist(&results).mean(), waits, ok)
}

fn main() {
    println!(
        "A15 (ablation): server response time vs the 133 ms fast window\n\
         (paper: responses ~100 us leave a comfortable safety margin)"
    );
    let mut rows = Vec::new();
    for &ms in &[0u64, 1, 30, 60, 100, 200] {
        let link = if ms == 0 { Nanos::from_micros(25) } else { Nanos::from_millis(ms) };
        // Server response time seen by the waiting cmsd = 2 x link.
        let resp = Nanos(2 * link.0);
        let (mean, waits, ok) = run(link);
        rows.push(vec![
            format!("{link}"),
            format!("{resp}"),
            if resp > Nanos::from_millis(133) { "exceeded".into() } else { "within".into() },
            ns(mean),
            waits.to_string(),
            format!("{ok}/12"),
        ]);
    }
    table(
        "cold opens of existing files vs link latency (133 ms window)",
        &["one-way link", "server response", "vs window", "mean open", "full waits", "ok"],
        &rows,
    );
    println!(
        "\nshape: while responses fit inside the window, zero full waits occur\n\
         and mean latency tracks the link. Once the response time exceeds the\n\
         window, every cold open is swept to a 5 s retry — the paper's 133 ms\n\
         choice is ~1000x the typical LAN response, hence 'comfortable'."
    );
}
