//! E7 — corrections are O(1) per look-up, and the per-window memo
//! (`V_wc`, `C_wn`) reduces them "to practically constant time regardless
//! of the number of location objects in the cache" (§III-A4).
//!
//! Three fetch regimes over a real `ConnectLog`:
//!   clean    — `C_n == N_c`, nothing to do;
//!   memo     — cluster changed, window memo applicable (the common case
//!              thanks to time locality);
//!   computed — cluster changed, memo inapplicable (every object carries a
//!              distinct `C_n`, the worst case the memo removes).

use bench::table;
use scalla_cache::correct::CorrectionKind;
use scalla_cache::{ConnectLog, CorrectionMemo, LocState};
use scalla_util::ServerSet;
use std::time::Instant;

const ITERS: usize = 2_000_000;

fn bench_case(name: &str, log: ConnectLog, cns: &[u64], expect: CorrectionKind) -> Vec<String> {
    let vm = ServerSet::first_n(48);
    let mut memo = CorrectionMemo::new();
    let mut state = LocState { vh: ServerSet::first_n(8), ..LocState::default() };
    // Warm one pass so the memo (if applicable) exists.
    let mut cn = cns[0];
    log.correct(&mut memo, &mut state, &mut cn, 7, vm);

    let t0 = Instant::now();
    let mut counts = [0u64; 3];
    for i in 0..ITERS {
        let mut state = LocState { vh: ServerSet::first_n(8), ..LocState::default() };
        let mut cn = cns[i % cns.len()];
        match log.correct(&mut memo, &mut state, &mut cn, 7, vm) {
            CorrectionKind::Clean => counts[0] += 1,
            CorrectionKind::MemoHit => counts[1] += 1,
            CorrectionKind::Computed => counts[2] += 1,
        }
    }
    let per_op = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    let dominant = match expect {
        CorrectionKind::Clean => counts[0],
        CorrectionKind::MemoHit => counts[1],
        CorrectionKind::Computed => counts[2],
    };
    assert!(
        dominant as f64 / ITERS as f64 > 0.99,
        "{name}: expected {expect:?} to dominate, got clean={} memo={} computed={}",
        counts[0],
        counts[1],
        counts[2]
    );
    vec![
        name.to_string(),
        format!("{per_op:.1} ns"),
        format!("{:?}", expect),
        format!("{}/{}/{}", counts[0], counts[1], counts[2]),
    ]
}

fn main() {
    println!(
        "E7: fetch-time correction cost (paper: O(1), and ~free with the\n\
         per-window V_wc memo)"
    );

    // Clean: no connects after the objects were stamped.
    let mut clean_log = ConnectLog::new();
    for i in 0..32 {
        clean_log.note_connect(i);
    }
    let clean_cn = clean_log.nc();

    // Memo: all objects share one stale C_n (time locality), two late
    // connects after stamping.
    let mut memo_log = ConnectLog::new();
    for i in 0..32 {
        memo_log.note_connect(i);
    }
    let memo_cn = memo_log.nc();
    memo_log.note_connect(40);
    memo_log.note_connect(41);

    // Computed: objects carry pairwise-distinct C_n values so the memo
    // almost never matches (its cwn changes every fetch).
    let mut comp_log = ConnectLog::new();
    let mut comp_cns = Vec::new();
    for i in 0..48u8 {
        comp_log.note_connect(i % 64);
        comp_cns.push(comp_log.nc());
    }
    comp_log.note_connect(50); // ensure cn != nc for all of the above
    comp_cns.pop();

    let rows = vec![
        bench_case("clean (C_n == N_c)", clean_log, &[clean_cn], CorrectionKind::Clean),
        bench_case("memo hit (V_wc reuse)", memo_log, &[memo_cn], CorrectionKind::MemoHit),
        bench_case("computed (scan C[])", comp_log, &comp_cns, CorrectionKind::Computed),
    ];
    table(
        "per-fetch correction cost (2M fetches each)",
        &["regime", "cost/fetch", "kind", "clean/memo/computed"],
        &rows,
    );
    println!(
        "\npaper shape: all three regimes are nanoseconds (O(1) — no dependence\n\
         on cache size); the memo removes the C[] scan so the common dirty case\n\
         costs about the same as a clean fetch."
    );
}
