//! E8 — deferred re-chaining: "a single linear-cost task can re-chain all
//! objects whose T_a has changed, where re-chaining each object
//! individually results in a more quadratic cost" (§III-C1).
//!
//! We populate one window with N objects, refresh K of them (oldest
//! first — the worst case for eager unlinking, and the common case in
//! practice since old entries are the ones clients refresh), and measure
//! the total work: deferred = K stamp writes + one linear sweep; eager =
//! K unlink walks over an N-long chain.

use bench::table;
use scalla_cache::eager::EagerWindowRing;
use scalla_cache::slab::LocSlab;
use scalla_cache::window::WindowRing;
use std::time::Instant;

fn deferred(n: usize, k: usize) -> (u128, usize) {
    let mut slab = LocSlab::new();
    let mut ring = WindowRing::new();
    let slots: Vec<u32> = (0..n)
        .map(|i| {
            let s = slab.alloc(&format!("/f{i}"), i as u32);
            ring.chain_now(&mut slab, s);
            s
        })
        .collect();
    ring.tick(&mut slab); // leave the build window
    let t0 = Instant::now();
    for &s in slots.iter().take(k) {
        ring.refresh_stamp(&mut slab, s);
    }
    // The deferred work happens when the original window's chain is swept:
    // advance to it (63 more ticks; only the last one scans the chain).
    let mut rechained = 0usize;
    for _ in 0..63 {
        rechained += ring.tick(&mut slab).rechained;
    }
    (t0.elapsed().as_nanos(), rechained)
}

fn eager(n: usize, k: usize) -> (u128, u64) {
    let mut slab = LocSlab::new();
    let mut ring = EagerWindowRing::new();
    let slots: Vec<u32> = (0..n)
        .map(|i| {
            let s = slab.alloc(&format!("/f{i}"), i as u32);
            ring.chain_now(&mut slab, s);
            s
        })
        .collect();
    ring.tick(&mut slab);
    let t0 = Instant::now();
    // Refresh oldest-first: each unlink walks the tail of the chain.
    for &s in slots.iter().take(k) {
        ring.refresh_stamp(&mut slab, s);
    }
    let mut steps = ring.unlink_steps;
    for _ in 0..63 {
        ring.tick(&mut slab);
    }
    steps = ring.unlink_steps.max(steps);
    (t0.elapsed().as_nanos(), steps)
}

fn main() {
    println!(
        "E8: deferred vs eager re-chaining (paper: deferred is linear, eager\n\
         'more quadratic')"
    );
    let mut rows = Vec::new();
    for &(n, k) in &[(10_000usize, 1_000usize), (20_000, 2_000), (40_000, 4_000), (80_000, 8_000)] {
        let (d_ns, rechained) = deferred(n, k);
        let (e_ns, steps) = eager(n, k);
        rows.push(vec![
            n.to_string(),
            k.to_string(),
            format!("{:.2} ms", d_ns as f64 / 1e6),
            rechained.to_string(),
            format!("{:.2} ms", e_ns as f64 / 1e6),
            steps.to_string(),
            format!("{:.1}x", e_ns as f64 / d_ns as f64),
        ]);
    }
    table(
        "refresh K of N same-window objects (oldest first)",
        &["N", "K", "deferred time", "rechained", "eager time", "unlink steps", "eager/deferred"],
        &rows,
    );
    println!(
        "\npaper shape: doubling N and K roughly doubles the deferred cost\n\
         (linear) but roughly quadruples the eager cost (the unlink-steps\n\
         column grows ~ N*K), so the ratio widens with scale."
    );
}
