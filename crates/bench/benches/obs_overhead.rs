//! Overhead proof for the observability layer (`scalla-obs`).
//!
//! The cmsd resolve hot path is the code the paper keeps "linear or
//! constant time … in all high-use paths" (§VI); bolting metrics onto it
//! is only acceptable if the instrumented build stays within a few
//! percent of the no-op build. This bench drives a warm-hit resolve loop
//! through ONE cache, toggling its handle between `Obs::disabled()` (a
//! single branch per probe) and `Obs::enabled()` (1-in-64 sampled stage
//! timers feeding the shared registry) batch by batch. One cache, not
//! two: with separate instances the allocator hands each a different
//! memory layout and the "overhead" swings 1–12 % run to run from
//! cache/TLB aliasing alone; toggling the handle on a single instance
//! isolates the probe cost. The overhead is the ratio of per-config
//! *minimum* batch times over many short alternating batches: scheduler
//! noise on a 1-core container is strictly additive, so the minimum over
//! enough ~10 ms batches converges on the undisturbed cost of each
//! config where a mean or per-run median still wobbles by several
//! percent.
//!
//! Results land in `BENCH_obs.json` at the repo root (validated in CI by
//! `tools/check_bench_json.py`); full mode asserts the relative overhead
//! stays under 5 %.
//!
//! `--test` runs a down-scaled smoke configuration for CI. Single-core
//! containers inflate the smoke numbers — the 5 % bound is only asserted
//! in full mode.

use bench::table;
use scalla_cache::{AccessMode, CacheConfig, NameCache, Waiter};
use scalla_obs::{Obs, DEFAULT_SAMPLE_EVERY};
use scalla_util::{ServerSet, VirtualClock};
use std::sync::Arc;
use std::time::Instant;

struct Scale {
    mode: &'static str,
    entries: usize,
    /// Iterations per batch; each pair runs one noop batch + one
    /// instrumented batch back to back.
    iters: u64,
    pairs: usize,
}

const SMOKE: Scale = Scale { mode: "smoke", entries: 10_000, iters: 5_000, pairs: 25 };
const FULL: Scale = Scale { mode: "full", entries: 100_000, iters: 25_000, pairs: 151 };

fn warm_cache(entries: usize) -> (NameCache, Vec<String>) {
    let clock = Arc::new(VirtualClock::new());
    let cache = NameCache::new(CacheConfig::default(), clock);
    let vm = ServerSet::first_n(64);
    let paths: Vec<String> =
        (0..entries).map(|i| format!("/store/run{}/f{i}.root", i % 101)).collect();
    for (i, p) in paths.iter().enumerate() {
        cache.resolve(p, vm, AccessMode::Read, Waiter::new(1, i as u64));
        cache.update_have(p, (i % 64) as u8, false);
    }
    (cache, paths)
}

/// One timed batch of `iters` warm-hit resolves; returns ns/op.
fn run_batch(cache: &NameCache, paths: &[String], iters: u64) -> f64 {
    let vm = ServerSet::first_n(64);
    let mut i = 0usize;
    let t0 = Instant::now();
    for n in 0..iters {
        i = (i + 7919) % paths.len();
        let out = cache.resolve(&paths[i], vm, AccessMode::Read, Waiter::new(2, n));
        std::hint::black_box(&out);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn min_of(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = if smoke { &SMOKE } else { &FULL };
    println!(
        "observability overhead ({} mode): warm-hit resolve, disabled vs 1/{} sampled",
        scale.mode, DEFAULT_SAMPLE_EVERY
    );

    let (mut cache, paths) = warm_cache(scale.entries);
    let obs = Obs::enabled();

    // One throwaway pair to fault in the working set, then strictly
    // alternating timed batches on the same cache, flipping which config
    // goes first each pair so ordering effects cancel too.
    run_batch(&cache, &paths, scale.iters);
    let mut noop = Vec::with_capacity(scale.pairs);
    let mut inst = Vec::with_capacity(scale.pairs);
    for pair in 0..scale.pairs {
        let (a, b) = if pair % 2 == 0 {
            cache.set_obs(Obs::disabled());
            let a = run_batch(&cache, &paths, scale.iters);
            cache.set_obs(obs.clone());
            (a, run_batch(&cache, &paths, scale.iters))
        } else {
            cache.set_obs(obs.clone());
            let b = run_batch(&cache, &paths, scale.iters);
            cache.set_obs(Obs::disabled());
            (run_batch(&cache, &paths, scale.iters), b)
        };
        noop.push(a);
        inst.push(b);
    }
    let noop_ns = min_of(&noop);
    let inst_ns = min_of(&inst);
    let overhead_pct = (inst_ns / noop_ns - 1.0) * 100.0;

    table(
        "warm-hit resolve, obs disabled vs enabled",
        &["config", "entries", "iters/batch", "batches", "min ns/op"],
        &[
            vec![
                "disabled".into(),
                scale.entries.to_string(),
                scale.iters.to_string(),
                scale.pairs.to_string(),
                format!("{noop_ns:.1}"),
            ],
            vec![
                "enabled (1/64)".into(),
                scale.entries.to_string(),
                scale.iters.to_string(),
                scale.pairs.to_string(),
                format!("{inst_ns:.1}"),
            ],
        ],
    );
    println!("overhead (ratio of per-config minima): {overhead_pct:+.2}%");

    // The sampled timers must actually have fired: the registry carries a
    // non-empty resolve histogram or the comparison is meaningless.
    let text = obs.registry().prometheus_text();
    let count_line = text
        .lines()
        .find(|l| l.starts_with("scalla_stage_ns_count{stage=\"resolve\"}"))
        .expect("resolve histogram exported");
    let recorded: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(recorded > 0, "instrumented run recorded nothing: {text}");

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"mode\": \"{}\",\n  \
         \"entries\": {},\n  \"iters_per_batch\": {},\n  \"pairs\": {},\n  \
         \"sample_every\": {},\n  \"noop_ns_per_op\": {:.2},\n  \
         \"instrumented_ns_per_op\": {:.2},\n  \"overhead_pct\": {:.3},\n  \
         \"resolve_samples_recorded\": {}\n}}\n",
        scale.mode,
        scale.entries,
        scale.iters,
        scale.pairs,
        DEFAULT_SAMPLE_EVERY,
        noop_ns,
        inst_ns,
        overhead_pct,
        recorded,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(out, &json).expect("write BENCH_obs.json");
    println!("\nwrote {out}");

    if !smoke {
        assert!(
            overhead_pct < 5.0,
            "instrumented resolve exceeds the 5% overhead budget: {overhead_pct:.2}%"
        );
    }
}
