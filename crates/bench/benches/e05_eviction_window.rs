//! E5 — "the cost of cache maintenance is equally spread across L_t and
//! overhead scales linearly with the number of entries; on average only
//! 1.6% of the cache is processed at any one time" (§III-A3). Hiding is
//! trivial; physical removal is background work with "minimal interference
//! with cache look-ups".
//!
//! We fill caches of several sizes uniformly across the 64 windows, then
//! measure (a) the fraction of entries scanned per tick, (b) the real time
//! of a tick as size grows (linear), and (c) warm look-up latency with and
//! without eviction churn in progress.

use bench::table;
use scalla_cache::{AccessMode, CacheConfig, NameCache, Waiter};
use scalla_util::{Nanos, ServerSet, VirtualClock};
use std::sync::Arc;
use std::time::Instant;

fn fill_across_windows(cache: &NameCache, clock: &Arc<VirtualClock>, n: usize) -> Vec<String> {
    let vm = ServerSet::first_n(32);
    let per_window = n / 64;
    let mut paths = Vec::with_capacity(n);
    for w in 0..64 {
        for i in 0..per_window {
            let p = format!("/w{w}/f{i}");
            cache.resolve(&p, vm, AccessMode::Read, Waiter::new(1, 0));
            cache.update_have(&p, (i % 32) as u8, false);
            paths.push(p);
        }
        clock.advance(Nanos::from_secs(1));
        cache.tick();
        cache.collect(usize::MAX);
        cache.sweep();
    }
    paths
}

fn main() {
    println!(
        "E5: sliding-window eviction (paper: ~1.6% of cache per tick, linear\n\
         overhead, minimal interference with look-ups)"
    );
    let mut rows = Vec::new();
    for &n in &[64_000usize, 256_000, 1_024_000] {
        let clock = Arc::new(VirtualClock::new());
        // 1 s windows for the driver.
        let cfg = CacheConfig { lifetime: Nanos::from_secs(64), ..CacheConfig::default() };
        let cache = NameCache::new(cfg, clock.clone());
        let paths = fill_across_windows(&cache, &clock, n);
        let live_before = cache.len();

        // One steady-state tick: scans exactly one window's chain.
        clock.advance(Nanos::from_secs(1));
        let t0 = Instant::now();
        let out = cache.tick();
        let tick_time = t0.elapsed();
        let scanned_pct = 100.0 * out.scanned as f64 / live_before as f64;

        // Background collection cost (physical removal).
        let t1 = Instant::now();
        cache.collect(usize::MAX);
        let collect_time = t1.elapsed();

        // Look-up latency while eviction churn continues.
        let vm = ServerSet::first_n(32);
        let sample = 50_000usize;
        let t2 = Instant::now();
        for i in 0..sample {
            let p = &paths[(i * 7919) % paths.len()];
            cache.resolve(p, vm, AccessMode::Read, Waiter::new(2, i as u64));
        }
        let lookup_ns = t2.elapsed().as_nanos() as u64 / sample as u64;

        rows.push(vec![
            n.to_string(),
            out.scanned.to_string(),
            format!("{scanned_pct:.2}%"),
            format!("{:.2} us", tick_time.as_nanos() as f64 / 1e3),
            format!("{:.2} us", collect_time.as_nanos() as f64 / 1e3),
            format!("{lookup_ns} ns"),
        ]);
    }
    table(
        "steady-state tick cost vs cache size",
        &[
            "entries",
            "scanned/tick",
            "% of cache",
            "tick (hide)",
            "collect (bg)",
            "lookup during churn",
        ],
        &rows,
    );
    println!(
        "\npaper shape: the scanned fraction sits at ~1/64 = 1.6% regardless of\n\
         size; tick time grows linearly with entries; look-up latency is flat\n\
         because hiding only zeroes a key length and removal is background work."
    );
}
