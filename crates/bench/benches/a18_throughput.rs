//! Ablation A18 — the motivating requirement: "any new file access system
//! needed to sustain thousands of transactions per second" from "a
//! thousand or more simultaneous analysis jobs" (§II-A).
//!
//! Two views:
//! 1. cluster-level: hundreds of concurrent clients against one manager
//!    on the simulated fabric; sustained completed-operations per
//!    simulated second;
//! 2. cmsd-level ceiling: the measured per-request service demand (E3)
//!    inverted into a single-node transaction ceiling.

use bench::table;
use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
use scalla_client::{ClientOp, OpOutcome};
use scalla_sim::{ClusterConfig, SimCluster};
use scalla_simnet::LatencyModel;
use scalla_util::{Nanos, ServerSet, SystemClock};
use std::sync::Arc;
use std::time::Instant;

fn cluster_throughput(n_clients: usize) -> (u64, f64) {
    let mut cfg = ClusterConfig::flat(64);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.seed = 18;
    let mut cluster = SimCluster::build(cfg);
    let files = 512usize;
    for i in 0..files {
        cluster.seed_file(i % 64, &format!("/tp/f{i}"), 1, true);
    }
    cluster.settle(Nanos::from_secs(2));
    let ops_per_client = 50usize;
    let mut clients = Vec::new();
    for c in 0..n_clients {
        let ops: Vec<ClientOp> = (0..ops_per_client)
            .map(|k| ClientOp::Open {
                path: format!("/tp/f{}", (c * 13 + k * 7) % files),
                write: false,
            })
            .collect();
        let a = cluster.add_client(ops, Nanos::from_micros(c as u64));
        cluster.start_node(a);
        clients.push(a);
    }
    let t0 = cluster.net.now();
    cluster.net.run_for(Nanos::from_secs(120));
    let mut ok = 0u64;
    let mut last_end = t0;
    for a in clients {
        for r in cluster.client_results(a) {
            if r.outcome == OpOutcome::Ok {
                ok += 1;
                last_end = last_end.max(r.end);
            }
        }
    }
    let span = last_end.since(t0).as_secs_f64().max(1e-9);
    (ok, ok as f64 / span)
}

fn main() {
    println!(
        "A18: sustained transactions per second (paper requirement §II-A:\n\
         'thousands of transactions per second' from 1000+ jobs)"
    );
    let mut rows = Vec::new();
    for &n in &[16usize, 64, 256, 1024] {
        let (ok, tps) = cluster_throughput(n);
        rows.push(vec![n.to_string(), ok.to_string(), format!("{:.0}", tps)]);
    }
    table(
        "simulated cluster: 64 servers, warm opens, 50 ops/client",
        &["concurrent clients", "ops completed", "sustained tx/s"],
        &rows,
    );

    // Single-cmsd ceiling from the real cache.
    let cache = NameCache::new(CacheConfig::default(), Arc::new(SystemClock::new()));
    let vm = ServerSet::first_n(64);
    for i in 0..10_000u64 {
        let p = format!("/tp/f{i}");
        cache.resolve(&p, vm, AccessMode::Read, Waiter::new(1, i));
        cache.update_have(&p, (i % 64) as u8, false);
    }
    let iters = 300_000u64;
    let t0 = Instant::now();
    let mut hits = 0u64;
    for i in 0..iters {
        let p = format!("/tp/f{}", i % 10_000);
        if matches!(
            cache.resolve(&p, vm, AccessMode::Read, Waiter::new(2, i)).resolution,
            Resolution::Redirect { .. }
        ) {
            hits += 1;
        }
    }
    let per_op = t0.elapsed().as_nanos() as f64 / iters as f64;
    assert_eq!(hits, iters);
    println!(
        "\nsingle-cmsd ceiling: {per_op:.0} ns/transaction -> {:.2}M tx/s on one\n\
         core — three orders of magnitude above the paper's 'thousands per\n\
         second' requirement, which is why the requirement was met with\n\
         commodity hardware.",
        1e3 / per_op
    );
}
