//! E14 — "If more than one node has the file, a selection is made based
//! on configuration defined criteria (e.g., load, selection frequency,
//! space, etc.)" (§II-B3).
//!
//! A file replicated on 8 of 16 servers is opened 480 times under each
//! policy; we report how the selections spread across the replicas and
//! whether the policy honours its criterion (least-load avoids the loaded
//! server, most-free-space prefers the empty one).

use bench::{run_ops, table};
use scalla_client::{ClientOp, OpOutcome};
use scalla_cluster::SelectionPolicy;
use scalla_sim::{ClusterConfig, SimCluster};
use scalla_simnet::LatencyModel;
use scalla_util::Nanos;
use std::collections::HashMap;

const OPENS: usize = 480;

fn run(policy: SelectionPolicy) -> HashMap<String, usize> {
    let mut cfg = ClusterConfig::flat(16);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.policy = policy;
    cfg.seed = 14;
    let mut cluster = SimCluster::build(cfg);
    for i in 0..8 {
        // Replicas on even servers; odd servers hold chaff.
        cluster.seed_file(i * 2, "/hot/f", 1 << 20, true);
    }
    // Skew the load/space reports: srv-0 heavily loaded, srv-14 empty.
    cluster.settle(Nanos::from_secs(2));
    for i in 0..16 {
        let load = if i == 0 { 1_000 } else { 10 };
        let free = if i == 14 { 1 << 40 } else { 1 << 30 };
        cluster.with_server(i, |_s| {});
        let mgr = cluster.managers[0];
        cluster.with_cmsd(mgr, |n| {
            // Reports normally arrive via heartbeats; inject directly so
            // the skew is exact and immediate.
            let _ = n;
        });
        // Drive through the protocol instead: servers report via
        // heartbeat; override by injecting a LoadReport.
        let server_addr = cluster.servers[i];
        cluster.net.inject(
            server_addr,
            mgr,
            scalla_proto::CmsMsg::LoadReport { load, free_bytes: free }.into(),
        );
    }
    cluster.net.run_for(Nanos::from_millis(10));

    let ops: Vec<ClientOp> =
        (0..OPENS).map(|_| ClientOp::Open { path: "/hot/f".into(), write: false }).collect();
    let results = run_ops(&mut cluster, ops, Nanos::from_secs(600));
    let mut counts: HashMap<String, usize> = HashMap::new();
    for r in &results {
        assert_eq!(r.outcome, OpOutcome::Ok);
        *counts.entry(r.server.clone().unwrap()).or_default() += 1;
    }
    counts
}

fn spread(counts: &HashMap<String, usize>) -> (usize, usize, usize) {
    let min = counts.values().copied().min().unwrap_or(0);
    let max = counts.values().copied().max().unwrap_or(0);
    (counts.len(), min, max)
}

fn main() {
    println!(
        "E14: selection criteria (paper: pick by load, selection frequency,\n\
         space, etc. when multiple nodes hold the file)"
    );
    let mut rows = Vec::new();
    for policy in [
        SelectionPolicy::RoundRobin,
        SelectionPolicy::Random,
        SelectionPolicy::LeastSelected,
        SelectionPolicy::LeastLoad,
        SelectionPolicy::MostFreeSpace,
    ] {
        let counts = run(policy);
        let (used, min, max) = spread(&counts);
        let srv0 = counts.get("srv-0").copied().unwrap_or(0);
        let srv14 = counts.get("srv-14").copied().unwrap_or(0);
        rows.push(vec![
            format!("{policy:?}"),
            used.to_string(),
            min.to_string(),
            max.to_string(),
            srv0.to_string(),
            srv14.to_string(),
        ]);
    }
    table(
        &format!("{OPENS} opens of a file replicated on 8 of 16 servers"),
        &[
            "policy",
            "replicas used",
            "min/replica",
            "max/replica",
            "srv-0 (loaded)",
            "srv-14 (most space)",
        ],
        &rows,
    );
    println!(
        "\npaper shape: balancing policies (round-robin, random, least-selected)\n\
         spread ~60/replica across all 8; least-load starves the loaded srv-0;\n\
         most-free-space concentrates on srv-14."
    );
}
