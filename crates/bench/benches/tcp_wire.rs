//! End-to-end wire benchmark for the TCP runtime's batched egress.
//!
//! Two phases, each over real localhost sockets:
//!
//! 1. **cluster** — a manager cmsd, several data servers, and several
//!    scripted clients doing cold + warm `Open` round-trips through the
//!    binary codec. Reports the RTT distribution (p50/p99/mean/max),
//!    operation throughput, and the egress-pipeline counters.
//! 2. **burst** — sender nodes each emitting hard bursts of `LoadReport`
//!    frames at a single sink, the regime the per-peer writer threads are
//!    built for. Reports the frames-per-syscall coalescing ratio.
//!
//! Results are printed as a table and written to `BENCH_tcp.json` at the
//! repo root (validated in CI by `tools/check_bench_json.py`).
//!
//! `--test` runs a down-scaled smoke configuration for CI.

use bench::table;
use scalla_cache::CacheConfig;
use scalla_client::{ClientConfig, ClientNode, ClientOp, Directory, OpOutcome};
use scalla_node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla_proto::{Addr, CmsMsg, Msg};
use scalla_sim::{NetCounters, TcpNet};
use scalla_simnet::{NetCtx, Node};
use scalla_util::{Histogram, Nanos};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Scale {
    mode: &'static str,
    servers: usize,
    clients: usize,
    /// Cold opens per client (each is also re-opened warm).
    opens: usize,
    burst_senders: usize,
    burst_rounds: u64,
}

const SMOKE: Scale =
    Scale { mode: "smoke", servers: 2, clients: 2, opens: 8, burst_senders: 2, burst_rounds: 4 };
const FULL: Scale =
    Scale { mode: "full", servers: 4, clients: 4, opens: 50, burst_senders: 4, burst_rounds: 40 };

/// Wraps a `ClientNode` so the harness can observe completion from
/// outside the node thread, without touching the client itself.
struct Watched {
    inner: ClientNode,
    done: Arc<AtomicBool>,
}

impl Node for Watched {
    fn on_start(&mut self, ctx: &mut dyn NetCtx) {
        self.inner.on_start(ctx);
    }
    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        self.inner.on_message(ctx, from, msg);
        if self.inner.is_done() {
            self.done.store(true, Ordering::SeqCst);
        }
    }
    fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
        self.inner.on_timer(ctx, token);
        if self.inner.is_done() {
            self.done.store(true, Ordering::SeqCst);
        }
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        self.inner.as_any_mut()
    }
}

struct ClusterReport {
    hist: Histogram,
    ok: u64,
    failed: u64,
    ops_per_sec: f64,
    counters: NetCounters,
}

/// Phase 1: Locate/Open round-trips across a real-socket cluster.
fn run_cluster(scale: &Scale) -> ClusterReport {
    let mut net = TcpNet::new().expect("bind localhost");
    let clock = net.clock();
    let directory = Arc::new(Directory::new());

    let mut mgr_cfg = CmsdConfig::manager("mgr");
    mgr_cfg.cache = CacheConfig { full_delay: Nanos::from_millis(500), ..CacheConfig::default() };
    mgr_cfg.heartbeat = Nanos::from_millis(200);
    let manager = net.add_node(Box::new(CmsdNode::new(mgr_cfg, clock))).unwrap();
    directory.register("mgr", manager);

    for s in 0..scale.servers {
        let name = format!("srv-{s}");
        let mut cfg = ServerConfig::new(&name, manager);
        cfg.heartbeat = Nanos::from_millis(200);
        let mut node = ServerNode::new(cfg);
        for c in 0..scale.clients {
            for i in 0..scale.opens {
                if (c + i) % scale.servers == s {
                    node.fs_mut().put_online(&format!("/bench/c{c}/f{i}"), 256);
                }
            }
        }
        let addr = net.add_node(Box::new(node)).unwrap();
        directory.register(&name, addr);
    }

    let mut done_flags = Vec::new();
    let mut client_addrs = Vec::new();
    for c in 0..scale.clients {
        let mut ops = Vec::with_capacity(scale.opens * 2);
        for pass in 0..2 {
            let _ = pass; // cold pass fills caches, warm pass re-opens
            for i in 0..scale.opens {
                ops.push(ClientOp::Open { path: format!("/bench/c{c}/f{i}"), write: false });
            }
        }
        let mut cfg = ClientConfig::new(manager, directory.clone(), ops);
        cfg.start_delay = Nanos::from_millis(800);
        cfg.request_timeout = Nanos::from_secs(5);
        let done = Arc::new(AtomicBool::new(false));
        done_flags.push(done.clone());
        let addr = net.add_node(Box::new(Watched { inner: ClientNode::new(cfg), done })).unwrap();
        client_addrs.push(addr);
    }

    let t0 = Instant::now();
    net.start();
    let deadline = t0 + Duration::from_secs(120);
    while !done_flags.iter().all(|f| f.load(Ordering::SeqCst)) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let span = t0.elapsed() - Duration::from_millis(800); // remove the start delay
    let counters = net.counters();
    let mut nodes = net.shutdown();

    let mut hist = Histogram::new();
    let mut ok = 0u64;
    let mut failed = 0u64;
    for addr in client_addrs {
        let client =
            nodes[addr.0 as usize].as_any_mut().unwrap().downcast_ref::<ClientNode>().unwrap();
        for r in client.results() {
            if r.outcome == OpOutcome::Ok {
                ok += 1;
                hist.record(r.latency());
            } else {
                failed += 1;
            }
        }
    }
    let ops_per_sec = ok as f64 / span.as_secs_f64().max(1e-9);
    ClusterReport { hist, ok, failed, ops_per_sec, counters }
}

/// Swallows everything thrown at it.
struct Sink;
impl Node for Sink {
    fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {}
}

const BURST_SIZE: u64 = 256;
const TOK_BURST: u64 = 1;

/// Emits `rounds` bursts of `BURST_SIZE` frames at the sink, one burst
/// per millisecond — faster than one socket write per frame can drain,
/// which is exactly what the writer threads coalesce.
struct Burster {
    sink: Addr,
    rounds: u64,
    emitted: Arc<AtomicU64>,
}

impl Burster {
    fn burst(&mut self, ctx: &mut dyn NetCtx) {
        for i in 0..BURST_SIZE {
            ctx.send(self.sink, CmsMsg::LoadReport { load: i as u32, free_bytes: i }.into());
        }
        self.emitted.fetch_add(BURST_SIZE, Ordering::SeqCst);
        self.rounds -= 1;
        if self.rounds > 0 {
            ctx.set_timer(Nanos::from_millis(1), TOK_BURST);
        }
    }
}

impl Node for Burster {
    fn on_start(&mut self, ctx: &mut dyn NetCtx) {
        self.burst(ctx);
    }
    fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {}
    fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
        if token == TOK_BURST {
            self.burst(ctx);
        }
    }
}

/// Phase 2: burst traffic, measuring the coalescing ratio.
fn run_burst(scale: &Scale) -> (NetCounters, u64, f64) {
    let mut net = TcpNet::new().expect("bind localhost");
    let sink = net.add_node(Box::new(Sink)).unwrap();
    let emitted = Arc::new(AtomicU64::new(0));
    for _ in 0..scale.burst_senders {
        net.add_node(Box::new(Burster {
            sink,
            rounds: scale.burst_rounds,
            emitted: emitted.clone(),
        }))
        .unwrap();
    }
    let expect = scale.burst_senders as u64 * scale.burst_rounds * BURST_SIZE;
    let t0 = Instant::now();
    net.start();
    // Every frame either hits a socket or is accounted as a drop; wait
    // until the pipeline has disposed of all of them.
    let deadline = t0 + Duration::from_secs(60);
    loop {
        let c = net.counters();
        if c.egress.frames + c.egress.total_drops() >= expect || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let span = t0.elapsed();
    let counters = net.counters();
    net.shutdown();
    let wire_per_sec = counters.egress.frames as f64 / span.as_secs_f64().max(1e-9);
    (counters, expect, wire_per_sec)
}

fn json_egress(c: &NetCounters) -> String {
    format!(
        "{{\"frames\": {}, \"writes\": {}, \"frames_per_write\": {:.4}, \
         \"queue_drops\": {}, \"conn_drops\": {}, \"pool_hits\": {}, \"pool_misses\": {}}}",
        c.egress.frames,
        c.egress.writes,
        c.egress.frames_per_write(),
        c.egress.queue_drops,
        c.egress.conn_drops,
        c.egress.pool_hits,
        c.egress.pool_misses,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = if smoke { &SMOKE } else { &FULL };
    println!("TCP wire benchmark ({} mode): batched egress over localhost sockets", scale.mode);

    let cluster = run_cluster(scale);
    let (burst, burst_expect, wire_per_sec) = run_burst(scale);

    let p50 = cluster.hist.median();
    let p99 = cluster.hist.p99();
    table(
        "cluster open round-trips over TCP",
        &["clients", "servers", "ok", "failed", "p50", "p99", "mean", "max", "ops/s"],
        &[vec![
            scale.clients.to_string(),
            scale.servers.to_string(),
            cluster.ok.to_string(),
            cluster.failed.to_string(),
            format!("{p50}"),
            format!("{p99}"),
            format!("{}", cluster.hist.mean()),
            format!("{}", cluster.hist.max()),
            format!("{:.0}", cluster.ops_per_sec),
        ]],
    );
    println!("cluster wire: {}", cluster.counters.row());

    table(
        "burst egress coalescing",
        &["senders", "frames", "writes", "frames/write", "drops", "wire msgs/s"],
        &[vec![
            scale.burst_senders.to_string(),
            format!("{}/{}", burst.egress.frames, burst_expect),
            burst.egress.writes.to_string(),
            format!("{:.2}", burst.egress.frames_per_write()),
            burst.egress.total_drops().to_string(),
            format!("{wire_per_sec:.0}"),
        ]],
    );

    let json = format!(
        "{{\n  \"bench\": \"tcp_wire\",\n  \"mode\": \"{}\",\n  \"cluster\": {{\n    \
         \"clients\": {}, \"servers\": {}, \"ok\": {}, \"failed\": {},\n    \
         \"rtt_ns\": {{\"p50\": {}, \"p99\": {}, \"mean\": {}, \"max\": {}}},\n    \
         \"ops_per_sec\": {:.2},\n    \"egress\": {},\n    \"mailbox_drops\": {}\n  }},\n  \
         \"burst\": {{\n    \"senders\": {}, \"expected_frames\": {},\n    \
         \"egress\": {},\n    \"wire_msgs_per_sec\": {:.2}\n  }},\n  \
         \"frames_per_syscall\": {:.4}\n}}\n",
        scale.mode,
        scale.clients,
        scale.servers,
        cluster.ok,
        cluster.failed,
        p50.0,
        p99.0,
        cluster.hist.mean().0,
        cluster.hist.max().0,
        cluster.ops_per_sec,
        json_egress(&cluster.counters),
        cluster.counters.total_mailbox_drops(),
        scale.burst_senders,
        burst_expect,
        json_egress(&burst),
        wire_per_sec,
        burst.egress.frames_per_write(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tcp.json");
    std::fs::write(out, &json).expect("write BENCH_tcp.json");
    println!("\nwrote {out}");

    assert!(cluster.failed == 0, "cluster ops failed: {}", cluster.failed);
    assert!(burst.egress.frames_per_write() >= 1.0, "burst phase must coalesce: {}", burst.row());
}
