//! E12 — "the maximum number of entries in the table is bounded by an
//! equilibrium reached between the object creation rate and the object
//! lifetime" (§III-A2). At 1,000 creates/s and an 8 h lifetime that bounds
//! the cache at 28.8 M objects ≈ 16 GB; at the practical 50–100/s rate,
//! well under 1 GB.
//!
//! We drive a cache at fixed creation rates under a virtual clock for two
//! full lifetimes and record the population curve: it must plateau at
//! rate x lifetime and hold there, and memory per object lets us check the
//! paper's GB arithmetic.

use bench::table;
use scalla_cache::{AccessMode, CacheConfig, NameCache, Waiter};
use scalla_util::{Clock, Nanos, ServerSet, VirtualClock};
use std::sync::Arc;

/// Drives `rate` creations/second for `secs` simulated seconds, ticking
/// the eviction clock on schedule; returns (peak live, final live, bytes/object).
fn run(rate: u64, lifetime: Nanos) -> (usize, usize, f64) {
    let clock = Arc::new(VirtualClock::new());
    let cfg = CacheConfig { lifetime, ..CacheConfig::default() };
    let window = cfg.window_period();
    let cache = NameCache::new(cfg, clock.clone());
    let vm = ServerSet::first_n(16);

    let total_secs = 2 * lifetime.0 / 1_000_000_000; // two lifetimes
    let mut next_tick = window;
    let mut peak = 0usize;
    let mut serial = 0u64;
    for s in 0..total_secs {
        for _ in 0..rate {
            let path = format!("/flux/f{serial}");
            serial += 1;
            cache.resolve(&path, vm, AccessMode::Read, Waiter::new(1, 0));
        }
        clock.advance(Nanos::from_secs(1));
        cache.sweep();
        while clock.now() >= next_tick {
            cache.tick();
            cache.collect(usize::MAX);
            next_tick += window;
        }
        let live = cache.len();
        peak = peak.max(live);
        let _ = s;
    }
    let bytes = cache.approx_bytes();
    let live = cache.len();
    (peak, live, bytes as f64 / live.max(1) as f64)
}

fn main() {
    println!(
        "E12: creation-rate x lifetime equilibrium (paper: 1,000/s x 8 h =\n\
         28.8M objects ~ 16 GB worst case; 50-100/s in practice, < 1 GB)"
    );
    // A short lifetime keeps the simulated-second loop tractable; the
    // equilibrium law rate x L_t is what is under test.
    let lifetime = Nanos::from_secs(640); // 10 s windows
    let mut rows = Vec::new();
    let mut bytes_per_obj = 0.0;
    for &rate in &[50u64, 100, 500, 1_000] {
        let (peak, fin, bpo) = run(rate, lifetime);
        bytes_per_obj = bpo;
        let expected = rate * lifetime.0 / 1_000_000_000;
        rows.push(vec![
            rate.to_string(),
            expected.to_string(),
            peak.to_string(),
            fin.to_string(),
            format!("{:.2}", peak as f64 / expected as f64),
            format!("{bpo:.0} B"),
        ]);
    }
    table(
        &format!("two lifetimes at L_t = {lifetime}"),
        &["creates/s", "rate x L_t", "peak live", "final live", "peak/expected", "bytes/object"],
        &rows,
    );

    // Scale the measured per-object footprint to the paper's figures.
    let at_paper_max = 28_800_000.0 * bytes_per_obj / 1e9;
    let at_practical = 100.0 * 8.0 * 3600.0 * bytes_per_obj / 1e9;
    println!(
        "\nextrapolation with measured {bytes_per_obj:.0} B/object:\n\
         1,000/s x 8 h = 28.8M objects -> {at_paper_max:.1} GB (paper: ~16 GB)\n\
         100/s x 8 h = 2.88M objects -> {at_practical:.2} GB (paper: < 1 GB)"
    );
    println!(
        "\npaper shape: population plateaus at rate x L_t (peak/expected ~ 1)\n\
         and never exceeds it — the cache is self-bounding with no explicit\n\
         capacity limit."
    );
}
