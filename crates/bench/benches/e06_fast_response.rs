//! E6 — the fast response queue "lower[s] the delay to the minimum time it
//! takes any one server to respond; typically, about 100us, without
//! risking a missed response" instead of the protocol's full 5 s delay
//! (§III-B). A request gets up to 133 ms before the full wait is imposed.
//!
//! We resolve cold files through a simulated cluster twice: with the fast
//! response queue (paper design) and with it disabled (every waiter eats
//! the full period, the pre-optimization protocol).

use bench::{ns, ok_latency_hist, run_ops, table};
use scalla_baseline::no_fast_queue_config;
use scalla_client::{ClientOp, OpOutcome};
use scalla_sim::{ClusterConfig, SimCluster};
use scalla_simnet::LatencyModel;
use scalla_util::Nanos;

fn run(fast_queue: bool) -> (Nanos, Nanos, Nanos, u64) {
    let mut cfg = ClusterConfig::flat(16);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    cfg.seed = 6;
    if !fast_queue {
        cfg.cache = no_fast_queue_config(cfg.cache);
    }
    let mut cluster = SimCluster::build(cfg);
    let n_files = 24usize;
    for i in 0..n_files {
        cluster.seed_file(i % 16, &format!("/d/f{i}"), 1, true);
    }
    cluster.settle(Nanos::from_secs(2));
    let ops: Vec<ClientOp> =
        (0..n_files).map(|i| ClientOp::Open { path: format!("/d/f{i}"), write: false }).collect();
    let results = run_ops(&mut cluster, ops, Nanos::from_secs(600));
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok), "{results:?}");
    let hist = ok_latency_hist(&results);
    let waits: u64 = results.iter().map(|r| u64::from(r.waits)).sum();
    (hist.mean(), hist.median(), hist.max(), waits)
}

fn main() {
    println!(
        "E6: fast response queue vs full-delay protocol (paper: ~100 us waits\n\
         instead of 5 s; servers respond well within the 133 ms window)"
    );
    let (fmean, fp50, fmax, fwaits) = run(true);
    let (smean, sp50, smax, swaits) = run(false);
    table(
        "cold open of existing files (16 servers, 25 us links)",
        &["variant", "mean", "p50", "max", "full waits"],
        &[
            vec!["fast queue (paper)".into(), ns(fmean), ns(fp50), ns(fmax), fwaits.to_string()],
            vec!["no fast queue".into(), ns(smean), ns(sp50), ns(smax), swaits.to_string()],
        ],
    );
    println!("\nspeedup: {:.0}x mean ({} -> {})", smean.0 as f64 / fmean.0 as f64, smean, fmean);
    println!(
        "\npaper shape: with the queue, a positive server response releases the\n\
         client in ~hundreds of microseconds and no full 5 s wait is ever paid\n\
         for an existing file; without it, every cold open eats >= 5 s."
    );
}
