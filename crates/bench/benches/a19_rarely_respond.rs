//! Ablation A19 — "when a server is asked whether it has a file it
//! responds only when it actually has the file. A non-response is treated
//! as a negative response. This protocol is provably the most efficient
//! way of maintaining location information in the event that less than
//! half the servers have the file in question" (§III-B, citing the
//! passive-bids result [2]).
//!
//! We measure the cold-resolution message count on a quiet cluster while
//! sweeping the replication fraction, and compare with the always-respond
//! protocol (every queried server answers yes or no: responses = N
//! regardless of placement).

use bench::table;
use scalla_client::{ClientOp, OpOutcome};
use scalla_sim::{ClusterConfig, SimCluster};
use scalla_simnet::LatencyModel;
use scalla_util::Nanos;

const N: usize = 16;

/// Returns messages attributable to one cold open with `k` replicas.
fn measure(k: usize) -> u64 {
    let mut cfg = ClusterConfig::flat(N);
    cfg.latency = LatencyModel::fixed(Nanos::from_micros(25));
    // Silence the control plane so the count is pure protocol.
    cfg.heartbeat = Nanos::from_secs(100_000);
    cfg.seed = 19;
    let mut cluster = SimCluster::build(cfg);
    for s in 0..k {
        cluster.seed_file(s, "/rr/f", 1, true);
    }
    cluster.settle(Nanos::from_secs(2));
    let before = cluster.net.stats().delivered;
    let client = cluster
        .add_client(vec![ClientOp::Open { path: "/rr/f".into(), write: false }], Nanos::ZERO);
    cluster.start_node(client);
    cluster.net.run_for(Nanos::from_secs(30));
    let r = cluster.client_results(client);
    assert_eq!(r[0].outcome, OpOutcome::Ok);
    cluster.net.stats().delivered - before
}

fn main() {
    println!(
        "A19 (ablation): request-rarely-respond vs always-respond (§III-B:\n\
         provably most efficient when < half the servers have the file)"
    );
    // Client-walk overhead (open, redirect, open, ok, close, closeok).
    let walk = 6u64;
    let mut rows = Vec::new();
    for &k in &[1usize, 2, 4, 8, 12, 16] {
        let total = measure(k);
        let rrr_resolution = total - walk; // flood + positive responses
                                           // Always-respond: same flood (N locates) + N responses.
        let always = (N + N) as u64;
        rows.push(vec![
            format!("{k}/{N}"),
            format!("{:.0}%", 100.0 * k as f64 / N as f64),
            rrr_resolution.to_string(),
            always.to_string(),
            format!("{:+}", always as i64 - rrr_resolution as i64),
        ]);
    }
    table(
        "messages per cold resolution (16 servers, quiet control plane)",
        &["replicas", "fraction", "rarely-respond msgs", "always-respond msgs", "savings"],
        &rows,
    );
    println!(
        "\npaper shape: rarely-respond sends N queries + k positive responses,\n\
         always-respond N queries + N responses. The savings are N - k\n\
         messages — positive whenever the file sits on fewer than all the\n\
         servers and largest in the common HEP case of k << N. (The price is\n\
         the deadline wait for true negatives, which E6's fast queue confines\n\
         to genuinely nonexistent files.)"
    );
}
