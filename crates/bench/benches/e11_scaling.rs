//! E11 — "it takes only O(1) time per set or tree node to locate a file.
//! It follows that the upper time limit in any sized cluster is
//! O(log64(number of servers))" (§II-B1); "as the number of nodes
//! increases, search performance increases at an exponential rate" (§VI).
//!
//! We build clusters of growing size at fanout 8 (so depth grows within a
//! simulable node count), measure warm and cold opens at the deepest
//! server, and tabulate the analytic depth for fanout-64 clusters up to
//! 16.7M servers.

use bench::{ns, run_ops, std_cluster, table};
use scalla_client::{ClientOp, OpOutcome};
use scalla_cluster::TreeSpec;
use scalla_util::Nanos;

fn measure(n_servers: usize, fanout: usize) -> (usize, Nanos, Nanos, u32) {
    let mut cluster = std_cluster(n_servers, fanout, 11);
    let target = n_servers - 1;
    cluster.seed_file(target, "/deep/f", 1, true);
    cluster.settle(Nanos::from_secs(3));
    let ops = vec![
        ClientOp::Open { path: "/deep/f".into(), write: false }, // cold
        ClientOp::Open { path: "/deep/f".into(), write: false }, // warm
        ClientOp::Open { path: "/deep/f".into(), write: false },
    ];
    let results = run_ops(&mut cluster, ops, Nanos::from_secs(120));
    assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok), "{results:?}");
    let warm = Nanos((results[1].latency().0 + results[2].latency().0) / 2);
    (cluster.spec.depth(), results[0].latency(), warm, results[1].redirects)
}

fn main() {
    println!(
        "E11: resolution scaling with cluster size (paper: O(log64 N) levels,\n\
         O(1) per level)"
    );
    let mut rows = Vec::new();
    for &n in &[8usize, 64, 512, 2048] {
        let (depth, cold, warm, hops) = measure(n, 8);
        rows.push(vec![
            n.to_string(),
            depth.to_string(),
            hops.to_string(),
            ns(cold),
            ns(warm),
            ns(Nanos(warm.0 / (depth as u64 + 1))),
        ]);
    }
    table(
        "measured: fanout-8 clusters, 25 us links, deepest server",
        &["servers", "depth", "hops", "cold open", "warm open", "warm/level"],
        &rows,
    );

    // Analytic table at the paper's fanout of 64.
    let mut rows = Vec::new();
    for &n in &[64usize, 4_096, 262_144, 16_777_216] {
        let spec = if n <= 4_096 {
            TreeSpec::build(n, 64).depth()
        } else {
            // Depth formula: ceil(log64 n).
            (n as f64).log(64.0).ceil() as usize
        };
        // Warm latency model: depth+1 request/response pairs at 25 us.
        let warm_est = Nanos::from_micros(2 * 25 * (spec as u64 + 1));
        rows.push(vec![n.to_string(), spec.to_string(), format!("~{}", warm_est)]);
    }
    table(
        "analytic: fanout-64 (the paper's geometry)",
        &["servers", "levels", "warm open (est)"],
        &rows,
    );
    println!(
        "\npaper shape: hops equal tree depth; depth grows logarithmically while\n\
         capacity grows exponentially (64x per added level), and per-level cost\n\
         stays constant."
    );
}
