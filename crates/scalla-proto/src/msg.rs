//! Message type definitions.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Network address of a node or client within a runtime. Opaque to the
/// protocol; the runtimes assign them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct Addr(pub u64);

/// Sentinel "client" used for fire-and-forget resolutions (e.g. prepare's
/// background look-ups): released waiters carrying this address are simply
/// discarded.
pub const NO_CLIENT: Addr = Addr(u64::MAX);

/// Role a cmsd declares at login.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeRoleTag {
    /// Interior cmsd managing its own set of 64.
    Supervisor,
    /// Leaf data server.
    Server,
}

/// Error codes carried by [`ServerMsg::Error`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ErrCode {
    /// The file does not exist anywhere in the cluster.
    NotFound,
    /// No server exports a matching path prefix.
    NoEligibleServer,
    /// The handle or request was invalid.
    BadRequest,
    /// Server-side I/O failure (triggers client refresh recovery, §III-C1).
    IoError,
    /// Try again later (transient inconsistency).
    Retry,
}

/// Client → node requests.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Open a file for read (`write == false`) or write/create.
    Open {
        /// File path.
        path: String,
        /// Write/create access when true.
        write: bool,
        /// Ask the cmsd to refresh its cached location (recovery path).
        refresh: bool,
        /// Name of a host that failed to provide access — never vector the
        /// client back there (§III-C1).
        avoid: Option<String>,
    },
    /// Read `len` bytes at `offset` from an open handle.
    Read {
        /// Handle from `OpenOk`.
        handle: u64,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u32,
    },
    /// Write bytes at `offset` through an open handle.
    Write {
        /// Handle from `OpenOk`.
        handle: u64,
        /// Byte offset.
        offset: u64,
        /// Payload.
        #[serde(with = "serde_bytes_compat")]
        data: Bytes,
    },
    /// Close a handle.
    Close {
        /// Handle from `OpenOk`.
        handle: u64,
    },
    /// Stat a file on a data server.
    Stat {
        /// File path.
        path: String,
    },
    /// Announce files that will soon be needed; spawns parallel background
    /// look-ups so at most one full delay is observed (§III-B2).
    Prepare {
        /// Paths to pre-locate.
        paths: Vec<String>,
    },
    /// List a directory in the composite namespace. Deliberately *not*
    /// served by the cluster itself — "an ls-type function across all
    /// nodes" conflicts with low latency (§II-B4); the separate Cluster
    /// Name Space daemon answers it (footnote 3, §V).
    List {
        /// Directory path.
        dir: String,
    },
}

/// Node → client responses.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Re-issue the request at `host` (one hop down the tree, §II-B3).
    Redirect {
        /// Host name of the target node.
        host: String,
    },
    /// Wait `millis` and retry (full-delay imposition, §III-B).
    Wait {
        /// Milliseconds to wait before retrying.
        millis: u64,
    },
    /// The file is open.
    OpenOk {
        /// Handle for subsequent I/O.
        handle: u64,
    },
    /// Read result.
    Data {
        /// The bytes read (may be shorter than requested at EOF).
        #[serde(with = "serde_bytes_compat")]
        data: Bytes,
    },
    /// Write acknowledged.
    WriteOk {
        /// Bytes written.
        len: u32,
    },
    /// Close acknowledged.
    CloseOk,
    /// Stat result.
    StatOk {
        /// File size in bytes.
        size: u64,
        /// Whether the file is online (false = resident only in MSS).
        online: bool,
    },
    /// Prepare accepted (look-ups proceed in the background).
    PrepareOk,
    /// Directory listing from the Cluster Name Space daemon.
    ListOk {
        /// Entry names within the directory (not full paths).
        entries: Vec<String>,
    },
    /// Request failed.
    Error {
        /// Machine-readable code.
        code: ErrCode,
        /// Human-readable detail.
        detail: String,
    },
}

/// cmsd ↔ cmsd messages.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CmsMsg {
    /// Subordinate → parent: join the cluster, declaring exported path
    /// prefixes only — never a file manifest (§V).
    Login {
        /// Stable host name.
        name: String,
        /// Declared role.
        role: NodeRoleTag,
        /// Exported path prefixes.
        exports: Vec<String>,
    },
    /// Parent → subordinate: login accepted, slot assigned.
    LoginOk {
        /// Slot (0–63) in the parent's server set.
        slot: u8,
    },
    /// Parent → subordinate: login rejected (e.g. set full).
    LoginRejected {
        /// Reason.
        reason: String,
    },
    /// Parent → subordinate: does anyone below you have `path`?
    /// Request-rarely-respond: the only reply is a positive [`CmsMsg::Have`].
    Locate {
        /// Correlation id, echoed in `Have`.
        reqid: u64,
        /// File path.
        path: String,
        /// CRC-32 of the path, "passed along" so responders and upstream
        /// caches never re-hash (§III-B1).
        hash: u32,
        /// Whether write access is sought.
        write: bool,
    },
    /// Subordinate → parent: I have the file (online, or staging when
    /// `staging`). Multiple subordinate responses are compressed into a
    /// single upward `Have` by each supervisor (§II-B2).
    Have {
        /// Correlation id from the `Locate`.
        reqid: u64,
        /// File path.
        path: String,
        /// CRC-32 of the path.
        hash: u32,
        /// True while the file is being made ready (MSS staging).
        staging: bool,
    },
    /// Data server → Cluster Name Space daemon: a namespace change
    /// notification (file created or deleted). This is how the composite
    /// namespace stays current without the cluster keeping any global
    /// state (footnote 3).
    NsEvent {
        /// True for creation, false for deletion.
        created: bool,
        /// Full file path.
        path: String,
    },
    /// GFS-style join (baseline comparator, §V): the server uploads its
    /// complete file manifest to the central master. Scalla deliberately
    /// never does this — compare `Login`.
    Manifest {
        /// Stable host name.
        name: String,
        /// Every file the server hosts.
        files: Vec<String>,
    },
    /// Subordinate → parent: periodic load/space report for selection.
    LoadReport {
        /// Load figure, lower is better.
        load: u32,
        /// Free bytes.
        free_bytes: u64,
    },
}

/// Any Scalla message — what the runtimes actually route.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Msg {
    /// Client-originated request.
    Client(ClientMsg),
    /// Node-to-client response.
    Server(ServerMsg),
    /// Cluster-management traffic.
    Cms(CmsMsg),
}

impl From<ClientMsg> for Msg {
    fn from(m: ClientMsg) -> Msg {
        Msg::Client(m)
    }
}

impl From<ServerMsg> for Msg {
    fn from(m: ServerMsg) -> Msg {
        Msg::Server(m)
    }
}

impl From<CmsMsg> for Msg {
    fn from(m: CmsMsg) -> Msg {
        Msg::Cms(m)
    }
}

/// Serde adapter for `bytes::Bytes` (serialize as byte sequences).
// Referenced through `#[serde(with = ...)]` attributes; the vendored
// no-op derive shim does not expand those, leaving the functions unused.
#[allow(dead_code)]
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_conversions() {
        let m: Msg = ClientMsg::Close { handle: 7 }.into();
        assert!(matches!(m, Msg::Client(ClientMsg::Close { handle: 7 })));
        let m: Msg = ServerMsg::CloseOk.into();
        assert!(matches!(m, Msg::Server(ServerMsg::CloseOk)));
        let m: Msg = CmsMsg::LoginOk { slot: 3 }.into();
        assert!(matches!(m, Msg::Cms(CmsMsg::LoginOk { slot: 3 })));
    }

    #[test]
    fn sentinel_address() {
        assert_ne!(NO_CLIENT, Addr(0));
    }
}
