//! Reusable frame-buffer pool for the wire hot path.
//!
//! The TCP runtime encodes every outgoing message into a length-prefixed
//! frame. Allocating a fresh buffer per frame puts an allocator round-trip
//! on the metadata path the paper works so hard to keep flat (§VI: "compact
//! data structures", "constant time algorithms in all high-use paths").
//! [`BufferPool`] recycles encode buffers instead: the steady-state send
//! path pops a warm buffer, encodes into it, ships it to a writer thread,
//! and the writer returns it — zero allocations once the pool is primed.

use crate::msg::Msg;
use crate::wire::encode_frame;
use bytes::BytesMut;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Initial capacity of a freshly allocated pool buffer; sized for the
/// common control frames (locate/have/redirect are tens of bytes).
const FRESH_CAPACITY: usize = 4096;

/// A bounded free-list of reusable encode buffers.
///
/// Thread-safe: producers (`get`) and consumers (`put`) may race freely.
/// The pool never holds more than `max_pooled` buffers; extras returned
/// beyond that are simply dropped, which bounds memory under bursts.
pub struct BufferPool {
    free: Mutex<Vec<BytesMut>>,
    max_pooled: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// Creates a pool that retains at most `max_pooled` idle buffers.
    pub fn new(max_pooled: usize) -> BufferPool {
        BufferPool {
            free: Mutex::new(Vec::with_capacity(max_pooled.min(64))),
            max_pooled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Takes an empty buffer, reusing a pooled one when available.
    pub fn get(&self) -> BytesMut {
        if let Some(buf) = self.free.lock().expect("pool lock").pop() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            buf
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            BytesMut::with_capacity(FRESH_CAPACITY)
        }
    }

    /// Returns a buffer to the pool (cleared; capacity kept for reuse).
    pub fn put(&self, mut buf: BytesMut) {
        buf.clear();
        let mut free = self.free.lock().expect("pool lock");
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }

    /// Buffers currently idle in the pool.
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("pool lock").len()
    }

    /// `get` calls served from the free-list.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// `get` calls that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Encodes `msg` as a length-prefixed frame into a pooled buffer.
///
/// The returned buffer holds exactly one frame; hand it back with
/// [`BufferPool::put`] once the bytes are on the wire.
///
/// ```
/// use scalla_proto::{encode_frame_pooled, BufferPool, CmsMsg, Msg};
///
/// let pool = BufferPool::new(8);
/// let msg: Msg = CmsMsg::Locate { reqid: 1, path: "/f".into(), hash: 9, write: false }.into();
/// let frame = encode_frame_pooled(&msg, &pool);
/// assert!(frame.len() > 4, "length prefix plus payload");
/// pool.put(frame);
/// let again = encode_frame_pooled(&msg, &pool);
/// assert_eq!(pool.hits(), 1, "second encode reuses the first buffer");
/// pool.put(again);
/// ```
pub fn encode_frame_pooled(msg: &Msg, pool: &BufferPool) -> BytesMut {
    let mut buf = pool.get();
    encode_frame(msg, &mut buf);
    buf
}

/// [`encode_frame_pooled`] with a trace envelope; a zero `trace` id emits
/// a plain frame (see `wire::encode_frame_traced`).
pub fn encode_frame_traced_pooled(msg: &Msg, trace: u64, pool: &BufferPool) -> BytesMut {
    let mut buf = pool.get();
    crate::wire::encode_frame_traced(msg, trace, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ServerMsg;
    use crate::wire::FrameDecoder;

    #[test]
    fn pooled_frames_decode_identically() {
        let pool = BufferPool::new(4);
        let msg: Msg = ServerMsg::Redirect { host: "sup-1".into() }.into();
        let frame = encode_frame_pooled(&msg, &pool);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert_eq!(dec.next().unwrap(), Some(msg));
        pool.put(frame);
    }

    #[test]
    fn pool_is_bounded_and_reuses() {
        let pool = BufferPool::new(2);
        let a = pool.get();
        let b = pool.get();
        let c = pool.get();
        assert_eq!(pool.misses(), 3);
        pool.put(a);
        pool.put(b);
        pool.put(c); // beyond max_pooled: dropped
        assert_eq!(pool.pooled(), 2);
        let _d = pool.get();
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn returned_buffers_come_back_empty() {
        let pool = BufferPool::new(2);
        let msg: Msg = ServerMsg::CloseOk.into();
        let frame = encode_frame_pooled(&msg, &pool);
        assert!(!frame.is_empty());
        pool.put(frame);
        assert!(pool.get().is_empty());
    }

    #[test]
    fn concurrent_get_put_is_safe() {
        let pool = std::sync::Arc::new(BufferPool::new(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let buf = pool.get();
                    pool.put(buf);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.pooled() <= 8);
    }
}
