//! Protocol messages for the Scalla reproduction.
//!
//! Three message families flow through a Scalla cluster (§II-B):
//!
//! * [`ClientMsg`] — client → xrootd: open / read / write / close / stat /
//!   prepare requests;
//! * [`ServerMsg`] — xrootd → client: redirects, waits, data, and errors;
//! * [`CmsMsg`] — cmsd ↔ cmsd: login, the request-rarely-respond locate
//!   query, positive `Have` responses, and load reports.
//!
//! The defining protocol property (§III-B) is that [`CmsMsg::Locate`] has
//! *no negative response*: a server that does not have the file stays
//! silent, and silence past the deadline is the negative answer.
//!
//! [`wire`] provides a compact hand-rolled binary codec so messages can
//! cross real sockets; the in-process runtimes pass the enums directly.

pub mod msg;
pub mod pool;
pub mod wire;

pub use msg::{Addr, ClientMsg, CmsMsg, ErrCode, Msg, NodeRoleTag, ServerMsg, NO_CLIENT};
pub use pool::{encode_frame_pooled, encode_frame_traced_pooled, BufferPool};
pub use wire::{
    decode_msg, decode_msg_traced, encode_frame, encode_frame_traced, encode_msg,
    encode_msg_traced, FrameDecoder, WireError, TRACE_ENVELOPE_TAG,
};
