//! Compact binary wire codec.
//!
//! A small hand-rolled format: one tag byte per enum variant, little-endian
//! fixed-width integers, and u32-length-prefixed strings/byte blobs. It is
//! deliberately free of reflection and allocation beyond the payloads
//! themselves — the cmsd hot path encodes a `Locate`/`Have` in a handful of
//! stores.
//!
//! The in-process runtimes bypass this codec (they move the enums); it
//! exists so the protocol can cross real sockets and so the message set has
//! an explicit, tested serialized form.
//!
//! ## Trace envelope (version negotiation)
//!
//! A frame may optionally be wrapped in a *trace envelope*: tag byte
//! [`TRACE_ENVELOPE_TAG`], a `u64` little-endian trace id, then the plain
//! encoded message. The envelope is negotiated by construction rather than
//! by handshake: decoders accept both enveloped and plain frames (so an
//! instrumented node interoperates with an uninstrumented one), and a zero
//! trace id encodes as a plain frame (so untraced traffic is byte-identical
//! to the pre-envelope format). Nested envelopes are rejected.

use crate::msg::{ClientMsg, CmsMsg, ErrCode, Msg, NodeRoleTag, ServerMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the message did.
    Truncated,
    /// Unknown tag byte for the given position.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A declared length exceeded sanity limits.
    BadLength(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Upper bound on any length-prefixed field (paths, payloads): 64 MiB.
const MAX_FIELD: u64 = 64 << 20;

/// Top-level tag marking a trace envelope: `[0x40][u64 trace_id][message]`.
/// Distinct from the message-family tags (0x10/0x20/0x30) so plain frames
/// still decode.
pub const TRACE_ENVELOPE_TAG: u8 = 0x40;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(buf: &mut BytesMut, b: &Bytes) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn put_opt_str(buf: &mut BytesMut, s: &Option<String>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
    }
}

fn put_strs(buf: &mut BytesMut, v: &[String]) {
    buf.put_u32_le(v.len() as u32);
    for s in v {
        put_str(buf, s);
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut impl Buf) -> Result<u8, WireError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, WireError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, WireError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_len(buf: &mut impl Buf) -> Result<usize, WireError> {
    let n = get_u32(buf)? as u64;
    if n > MAX_FIELD {
        return Err(WireError::BadLength(n));
    }
    Ok(n as usize)
}

fn get_str(buf: &mut impl Buf) -> Result<String, WireError> {
    let n = get_len(buf)?;
    need(buf, n)?;
    let mut v = vec![0u8; n];
    buf.copy_to_slice(&mut v);
    String::from_utf8(v).map_err(|_| WireError::BadUtf8)
}

fn get_bytes(buf: &mut impl Buf) -> Result<Bytes, WireError> {
    let n = get_len(buf)?;
    need(buf, n)?;
    Ok(buf.copy_to_bytes(n))
}

fn get_opt_str(buf: &mut impl Buf) -> Result<Option<String>, WireError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf)?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn get_strs(buf: &mut impl Buf) -> Result<Vec<String>, WireError> {
    let n = get_len(buf)?;
    let mut v = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        v.push(get_str(buf)?);
    }
    Ok(v)
}

fn get_bool(buf: &mut impl Buf) -> Result<bool, WireError> {
    Ok(get_u8(buf)? != 0)
}

/// Encodes a message, appending to `buf`.
///
/// ```
/// use bytes::BytesMut;
/// use scalla_proto::{decode_msg, encode_msg, CmsMsg, Msg};
///
/// let msg: Msg = CmsMsg::Locate { reqid: 7, path: "/f".into(), hash: 9, write: false }.into();
/// let mut buf = BytesMut::new();
/// encode_msg(&msg, &mut buf);
/// let mut bytes = buf.freeze();
/// assert_eq!(decode_msg(&mut bytes).unwrap(), msg);
/// ```
pub fn encode_msg(msg: &Msg, buf: &mut BytesMut) {
    match msg {
        Msg::Client(m) => {
            buf.put_u8(0x10);
            encode_client(m, buf);
        }
        Msg::Server(m) => {
            buf.put_u8(0x20);
            encode_server(m, buf);
        }
        Msg::Cms(m) => {
            buf.put_u8(0x30);
            encode_cms(m, buf);
        }
    }
}

fn encode_client(m: &ClientMsg, buf: &mut BytesMut) {
    match m {
        ClientMsg::Open { path, write, refresh, avoid } => {
            buf.put_u8(0);
            put_str(buf, path);
            buf.put_u8(*write as u8);
            buf.put_u8(*refresh as u8);
            put_opt_str(buf, avoid);
        }
        ClientMsg::Read { handle, offset, len } => {
            buf.put_u8(1);
            buf.put_u64_le(*handle);
            buf.put_u64_le(*offset);
            buf.put_u32_le(*len);
        }
        ClientMsg::Write { handle, offset, data } => {
            buf.put_u8(2);
            buf.put_u64_le(*handle);
            buf.put_u64_le(*offset);
            put_bytes(buf, data);
        }
        ClientMsg::Close { handle } => {
            buf.put_u8(3);
            buf.put_u64_le(*handle);
        }
        ClientMsg::Stat { path } => {
            buf.put_u8(4);
            put_str(buf, path);
        }
        ClientMsg::Prepare { paths } => {
            buf.put_u8(5);
            put_strs(buf, paths);
        }
        ClientMsg::List { dir } => {
            buf.put_u8(6);
            put_str(buf, dir);
        }
    }
}

fn encode_server(m: &ServerMsg, buf: &mut BytesMut) {
    match m {
        ServerMsg::Redirect { host } => {
            buf.put_u8(0);
            put_str(buf, host);
        }
        ServerMsg::Wait { millis } => {
            buf.put_u8(1);
            buf.put_u64_le(*millis);
        }
        ServerMsg::OpenOk { handle } => {
            buf.put_u8(2);
            buf.put_u64_le(*handle);
        }
        ServerMsg::Data { data } => {
            buf.put_u8(3);
            put_bytes(buf, data);
        }
        ServerMsg::WriteOk { len } => {
            buf.put_u8(4);
            buf.put_u32_le(*len);
        }
        ServerMsg::CloseOk => buf.put_u8(5),
        ServerMsg::StatOk { size, online } => {
            buf.put_u8(6);
            buf.put_u64_le(*size);
            buf.put_u8(*online as u8);
        }
        ServerMsg::PrepareOk => buf.put_u8(7),
        ServerMsg::ListOk { entries } => {
            buf.put_u8(9);
            put_strs(buf, entries);
        }
        ServerMsg::Error { code, detail } => {
            buf.put_u8(8);
            buf.put_u8(*code as u8);
            put_str(buf, detail);
        }
    }
}

fn encode_cms(m: &CmsMsg, buf: &mut BytesMut) {
    match m {
        CmsMsg::Login { name, role, exports } => {
            buf.put_u8(0);
            put_str(buf, name);
            buf.put_u8(match role {
                NodeRoleTag::Supervisor => 0,
                NodeRoleTag::Server => 1,
            });
            put_strs(buf, exports);
        }
        CmsMsg::LoginOk { slot } => {
            buf.put_u8(1);
            buf.put_u8(*slot);
        }
        CmsMsg::LoginRejected { reason } => {
            buf.put_u8(2);
            put_str(buf, reason);
        }
        CmsMsg::Locate { reqid, path, hash, write } => {
            buf.put_u8(3);
            buf.put_u64_le(*reqid);
            put_str(buf, path);
            buf.put_u32_le(*hash);
            buf.put_u8(*write as u8);
        }
        CmsMsg::Have { reqid, path, hash, staging } => {
            buf.put_u8(4);
            buf.put_u64_le(*reqid);
            put_str(buf, path);
            buf.put_u32_le(*hash);
            buf.put_u8(*staging as u8);
        }
        CmsMsg::Manifest { name, files } => {
            buf.put_u8(6);
            put_str(buf, name);
            put_strs(buf, files);
        }
        CmsMsg::NsEvent { created, path } => {
            buf.put_u8(7);
            buf.put_u8(*created as u8);
            put_str(buf, path);
        }
        CmsMsg::LoadReport { load, free_bytes } => {
            buf.put_u8(5);
            buf.put_u32_le(*load);
            buf.put_u64_le(*free_bytes);
        }
    }
}

/// Encodes a message wrapped in a trace envelope. A zero `trace` id encodes
/// as a plain message — byte-identical to [`encode_msg`] — so untraced
/// traffic pays nothing and stays decodable by pre-envelope peers.
pub fn encode_msg_traced(msg: &Msg, trace: u64, buf: &mut BytesMut) {
    if trace != 0 {
        buf.put_u8(TRACE_ENVELOPE_TAG);
        buf.put_u64_le(trace);
    }
    encode_msg(msg, buf);
}

/// Decodes one message from `buf`, consuming exactly its bytes. Accepts
/// both plain and trace-enveloped messages (the trace id is discarded —
/// use [`decode_msg_traced`] to keep it).
pub fn decode_msg(buf: &mut impl Buf) -> Result<Msg, WireError> {
    decode_msg_traced(buf).map(|(_, msg)| msg)
}

/// Decodes one message plus its trace id (0 when the frame was plain).
pub fn decode_msg_traced(buf: &mut impl Buf) -> Result<(u64, Msg), WireError> {
    let mut tag = get_u8(buf)?;
    let mut trace = 0u64;
    if tag == TRACE_ENVELOPE_TAG {
        trace = get_u64(buf)?;
        // Exactly one envelope: the next tag must open a message family.
        tag = get_u8(buf)?;
    }
    let msg = match tag {
        0x10 => decode_client(buf).map(Msg::Client)?,
        0x20 => decode_server(buf).map(Msg::Server)?,
        0x30 => decode_cms(buf).map(Msg::Cms)?,
        t => return Err(WireError::BadTag(t)),
    };
    Ok((trace, msg))
}

fn decode_client(buf: &mut impl Buf) -> Result<ClientMsg, WireError> {
    Ok(match get_u8(buf)? {
        0 => ClientMsg::Open {
            path: get_str(buf)?,
            write: get_bool(buf)?,
            refresh: get_bool(buf)?,
            avoid: get_opt_str(buf)?,
        },
        1 => ClientMsg::Read { handle: get_u64(buf)?, offset: get_u64(buf)?, len: get_u32(buf)? },
        2 => {
            ClientMsg::Write { handle: get_u64(buf)?, offset: get_u64(buf)?, data: get_bytes(buf)? }
        }
        3 => ClientMsg::Close { handle: get_u64(buf)? },
        4 => ClientMsg::Stat { path: get_str(buf)? },
        5 => ClientMsg::Prepare { paths: get_strs(buf)? },
        6 => ClientMsg::List { dir: get_str(buf)? },
        t => return Err(WireError::BadTag(t)),
    })
}

fn decode_server(buf: &mut impl Buf) -> Result<ServerMsg, WireError> {
    Ok(match get_u8(buf)? {
        0 => ServerMsg::Redirect { host: get_str(buf)? },
        1 => ServerMsg::Wait { millis: get_u64(buf)? },
        2 => ServerMsg::OpenOk { handle: get_u64(buf)? },
        3 => ServerMsg::Data { data: get_bytes(buf)? },
        4 => ServerMsg::WriteOk { len: get_u32(buf)? },
        5 => ServerMsg::CloseOk,
        6 => ServerMsg::StatOk { size: get_u64(buf)?, online: get_bool(buf)? },
        7 => ServerMsg::PrepareOk,
        9 => ServerMsg::ListOk { entries: get_strs(buf)? },
        8 => ServerMsg::Error {
            code: match get_u8(buf)? {
                0 => ErrCode::NotFound,
                1 => ErrCode::NoEligibleServer,
                2 => ErrCode::BadRequest,
                3 => ErrCode::IoError,
                4 => ErrCode::Retry,
                t => return Err(WireError::BadTag(t)),
            },
            detail: get_str(buf)?,
        },
        t => return Err(WireError::BadTag(t)),
    })
}

fn decode_cms(buf: &mut impl Buf) -> Result<CmsMsg, WireError> {
    Ok(match get_u8(buf)? {
        0 => CmsMsg::Login {
            name: get_str(buf)?,
            role: match get_u8(buf)? {
                0 => NodeRoleTag::Supervisor,
                1 => NodeRoleTag::Server,
                t => return Err(WireError::BadTag(t)),
            },
            exports: get_strs(buf)?,
        },
        1 => CmsMsg::LoginOk { slot: get_u8(buf)? },
        2 => CmsMsg::LoginRejected { reason: get_str(buf)? },
        3 => CmsMsg::Locate {
            reqid: get_u64(buf)?,
            path: get_str(buf)?,
            hash: get_u32(buf)?,
            write: get_bool(buf)?,
        },
        4 => CmsMsg::Have {
            reqid: get_u64(buf)?,
            path: get_str(buf)?,
            hash: get_u32(buf)?,
            staging: get_bool(buf)?,
        },
        5 => CmsMsg::LoadReport { load: get_u32(buf)?, free_bytes: get_u64(buf)? },
        6 => CmsMsg::Manifest { name: get_str(buf)?, files: get_strs(buf)? },
        7 => CmsMsg::NsEvent { created: get_bool(buf)?, path: get_str(buf)? },
        t => return Err(WireError::BadTag(t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(msg: Msg) {
        let mut buf = BytesMut::new();
        encode_msg(&msg, &mut buf);
        let mut slice = buf.freeze();
        let decoded = decode_msg(&mut slice).expect("decode");
        assert_eq!(decoded, msg);
        assert_eq!(slice.remaining(), 0, "codec must consume exactly its bytes");
    }

    #[test]
    fn roundtrip_all_variants() {
        let cases: Vec<Msg> = vec![
            ClientMsg::Open {
                path: "/store/f.root".into(),
                write: true,
                refresh: false,
                avoid: Some("srv-3".into()),
            }
            .into(),
            ClientMsg::Open { path: "/f".into(), write: false, refresh: true, avoid: None }.into(),
            ClientMsg::Read { handle: 9, offset: 4096, len: 65536 }.into(),
            ClientMsg::Write { handle: 9, offset: 0, data: Bytes::from_static(b"hello") }.into(),
            ClientMsg::Close { handle: 9 }.into(),
            ClientMsg::Stat { path: "/f".into() }.into(),
            ClientMsg::Prepare { paths: vec!["/a".into(), "/b".into()] }.into(),
            ServerMsg::Redirect { host: "sup-1".into() }.into(),
            ServerMsg::Wait { millis: 5000 }.into(),
            ServerMsg::OpenOk { handle: 77 }.into(),
            ServerMsg::Data { data: Bytes::from_static(&[0, 1, 2, 255]) }.into(),
            ServerMsg::WriteOk { len: 5 }.into(),
            ServerMsg::CloseOk.into(),
            ServerMsg::StatOk { size: 1 << 33, online: false }.into(),
            ServerMsg::PrepareOk.into(),
            ServerMsg::Error { code: ErrCode::NotFound, detail: "no such file".into() }.into(),
            CmsMsg::Login {
                name: "srv-a".into(),
                role: NodeRoleTag::Server,
                exports: vec!["/atlas".into(), "/cms".into()],
            }
            .into(),
            CmsMsg::LoginOk { slot: 63 }.into(),
            CmsMsg::LoginRejected { reason: "full".into() }.into(),
            CmsMsg::Locate { reqid: 1, path: "/f".into(), hash: 0xDEAD_BEEF, write: false }.into(),
            CmsMsg::Have { reqid: 1, path: "/f".into(), hash: 0xDEAD_BEEF, staging: true }.into(),
            CmsMsg::LoadReport { load: 12, free_bytes: u64::MAX }.into(),
            CmsMsg::Manifest { name: "srv-b".into(), files: vec!["/a/1".into(), "/a/2".into()] }
                .into(),
            ClientMsg::List { dir: "/store/run1".into() }.into(),
            ServerMsg::ListOk { entries: vec!["f1.root".into(), "f2.root".into()] }.into(),
            CmsMsg::NsEvent { created: true, path: "/store/run1/f3.root".into() }.into(),
        ];
        for msg in cases {
            roundtrip(msg);
        }
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let msg: Msg =
            CmsMsg::Locate { reqid: 42, path: "/some/long/path".into(), hash: 7, write: true }
                .into();
        let mut buf = BytesMut::new();
        encode_msg(&msg, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(decode_msg(&mut partial).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut b = Bytes::from_static(&[0x99]);
        assert_eq!(decode_msg(&mut b), Err(WireError::BadTag(0x99)));
        let mut b = Bytes::from_static(&[0x10, 0xEE]);
        assert_eq!(decode_msg(&mut b), Err(WireError::BadTag(0xEE)));
    }

    #[test]
    fn implausible_length_rejected() {
        // Client Stat with a 4 GiB path length.
        let mut buf = BytesMut::new();
        buf.put_u8(0x10);
        buf.put_u8(4);
        buf.put_u32_le(u32::MAX);
        let mut b = buf.freeze();
        assert!(matches!(decode_msg(&mut b), Err(WireError::BadLength(_))));
    }

    #[test]
    fn trace_envelope_roundtrips() {
        let msg: Msg = CmsMsg::Locate { reqid: 5, path: "/t".into(), hash: 3, write: false }.into();
        let mut buf = BytesMut::new();
        encode_msg_traced(&msg, 0xDEAD_BEEF_CAFE_0001, &mut buf);
        let mut slice = buf.freeze();
        let (trace, decoded) = decode_msg_traced(&mut slice).expect("decode");
        assert_eq!(trace, 0xDEAD_BEEF_CAFE_0001);
        assert_eq!(decoded, msg);
        assert_eq!(slice.remaining(), 0);
    }

    #[test]
    fn zero_trace_encodes_as_plain_frame() {
        let msg: Msg = ServerMsg::OpenOk { handle: 9 }.into();
        let mut plain = BytesMut::new();
        encode_msg(&msg, &mut plain);
        let mut traced = BytesMut::new();
        encode_msg_traced(&msg, 0, &mut traced);
        assert_eq!(plain, traced, "zero trace must be byte-identical to the plain encoding");
    }

    #[test]
    fn plain_frames_decode_with_no_trace() {
        let msg: Msg = ServerMsg::CloseOk.into();
        let mut buf = BytesMut::new();
        encode_msg(&msg, &mut buf);
        let mut slice = buf.freeze();
        assert_eq!(decode_msg_traced(&mut slice).unwrap(), (0, msg));
    }

    #[test]
    fn traced_frames_decode_through_plain_decoder() {
        // Version negotiation: a decoder that doesn't care about traces
        // still understands enveloped frames.
        let msg: Msg = ClientMsg::Stat { path: "/f".into() }.into();
        let mut buf = BytesMut::new();
        encode_msg_traced(&msg, 42, &mut buf);
        let mut slice = buf.freeze();
        assert_eq!(decode_msg(&mut slice).unwrap(), msg);
    }

    #[test]
    fn nested_trace_envelopes_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(TRACE_ENVELOPE_TAG);
        buf.put_u64_le(1);
        buf.put_u8(TRACE_ENVELOPE_TAG);
        buf.put_u64_le(2);
        encode_msg(&ServerMsg::CloseOk.into(), &mut buf);
        let mut slice = buf.freeze();
        assert_eq!(decode_msg_traced(&mut slice), Err(WireError::BadTag(TRACE_ENVELOPE_TAG)));
    }

    #[test]
    fn truncated_trace_envelope_errors_not_panics() {
        let msg: Msg = CmsMsg::Have { reqid: 1, path: "/f".into(), hash: 2, staging: false }.into();
        let mut buf = BytesMut::new();
        encode_msg_traced(&msg, 77, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(decode_msg_traced(&mut partial).is_err(), "cut at {cut} must fail");
        }
    }

    proptest! {
        #[test]
        fn traced_roundtrips(trace: u64, reqid: u64, path in "[ -~]{0,32}") {
            let msg: Msg = CmsMsg::Locate { reqid, path, hash: 1, write: false }.into();
            let mut buf = BytesMut::new();
            encode_msg_traced(&msg, trace, &mut buf);
            let mut slice = buf.freeze();
            let (got_trace, got) = decode_msg_traced(&mut slice).unwrap();
            prop_assert_eq!(got_trace, trace);
            prop_assert_eq!(got, msg);
        }

        #[test]
        fn locate_roundtrips(reqid: u64, path in "[ -~]{0,64}", hash: u32, write: bool) {
            roundtrip(CmsMsg::Locate { reqid, path, hash, write }.into());
        }

        #[test]
        fn write_roundtrips(handle: u64, offset: u64, data in proptest::collection::vec(any::<u8>(), 0..256)) {
            roundtrip(ClientMsg::Write { handle, offset, data: Bytes::from(data) }.into());
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut b = Bytes::from(data);
            let _ = decode_msg(&mut b); // may error, must not panic
        }
    }
}

/// Maximum frame payload: a message plus framing must fit in 64 MiB + slack.
const MAX_FRAME: u32 = (MAX_FIELD as u32) + 1024;

/// Appends `msg` as a length-prefixed frame (`u32` little-endian length,
/// then the encoded message) — the stream form for real sockets.
pub fn encode_frame(msg: &Msg, buf: &mut BytesMut) {
    encode_frame_traced(msg, 0, buf);
}

/// [`encode_frame`] with a trace envelope; a zero `trace` id produces a
/// plain frame.
pub fn encode_frame_traced(msg: &Msg, trace: u64, buf: &mut BytesMut) {
    let at = buf.len();
    buf.put_u32_le(0); // placeholder
    encode_msg_traced(msg, trace, buf);
    let len = (buf.len() - at - 4) as u32;
    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Incremental frame decoder for a byte stream: feed bytes, drain messages.
///
/// Tolerates arbitrary fragmentation (TCP segment boundaries never align
/// with frames) and rejects oversized or malformed frames with an error
/// rather than unbounded buffering.
#[derive(Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete message, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes"; errors are fatal for the stream
    /// (the peer is speaking garbage). Named `next` for familiarity even
    /// though the fallible signature differs from `Iterator::next`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Msg>, WireError> {
        Ok(self.next_traced()?.map(|(_, msg)| msg))
    }

    /// Like [`FrameDecoder::next`] but keeps the frame's trace id (0 for
    /// plain, pre-envelope frames).
    pub fn next_traced(&mut self) -> Result<Option<(u64, Msg)>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes checked"));
        if len > MAX_FRAME {
            return Err(WireError::BadLength(u64::from(len)));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut frame = self.buf.split_to(total).freeze();
        frame.advance(4);
        let traced = decode_msg_traced(&mut frame)?;
        if frame.remaining() != 0 {
            return Err(WireError::BadLength(u64::from(len)));
        }
        Ok(Some(traced))
    }
}

#[cfg(test)]
mod frame_tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_msgs() -> Vec<Msg> {
        vec![
            ClientMsg::Open { path: "/a/b".into(), write: false, refresh: false, avoid: None }
                .into(),
            ServerMsg::Redirect { host: "sup-7".into() }.into(),
            CmsMsg::Have { reqid: 3, path: "/a/b".into(), hash: 99, staging: false }.into(),
            ServerMsg::Data { data: Bytes::from(vec![1u8; 1000]) }.into(),
            ClientMsg::List { dir: "/a".into() }.into(),
        ]
    }

    #[test]
    fn stream_roundtrip_single_feed() {
        let msgs = sample_msgs();
        let mut buf = BytesMut::new();
        for m in &msgs {
            encode_frame(m, &mut buf);
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        let mut out = Vec::new();
        while let Some(m) = dec.next().unwrap() {
            out.push(m);
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn mixed_plain_and_traced_stream_roundtrips() {
        let msgs = sample_msgs();
        let mut buf = BytesMut::new();
        for (i, m) in msgs.iter().enumerate() {
            encode_frame_traced(m, if i % 2 == 0 { 0x1000 + i as u64 } else { 0 }, &mut buf);
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        let mut out = Vec::new();
        while let Some(tm) = dec.next_traced().unwrap() {
            out.push(tm);
        }
        assert_eq!(out.len(), msgs.len());
        for (i, (trace, m)) in out.iter().enumerate() {
            assert_eq!(*m, msgs[i]);
            assert_eq!(*trace, if i % 2 == 0 { 0x1000 + i as u64 } else { 0 });
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::MAX.to_le_bytes());
        assert!(matches!(dec.next(), Err(WireError::BadLength(_))));
    }

    #[test]
    fn trailing_garbage_in_frame_rejected() {
        // Valid CloseOk message plus one stray byte inside the frame.
        let mut inner = BytesMut::new();
        encode_msg(&ServerMsg::CloseOk.into(), &mut inner);
        inner.put_u8(0xFF);
        let mut buf = BytesMut::new();
        buf.put_u32_le(inner.len() as u32);
        buf.extend_from_slice(&inner);
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert!(dec.next().is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_fragmentation_preserves_stream(
            chunk_sizes in proptest::collection::vec(1usize..64, 1..64),
        ) {
            let msgs = sample_msgs();
            let mut wire = BytesMut::new();
            for m in &msgs {
                encode_frame(m, &mut wire);
            }
            let wire = wire.freeze();
            let mut dec = FrameDecoder::new();
            let mut out = Vec::new();
            let mut pos = 0usize;
            let mut chunks = chunk_sizes.iter().cycle();
            while pos < wire.len() {
                let n = (*chunks.next().unwrap()).min(wire.len() - pos);
                dec.feed(&wire[pos..pos + n]);
                pos += n;
                while let Some(m) = dec.next().unwrap() {
                    out.push(m);
                }
            }
            prop_assert_eq!(out, msgs);
            prop_assert_eq!(dec.buffered(), 0);
        }
    }
}
