//! Cluster assembly on the simulated network.

use scalla_cache::CacheConfig;
use scalla_client::{ClientConfig, ClientNode, ClientOp, Directory, OpResult};
use scalla_cluster::{MembershipConfig, NodeId, NodeRole, SelectionPolicy, TreeSpec};
use scalla_node::{CmsdConfig, CmsdNode, CmsdRole, CnsNode, ServerConfig, ServerNode};
use scalla_obs::Obs;
use scalla_pcache::{PcacheConfig, ProxyConfig, ProxyNode};
use scalla_proto::Addr;
use scalla_simnet::{LatencyModel, SimNet};
use scalla_util::Nanos;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything needed to stand up a cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of leaf data servers.
    pub n_servers: usize,
    /// Tree fanout (64 in Scalla; smaller keeps tests fast).
    pub fanout: usize,
    /// Number of replicated head nodes (≥ 1).
    pub n_managers: usize,
    /// Replicas per supervisor position (≥ 1). "Every node in the cluster
    /// can be replicated to provide an arbitrary level of reliability"
    /// (§II-B1): each replica logs into the same parents and adopts the
    /// same children, so either can resolve the subtree.
    pub supervisor_replicas: usize,
    /// Default link model.
    pub latency: LatencyModel,
    /// Cache tuning applied to every cmsd.
    pub cache: CacheConfig,
    /// Membership tuning applied to every cmsd.
    pub membership: MembershipConfig,
    /// Selection policy at every cmsd.
    pub policy: SelectionPolicy,
    /// Exported prefixes declared by every server.
    pub exports: Vec<String>,
    /// MSS staging delay on the servers.
    pub staging_delay: Nanos,
    /// Heartbeat period cluster-wide.
    pub heartbeat: Nanos,
    /// Number of block-caching proxy data servers (§II-B6) joined under
    /// the managers alongside the real servers.
    pub n_proxies: usize,
    /// Block-cache tuning applied to every proxy.
    pub pcache: PcacheConfig,
    /// Deterministic seed.
    pub seed: u64,
    /// Whether to run a Cluster Name Space daemon (footnote 3) and wire
    /// every server's namespace notifications to it.
    pub with_cns: bool,
    /// Observability handle cloned into every node (managers, supervisors,
    /// servers, and clients added later). The disabled default costs one
    /// branch per probe.
    pub obs: Obs,
}

impl ClusterConfig {
    /// A small flat cluster with experiment-friendly tuning.
    pub fn flat(n_servers: usize) -> ClusterConfig {
        ClusterConfig {
            n_servers,
            fanout: 64,
            n_managers: 1,
            supervisor_replicas: 1,
            latency: LatencyModel::lan(),
            cache: CacheConfig::default(),
            membership: MembershipConfig::default(),
            policy: SelectionPolicy::RoundRobin,
            exports: vec!["/".to_string()],
            staging_delay: Nanos::from_secs(30),
            heartbeat: Nanos::from_secs(1),
            n_proxies: 0,
            pcache: PcacheConfig::default(),
            seed: 42,
            with_cns: false,
            obs: Obs::disabled(),
        }
    }
}

/// A built cluster: the network plus an index of every node.
pub struct SimCluster {
    /// The simulated network; drive it with `run_for`/`run_until`.
    pub net: SimNet,
    /// Host-name directory shared with clients.
    pub directory: Arc<Directory>,
    /// Head-node addresses.
    pub managers: Vec<Addr>,
    /// Supervisor addresses (tree order).
    pub supervisors: Vec<Addr>,
    /// Leaf server addresses, aligned with `spec.servers`.
    pub servers: Vec<Addr>,
    /// Proxy-cache addresses (`pxy-{p}`), when configured.
    pub proxies: Vec<Addr>,
    /// The layout this cluster was built from.
    pub spec: TreeSpec,
    /// Client addresses added so far.
    pub clients: Vec<Addr>,
    /// The Cluster Name Space daemon, when configured.
    pub cns: Option<Addr>,
    cfg: ClusterConfig,
}

impl SimCluster {
    /// Builds the cluster (nodes registered, nothing started yet). Call
    /// [`SimCluster::settle`] to run logins and heartbeats before driving
    /// load.
    pub fn build(cfg: ClusterConfig) -> SimCluster {
        let spec = TreeSpec::build(cfg.n_servers, cfg.fanout);
        let mut net = SimNet::new(cfg.latency, cfg.seed);
        let clock = net.clock();
        let directory = Arc::new(Directory::new());

        let cns = if cfg.with_cns {
            let addr = net.add_node(Box::new(CnsNode::new()));
            directory.register("cns", addr);
            Some(addr)
        } else {
            None
        };

        // Pass 1: allocate addresses level by level (parents before
        // children so children can name their parents at construction).
        let mut addr_of: HashMap<NodeId, Vec<Addr>> = HashMap::new();

        // Managers (replicas of the root).
        let mut managers = Vec::new();
        for m in 0..cfg.n_managers.max(1) {
            let name = format!("mgr-{m}");
            let mut c = CmsdConfig::manager(&name);
            c.cache = cfg.cache.clone();
            c.membership = cfg.membership.clone();
            c.policy = cfg.policy;
            c.heartbeat = cfg.heartbeat;
            // A child is offline only after missing several heartbeats.
            c.offline_after = cfg.heartbeat.mul(3).max(c.offline_after);
            c.seed = cfg.seed ^ (m as u64);
            let mut node = CmsdNode::new(c, clock.clone());
            if cfg.obs.is_enabled() {
                node.set_obs(cfg.obs.clone());
            }
            let addr = net.add_node(Box::new(node));
            directory.register(&name, addr);
            managers.push(addr);
        }
        addr_of.insert(spec.manager, managers.clone());

        // Interior + leaves in creation order (parents always first).
        let mut supervisors = Vec::new();
        let mut servers = Vec::new();
        for node in &spec.nodes {
            match node.role {
                NodeRole::Manager => {}
                NodeRole::Supervisor => {
                    let parents = addr_of[&node.parent.expect("non-root")].clone();
                    let replicas = cfg.supervisor_replicas.max(1);
                    let mut addrs = Vec::with_capacity(replicas);
                    for r in 0..replicas {
                        let name = if r == 0 {
                            format!("sup-{}", node.id.0)
                        } else {
                            format!("sup-{}r{r}", node.id.0)
                        };
                        let mut c = CmsdConfig::supervisor(&name, parents[0]);
                        c.parents = parents.clone();
                        c.exports = cfg.exports.clone();
                        c.cache = cfg.cache.clone();
                        c.membership = cfg.membership.clone();
                        c.policy = cfg.policy;
                        c.heartbeat = cfg.heartbeat;
                        c.offline_after = cfg.heartbeat.mul(3).max(c.offline_after);
                        c.seed = cfg.seed ^ u64::from(node.id.0) ^ ((r as u64) << 32);
                        let mut cmsd = CmsdNode::new(c, clock.clone());
                        if cfg.obs.is_enabled() {
                            cmsd.set_obs(cfg.obs.clone());
                        }
                        let addr = net.add_node(Box::new(cmsd));
                        directory.register(&name, addr);
                        supervisors.push(addr);
                        addrs.push(addr);
                    }
                    addr_of.insert(node.id, addrs);
                }
                NodeRole::Server => {
                    let parents = addr_of[&node.parent.expect("non-root")].clone();
                    let idx = servers.len();
                    let name = format!("srv-{idx}");
                    let mut c = ServerConfig::new(&name, parents[0]);
                    c.parents = parents;
                    c.exports = cfg.exports.clone();
                    c.staging_delay = cfg.staging_delay;
                    c.heartbeat = cfg.heartbeat;
                    c.cns = cns;
                    let mut srv = ServerNode::new(c);
                    if cfg.obs.is_enabled() {
                        srv.set_obs(cfg.obs.clone());
                    }
                    let addr = net.add_node(Box::new(srv));
                    directory.register(&name, addr);
                    servers.push(addr);
                    addr_of.insert(node.id, vec![addr]);
                }
            }
        }

        // Proxy caches join the managers directly, looking like ordinary
        // data servers to the cmsd tree.
        let mut proxies = Vec::new();
        for p in 0..cfg.n_proxies {
            let name = format!("pxy-{p}");
            let mut c = ProxyConfig::new(&name, managers[0], directory.clone());
            c.parents = managers.clone();
            c.origin_managers = managers.clone();
            c.exports = cfg.exports.clone();
            c.cache = cfg.pcache.clone();
            c.heartbeat = cfg.heartbeat;
            let mut pxy = ProxyNode::new(c);
            if cfg.obs.is_enabled() {
                pxy.set_obs(cfg.obs.clone());
            }
            let addr = net.add_node(Box::new(pxy));
            directory.register(&name, addr);
            proxies.push(addr);
        }

        SimCluster {
            net,
            directory,
            managers,
            supervisors,
            servers,
            proxies,
            spec,
            clients: Vec::new(),
            cns,
            cfg,
        }
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Seeds a file on server `idx` (online or MSS-resident).
    pub fn seed_file(&mut self, idx: usize, path: &str, size: u64, online: bool) {
        let addr = self.servers[idx];
        let node = self
            .net
            .node_mut(addr)
            .as_any_mut()
            .expect("server exposes any")
            .downcast_mut::<ServerNode>()
            .expect("leaf is a ServerNode");
        if online {
            node.fs_mut().put_online(path, size);
        } else {
            node.fs_mut().put_offline(path, size);
        }
    }

    /// Starts every node and runs the network for `duration` so logins and
    /// first heartbeats complete.
    pub fn settle(&mut self, duration: Nanos) {
        self.net.start();
        self.net.run_for(duration);
    }

    /// Attaches a scripted client targeting the manager(s). Returns its
    /// address; results are harvested with [`SimCluster::client_results`].
    pub fn add_client(&mut self, ops: Vec<ClientOp>, start_delay: Nanos) -> Addr {
        let mut ccfg = ClientConfig::new(self.managers[0], self.directory.clone(), ops);
        ccfg.managers = self.managers.clone();
        ccfg.start_delay = start_delay;
        ccfg.cns = self.cns;
        let mut node = ClientNode::new(ccfg);
        if self.cfg.obs.is_enabled() {
            node.set_obs(self.cfg.obs.clone());
        }
        let addr = self.net.add_node(Box::new(node));
        self.clients.push(addr);
        addr
    }

    /// Attaches a client with full config control.
    pub fn add_client_with(&mut self, mut f: impl FnMut(&mut ClientConfig)) -> Addr {
        let mut ccfg = ClientConfig::new(self.managers[0], self.directory.clone(), Vec::new());
        ccfg.managers = self.managers.clone();
        ccfg.cns = self.cns;
        f(&mut ccfg);
        let mut node = ClientNode::new(ccfg);
        if self.cfg.obs.is_enabled() {
            node.set_obs(self.cfg.obs.clone());
        }
        let addr = self.net.add_node(Box::new(node));
        self.clients.push(addr);
        addr
    }

    /// Starts one late-added node (e.g. a client added after `settle`).
    pub fn start_node(&mut self, addr: Addr) {
        // Re-using revive semantics: a never-killed node can be started by
        // kill+revive without losing state because kill only gates message
        // delivery.
        self.net.kill(addr);
        self.net.revive(addr);
    }

    /// Harvests a client's operation records.
    pub fn client_results(&mut self, addr: Addr) -> Vec<OpResult> {
        self.net
            .node_mut(addr)
            .as_any_mut()
            .expect("client exposes any")
            .downcast_ref::<ClientNode>()
            .expect("addr is a ClientNode")
            .results()
            .to_vec()
    }

    /// Whether a client has finished its script.
    pub fn client_done(&mut self, addr: Addr) -> bool {
        self.net
            .node_mut(addr)
            .as_any_mut()
            .expect("client exposes any")
            .downcast_ref::<ClientNode>()
            .expect("addr is a ClientNode")
            .is_done()
    }

    /// Runs `f` against a cmsd node (manager or supervisor).
    pub fn with_cmsd<R>(&mut self, addr: Addr, f: impl FnOnce(&mut CmsdNode) -> R) -> R {
        let node = self
            .net
            .node_mut(addr)
            .as_any_mut()
            .expect("cmsd exposes any")
            .downcast_mut::<CmsdNode>()
            .expect("addr is a CmsdNode");
        f(node)
    }

    /// Attaches a scripted client whose "manager" is proxy `idx` — its
    /// whole data path flows through the proxy cache.
    pub fn add_proxy_client(&mut self, idx: usize, ops: Vec<ClientOp>, start_delay: Nanos) -> Addr {
        let proxy = self.proxies[idx];
        let mut ccfg = ClientConfig::new(proxy, self.directory.clone(), ops);
        ccfg.managers = vec![proxy];
        ccfg.start_delay = start_delay;
        ccfg.cns = self.cns;
        let mut node = ClientNode::new(ccfg);
        if self.cfg.obs.is_enabled() {
            node.set_obs(self.cfg.obs.clone());
        }
        let addr = self.net.add_node(Box::new(node));
        self.clients.push(addr);
        addr
    }

    /// Runs `f` against a proxy-cache node.
    pub fn with_proxy<R>(&mut self, idx: usize, f: impl FnOnce(&mut ProxyNode) -> R) -> R {
        let addr = self.proxies[idx];
        let node = self
            .net
            .node_mut(addr)
            .as_any_mut()
            .expect("proxy exposes any")
            .downcast_mut::<ProxyNode>()
            .expect("addr is a ProxyNode");
        f(node)
    }

    /// Runs `f` against a leaf server node.
    pub fn with_server<R>(&mut self, idx: usize, f: impl FnOnce(&mut ServerNode) -> R) -> R {
        let addr = self.servers[idx];
        let node = self
            .net
            .node_mut(addr)
            .as_any_mut()
            .expect("server exposes any")
            .downcast_mut::<ServerNode>()
            .expect("addr is a ServerNode");
        f(node)
    }
}

/// Re-exported so the harness can name roles without importing
/// scalla-cluster directly.
pub use scalla_node::CmsdRole as Role;

// Silence an unused-import warning path: CmsdRole is used via the re-export.
const _: Option<CmsdRole> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_client::OpOutcome;

    fn small() -> ClusterConfig {
        let mut cfg = ClusterConfig::flat(4);
        cfg.latency = LatencyModel::fixed(Nanos::from_micros(20));
        cfg.staging_delay = Nanos::from_secs(2);
        cfg
    }

    #[test]
    fn logins_complete_after_settle() {
        let mut c = SimCluster::build(small());
        c.settle(Nanos::from_secs(2));
        let mgr = c.managers[0];
        let active = c.with_cmsd(mgr, |n| n.members().active());
        assert_eq!(active.len(), 4, "all servers logged in");
    }

    #[test]
    fn end_to_end_open_of_seeded_file() {
        let mut c = SimCluster::build(small());
        c.seed_file(2, "/data/f1", 1024, true);
        c.settle(Nanos::from_secs(2));
        let client = c.add_client(
            vec![ClientOp::Open { path: "/data/f1".into(), write: false }],
            Nanos::ZERO,
        );
        c.start_node(client);
        c.net.run_for(Nanos::from_secs(10));
        let results = c.client_results(client);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].outcome, OpOutcome::Ok);
        assert_eq!(results[0].server.as_deref(), Some("srv-2"));
        assert_eq!(results[0].redirects, 1, "flat tree: one hop");
    }

    #[test]
    fn two_level_tree_walks_two_hops() {
        let mut cfg = small();
        cfg.n_servers = 9;
        cfg.fanout = 3; // forces a supervisor level
        let mut c = SimCluster::build(cfg);
        assert_eq!(c.spec.depth(), 2);
        c.seed_file(7, "/data/deep", 10, true);
        c.settle(Nanos::from_secs(2));
        let client = c.add_client(
            vec![ClientOp::Open { path: "/data/deep".into(), write: false }],
            Nanos::ZERO,
        );
        c.start_node(client);
        c.net.run_for(Nanos::from_secs(20));
        let results = c.client_results(client);
        assert_eq!(results[0].outcome, OpOutcome::Ok);
        assert_eq!(results[0].redirects, 2, "manager -> supervisor -> server");
        assert_eq!(results[0].server.as_deref(), Some("srv-7"));
    }

    #[test]
    fn obs_enabled_cluster_records_stages_and_spans() {
        let mut cfg = small();
        cfg.obs = Obs::enabled();
        let obs = cfg.obs.clone();
        let mut c = SimCluster::build(cfg);
        c.seed_file(1, "/data/traced", 64, true);
        c.settle(Nanos::from_secs(2));
        let client = c.add_client(
            vec![ClientOp::Open { path: "/data/traced".into(), write: false }],
            Nanos::ZERO,
        );
        c.start_node(client);
        c.net.run_for(Nanos::from_secs(10));
        let results = c.client_results(client);
        assert_eq!(results[0].outcome, OpOutcome::Ok);
        assert_ne!(results[0].trace_id, 0, "client minted a trace id");

        // The manager resolved at least once and the client timed a
        // redirect hop: both stage histograms are non-empty.
        let text = obs.registry().prometheus_text();
        assert!(text.contains("scalla_stage_ns_count{stage=\"resolve\"}"), "{text}");
        let resolve_empty = text.contains("scalla_stage_ns_count{stage=\"resolve\"} 0");
        assert!(!resolve_empty, "resolve histogram must have samples: {text}");
        let hop_empty = text.contains("scalla_stage_ns_count{stage=\"redirect_hop\"} 0");
        assert!(!hop_empty, "redirect-hop histogram must have samples: {text}");

        // The client's trace id shows up in cmsd and client flight spans.
        let flight = obs.flight().render();
        let id = format!("{:016x}", results[0].trace_id);
        assert!(flight.contains(&id), "trace {id} missing from flight:\n{flight}");
        assert!(flight.contains("stage=cms_resolve"), "{flight}");
        assert!(flight.contains("stage=client_op"), "{flight}");
    }

    #[test]
    fn nonexistent_file_is_notfound_after_full_delay() {
        let mut c = SimCluster::build(small());
        c.settle(Nanos::from_secs(2));
        let t0 = c.net.now();
        let client = c.add_client(
            vec![ClientOp::Open { path: "/data/ghost".into(), write: false }],
            Nanos::ZERO,
        );
        c.start_node(client);
        c.net.run_for(Nanos::from_secs(30));
        let results = c.client_results(client);
        assert_eq!(results[0].outcome, OpOutcome::NotFound);
        // The full 5 s delay was imposed before the negative verdict.
        assert!(results[0].end.since(t0) >= Nanos::from_secs(5));
        assert!(results[0].waits >= 1);
    }
}
