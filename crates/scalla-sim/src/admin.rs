//! Minimal admin/metrics endpoint for the live runtimes.
//!
//! One listener thread per net, speaking a line-oriented protocol: the
//! client connects, sends one request line, and gets the full response
//! followed by connection close (curl/netcat friendly — no HTTP framing):
//!
//! | request    | response                                              |
//! |------------|-------------------------------------------------------|
//! | `/metrics` | Prometheus text exposition of the shared registry     |
//! | `/stats`   | JSON snapshot of the same registry                    |
//! | `/flight`  | flight-recorder dump (live ring + last incident)      |
//!
//! Registry collectors run at every scrape, so counter islands mirrored
//! into the registry (cache stats, wire counters) are current at read
//! time. Teardown follows the runtime's deterministic wake protocol: set
//! the stop flag, then a throwaway connection unblocks `accept`.

use scalla_obs::Obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest accepted request line; anything beyond is garbage.
const MAX_REQUEST: usize = 256;

/// Per-connection I/O budget so a wedged scraper cannot pin the thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The running admin endpoint of one net.
pub(crate) struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds an ephemeral localhost port and spawns the listener thread.
    pub(crate) fn spawn(obs: Obs) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new().name("scalla-admin".into()).spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if thread_stop.load(Ordering::Relaxed) {
                            break; // the shutdown wake-up call
                        }
                        let _ = serve_conn(stream, &obs);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        })?;
        Ok(AdminServer { addr, stop, handle: Some(handle) })
    }

    /// The endpoint's socket address.
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread (wakes it with a throwaway connection).
    pub(crate) fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_conn(mut stream: TcpStream, obs: &Obs) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Read one request line, byte-bounded.
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if line.len() >= MAX_REQUEST {
            stream.write_all(b"ERR request line too long\n")?;
            return Ok(());
        }
        match stream.read(&mut byte)? {
            0 => break, // EOF before newline still serves what arrived
            _ if byte[0] == b'\n' => break,
            _ => line.push(byte[0]),
        }
    }
    let req = String::from_utf8_lossy(&line);
    let body = match req.trim() {
        "/metrics" => obs.registry().prometheus_text(),
        "/stats" => {
            let mut json = obs.registry().json_snapshot();
            json.push('\n');
            json
        }
        "/flight" => obs.flight().render(),
        other => format!("ERR unknown endpoint {other:?} (try /metrics, /stats, /flight)\n"),
    };
    stream.write_all(body.as_bytes())
}

/// Scrapes one endpooint path (`/metrics`, `/stats`, or `/flight`) from an
/// admin server — the client side of the line protocol, shared by tests,
/// examples, and CI checks.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(path.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_obs::{SpanEvent, Stage, TraceId};

    fn test_obs() -> Obs {
        let obs = Obs::with_config(1, 64);
        obs.record_stage(Stage::Resolve, 1_500);
        obs.span(SpanEvent::new(TraceId(0xF00D), 2, "cms_resolve").verdict("redirect"));
        obs
    }

    #[test]
    fn serves_all_three_endpoints() {
        let server = AdminServer::spawn(test_obs()).unwrap();
        let metrics = scrape(server.addr(), "/metrics").unwrap();
        assert!(metrics.contains("# TYPE scalla_stage_ns histogram"), "{metrics}");
        assert!(metrics.contains("scalla_stage_ns_count{stage=\"resolve\"} 1"), "{metrics}");
        let stats = scrape(server.addr(), "/stats").unwrap();
        assert!(stats.contains("\"histograms\""), "{stats}");
        let flight = scrape(server.addr(), "/flight").unwrap();
        assert!(flight.contains("trace=000000000000f00d"), "{flight}");
        assert!(flight.contains("stage=cms_resolve"), "{flight}");
        server.shutdown();
    }

    #[test]
    fn unknown_endpoint_gets_an_error_line() {
        let server = AdminServer::spawn(test_obs()).unwrap();
        let resp = scrape(server.addr(), "/nope").unwrap();
        assert!(resp.starts_with("ERR unknown endpoint"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent_via_drop() {
        let server = AdminServer::spawn(test_obs()).unwrap();
        let addr = server.addr();
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(2), "wake protocol must be prompt");
        assert!(scrape(addr, "/metrics").is_err(), "endpoint must be closed");
    }

    #[test]
    fn oversized_request_is_rejected() {
        let server = AdminServer::spawn(test_obs()).unwrap();
        let mut stream = TcpStream::connect_timeout(&server.addr(), IO_TIMEOUT).unwrap();
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        // The server may close after MAX_REQUEST bytes, so later writes can
        // hit a broken pipe — that is fine, the error line already shipped.
        let _ = stream.write_all("x".repeat(4 * MAX_REQUEST).as_bytes());
        let _ = stream.write_all(b"\n");
        let mut resp = String::new();
        let _ = stream.read_to_string(&mut resp);
        assert!(resp.starts_with("ERR request line too long"), "{resp}");
        server.shutdown();
    }
}
