//! Non-blocking batched egress for the TCP runtime.
//!
//! The protocol thread must never touch a peer socket: one hung peer would
//! otherwise stall a node's entire event loop (connects, writes, and their
//! syscalls all block). Instead every outgoing link is a bounded frame
//! queue drained by a dedicated writer thread:
//!
//! * **Non-blocking send** — the protocol thread encodes into a pooled
//!   buffer and `try_send`s it; a full queue drops the frame with explicit
//!   accounting (the same loss semantics a dead peer already has).
//! * **Coalescing** — the writer drains everything queued (up to
//!   [`MAX_BATCH`]) and ships the batch in a single `write_vectored`
//!   syscall, so bursts cost one syscall for many frames.
//! * **Bounded blocking** — connects happen on the writer thread with a
//!   timeout, writes carry a write timeout, and a peer that stays wedged
//!   past [`MAX_WRITE_STALLS`] consecutive timeouts is declared dead (its
//!   frames are dropped and the next frame triggers a fresh connect).
//! * **Deterministic shutdown** — dropping the queue's sender wakes the
//!   writer out of `recv`; the stop flag breaks any in-flight stall loop.

use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use scalla_proto::{Addr, BufferPool};
use std::io::{ErrorKind, IoSlice, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Frames a single peer queue can hold before overflow drops begin.
pub(crate) const QUEUE_CAP: usize = 4096;
/// Most frames one vectored write will carry.
const MAX_BATCH: usize = 64;
/// Writer-side connect budget; a peer that cannot accept in this window
/// counts as dead for the queued batch.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Per-syscall write budget so a stalled socket cannot hold the writer
/// (and therefore shutdown) hostage.
const WRITE_TIMEOUT: Duration = Duration::from_millis(100);
/// Consecutive write timeouts before the peer is declared dead.
const MAX_WRITE_STALLS: u32 = 50;

/// Cumulative egress counters, shared by every link of a net.
#[derive(Default)]
pub(crate) struct EgressStats {
    /// Frames fully written to a socket.
    pub frames: AtomicU64,
    /// Vectored write syscalls issued (frames / writes = coalescing ratio).
    pub writes: AtomicU64,
    /// Frames dropped because a peer queue was full.
    pub queue_drops: AtomicU64,
    /// Frames dropped because the peer was unreachable, stalled past the
    /// budget, or the connection broke mid-batch.
    pub conn_drops: AtomicU64,
}

/// State shared between protocol threads and all writer threads of a net.
pub(crate) struct EgressShared {
    /// Net-wide stop flag; breaks writer stall loops promptly.
    pub stop: Arc<AtomicBool>,
    /// Frame buffer pool (steady-state sends allocate nothing).
    pub pool: BufferPool,
    /// Cumulative counters.
    pub stats: EgressStats,
}

impl EgressShared {
    pub fn new(stop: Arc<AtomicBool>) -> EgressShared {
        EgressShared {
            stop,
            pool: BufferPool::new(2 * QUEUE_CAP.min(256)),
            stats: EgressStats::default(),
        }
    }
}

/// One outgoing link: a bounded frame queue plus its writer thread.
pub(crate) struct EgressLink {
    tx: Sender<BytesMut>,
    handle: JoinHandle<()>,
}

impl EgressLink {
    /// Spawns the writer thread for `me → peer`. Nothing connects yet;
    /// the first queued frame triggers the (writer-side) connect.
    pub fn spawn(me: Addr, peer: SocketAddr, shared: Arc<EgressShared>) -> EgressLink {
        let (tx, rx) = bounded::<BytesMut>(QUEUE_CAP);
        let handle = std::thread::Builder::new()
            .name(format!("scalla-tcp-writer-{}-{}", me.0, peer.port()))
            .spawn(move || writer_loop(me, peer, rx, shared))
            .expect("spawn egress writer");
        EgressLink { tx, handle }
    }

    /// Queues one encoded frame without blocking. Overflow (or a link
    /// already torn down) drops the frame, counts it, and recycles the
    /// buffer.
    pub fn send(&self, frame: BytesMut, shared: &EgressShared) {
        match self.tx.try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(f)) | Err(TrySendError::Disconnected(f)) => {
                shared.stats.queue_drops.fetch_add(1, Ordering::Relaxed);
                shared.pool.put(f);
            }
        }
    }

    /// Closes the queue and joins the writer. The dropped sender wakes the
    /// writer deterministically; it drains what is already queued (stop
    /// flag permitting) and exits.
    pub fn close(self) {
        let EgressLink { tx, handle } = self;
        drop(tx);
        let _ = handle.join();
    }
}

fn writer_loop(me: Addr, peer: SocketAddr, rx: Receiver<BytesMut>, shared: Arc<EgressShared>) {
    let mut conn: Option<TcpStream> = None;
    let mut batch: Vec<BytesMut> = Vec::with_capacity(MAX_BATCH);
    // Block for the next frame; a dropped sender ends the link.
    while let Ok(first) = rx.recv() {
        batch.push(first);
        // Coalesce everything else already queued.
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Some(f) => batch.push(f),
                None => break,
            }
        }
        if shared.stop.load(Ordering::Relaxed) {
            // Shutting down: don't start connects or writes, just account.
            shared.stats.conn_drops.fetch_add(batch.len() as u64, Ordering::Relaxed);
        } else {
            if conn.is_none() {
                conn = connect(me, peer, &shared);
            }
            let delivered = match conn.as_mut() {
                Some(stream) => write_batch(stream, &batch, &shared),
                None => 0,
            };
            if delivered < batch.len() {
                // Broken or wedged: drop the link so a later frame retries
                // a fresh connect (the peer may have restarted).
                conn = None;
                shared
                    .stats
                    .conn_drops
                    .fetch_add((batch.len() - delivered) as u64, Ordering::Relaxed);
            }
        }
        for buf in batch.drain(..) {
            shared.pool.put(buf);
        }
    }
}

/// Connects with a timeout and writes the 8-byte sender-address preamble.
fn connect(me: Addr, peer: SocketAddr, shared: &EgressShared) -> Option<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&peer, CONNECT_TIMEOUT).ok()?;
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(WRITE_TIMEOUT)).ok();
    let pre = me.0.to_le_bytes();
    let mut written = 0;
    let mut stalls = 0u32;
    while written < pre.len() {
        match stream.write(&pre[written..]) {
            Ok(0) => return None,
            Ok(n) => {
                written += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                stalls += 1;
                if stalls > MAX_WRITE_STALLS || shared.stop.load(Ordering::Relaxed) {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(stream)
}

/// Writes the whole batch with vectored syscalls, handling partial writes
/// across frame boundaries. Returns the number of frames fully written.
fn write_batch(stream: &mut TcpStream, batch: &[BytesMut], shared: &EgressShared) -> usize {
    let mut idx = 0; // first frame not yet fully written
    let mut off = 0; // bytes of frame `idx` already written
    let mut stalls = 0u32;
    while idx < batch.len() {
        let mut slices = Vec::with_capacity(batch.len() - idx);
        slices.push(IoSlice::new(&batch[idx][off..]));
        for frame in &batch[idx + 1..] {
            slices.push(IoSlice::new(frame));
        }
        match stream.write_vectored(&slices) {
            Ok(0) => return idx,
            Ok(mut n) => {
                shared.stats.writes.fetch_add(1, Ordering::Relaxed);
                stalls = 0;
                while n > 0 && idx < batch.len() {
                    let remaining = batch[idx].len() - off;
                    if n >= remaining {
                        n -= remaining;
                        off = 0;
                        idx += 1;
                        shared.stats.frames.fetch_add(1, Ordering::Relaxed);
                    } else {
                        off += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                stalls += 1;
                if stalls > MAX_WRITE_STALLS || shared.stop.load(Ordering::Relaxed) {
                    return idx;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return idx,
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn shared() -> Arc<EgressShared> {
        Arc::new(EgressShared::new(Arc::new(AtomicBool::new(false))))
    }

    fn frame(bytes: &[u8], shared: &EgressShared) -> BytesMut {
        let mut b = shared.pool.get();
        b.extend_from_slice(bytes);
        b
    }

    /// Reads everything after the 8-byte preamble until EOF.
    fn drain_after_preamble(listener: std::net::TcpListener) -> Vec<u8> {
        let (mut s, _) = listener.accept().unwrap();
        let mut pre = [0u8; 8];
        s.read_exact(&mut pre).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn frames_arrive_in_order_with_preamble() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || drain_after_preamble(listener));
        let sh = shared();
        let link = EgressLink::spawn(Addr(3), peer, sh.clone());
        for chunk in [b"aaaa".as_slice(), b"bb", b"cccccc"] {
            link.send(frame(chunk, &sh), &sh);
        }
        link.close();
        assert_eq!(reader.join().unwrap(), b"aaaabbcccccc");
        assert_eq!(sh.stats.frames.load(Ordering::Relaxed), 3);
        assert_eq!(sh.stats.queue_drops.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unreachable_peer_counts_conn_drops_without_blocking_sender() {
        // A bound-then-dropped listener: connects are refused instantly.
        let peer = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let sh = shared();
        let link = EgressLink::spawn(Addr(0), peer, sh.clone());
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            link.send(frame(b"x", &sh), &sh);
        }
        assert!(t0.elapsed() < Duration::from_millis(100), "send must not block");
        link.close();
        assert_eq!(
            sh.stats.conn_drops.load(Ordering::Relaxed)
                + sh.stats.queue_drops.load(Ordering::Relaxed),
            10
        );
        assert_eq!(sh.stats.frames.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn bursts_coalesce_into_fewer_syscalls() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || drain_after_preamble(listener));
        let sh = shared();
        let link = EgressLink::spawn(Addr(1), peer, sh.clone());
        let n = 512u64;
        for _ in 0..n {
            link.send(frame(b"0123456789", &sh), &sh);
        }
        link.close();
        let got = reader.join().unwrap();
        assert_eq!(got.len(), 10 * n as usize, "no frame lost below queue capacity");
        let frames = sh.stats.frames.load(Ordering::Relaxed);
        let writes = sh.stats.writes.load(Ordering::Relaxed);
        assert_eq!(frames, n);
        assert!(writes <= frames, "coalescing can never need more syscalls than frames");
    }
}
