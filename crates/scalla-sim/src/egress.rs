//! Non-blocking batched egress for the TCP runtime.
//!
//! The protocol thread must never touch a peer socket: one hung peer would
//! otherwise stall a node's entire event loop (connects, writes, and their
//! syscalls all block). Instead every outgoing link is a bounded frame
//! queue drained by a dedicated writer thread:
//!
//! * **Non-blocking send** — the protocol thread encodes into a pooled
//!   buffer and `try_send`s it; a full queue drops the frame with explicit
//!   accounting (the same loss semantics a dead peer already has).
//! * **Coalescing** — the writer drains everything queued (up to
//!   [`MAX_BATCH`]) and ships the batch in a single `write_vectored`
//!   syscall, so bursts cost one syscall for many frames.
//! * **Bounded blocking** — connects happen on the writer thread with a
//!   timeout, writes carry a write timeout, and a peer that stays wedged
//!   past the stall budget is declared **dead**.
//! * **Dead → probing → alive** — a dead peer is *not* dead forever (the
//!   paper's clusters treat node restart as steady state, §II-A). The
//!   writer drops frames instantly while a capped exponential backoff
//!   (with ±25 % jitter, seeded per link) runs down, then spends one
//!   connect attempt as a probe. Success rejoins the peer — backoff
//!   resets, a `peer_reconnected` incident fires; failure doubles the
//!   backoff. The first failing transition fires `peer_dead`. Both edges
//!   count in `scalla_recovery_events_total{event=...}` so soak tests can
//!   assert matched dead/reconnected pairs.
//! * **Deterministic shutdown** — dropping the queue's sender wakes the
//!   writer out of `recv`; the stop flag breaks any in-flight stall loop.

use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use scalla_obs::Obs;
use scalla_proto::{Addr, BufferPool};
use scalla_util::SplitMix64;
use std::io::{ErrorKind, IoSlice, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frames a single peer queue can hold before overflow drops begin.
pub(crate) const QUEUE_CAP: usize = 4096;
/// Most frames one vectored write will carry.
const MAX_BATCH: usize = 64;

/// Writer-thread timeouts and the dead-peer probing schedule.
///
/// The defaults match production-ish settings; tests shrink them to make
/// death detection and reconnection fast.
#[derive(Clone, Copy, Debug)]
pub struct EgressTuning {
    /// Writer-side connect budget; a peer that cannot accept in this
    /// window counts as dead for the queued batch.
    pub connect_timeout: Duration,
    /// Per-syscall write budget so a stalled socket cannot hold the
    /// writer (and therefore shutdown) hostage.
    pub write_timeout: Duration,
    /// Consecutive write timeouts before the peer is declared dead.
    pub max_write_stalls: u32,
    /// First probe delay after a peer dies.
    pub probe_backoff_min: Duration,
    /// Probe delay ceiling (backoff doubles per failed probe up to this).
    pub probe_backoff_max: Duration,
}

impl Default for EgressTuning {
    fn default() -> EgressTuning {
        EgressTuning {
            connect_timeout: Duration::from_secs(1),
            write_timeout: Duration::from_millis(100),
            max_write_stalls: 50,
            probe_backoff_min: Duration::from_millis(50),
            probe_backoff_max: Duration::from_secs(2),
        }
    }
}

/// Cumulative egress counters, shared by every link of a net.
#[derive(Default)]
pub(crate) struct EgressStats {
    /// Frames fully written to a socket.
    pub frames: AtomicU64,
    /// Vectored write syscalls issued (frames / writes = coalescing ratio).
    pub writes: AtomicU64,
    /// Frames dropped because a peer queue was full.
    pub queue_drops: AtomicU64,
    /// Frames dropped because the peer was unreachable, stalled past the
    /// budget, or the connection broke mid-batch.
    pub conn_drops: AtomicU64,
    /// Alive→dead transitions across all links.
    pub peer_deaths: AtomicU64,
    /// Dead→alive transitions (successful probes) across all links.
    pub peer_reconnects: AtomicU64,
}

/// State shared between protocol threads and all writer threads of a net.
pub(crate) struct EgressShared {
    /// Net-wide stop flag; breaks writer stall loops promptly.
    pub stop: Arc<AtomicBool>,
    /// Frame buffer pool (steady-state sends allocate nothing).
    pub pool: BufferPool,
    /// Cumulative counters.
    pub stats: EgressStats,
    /// Timeouts and probing schedule (tests shrink these).
    pub tuning: RwLock<EgressTuning>,
    /// Recovery-incident sink (`peer_dead` / `peer_reconnected`).
    pub obs: RwLock<Obs>,
}

impl EgressShared {
    pub fn new(stop: Arc<AtomicBool>) -> EgressShared {
        EgressShared {
            stop,
            pool: BufferPool::new(2 * QUEUE_CAP.min(256)),
            stats: EgressStats::default(),
            tuning: RwLock::new(EgressTuning::default()),
            obs: RwLock::new(Obs::disabled()),
        }
    }

    fn recovery_event(&self, event: &'static str) {
        let obs = self.obs.read().clone();
        obs.incident(event);
        obs.count("scalla_recovery_events_total", &[("event", event)], 1);
    }
}

/// One outgoing link: a bounded frame queue plus its writer thread.
pub(crate) struct EgressLink {
    tx: Sender<BytesMut>,
    handle: JoinHandle<()>,
}

impl EgressLink {
    /// Spawns the writer thread for `me → peer`. Nothing connects yet;
    /// the first queued frame triggers the (writer-side) connect.
    pub fn spawn(me: Addr, peer: SocketAddr, shared: Arc<EgressShared>) -> EgressLink {
        let (tx, rx) = bounded::<BytesMut>(QUEUE_CAP);
        let handle = std::thread::Builder::new()
            .name(format!("scalla-tcp-writer-{}-{}", me.0, peer.port()))
            .spawn(move || writer_loop(me, peer, rx, shared))
            .expect("spawn egress writer");
        EgressLink { tx, handle }
    }

    /// Queues one encoded frame without blocking. Overflow (or a link
    /// already torn down) drops the frame, counts it, and recycles the
    /// buffer.
    pub fn send(&self, frame: BytesMut, shared: &EgressShared) {
        match self.tx.try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(f)) | Err(TrySendError::Disconnected(f)) => {
                shared.stats.queue_drops.fetch_add(1, Ordering::Relaxed);
                shared.pool.put(f);
            }
        }
    }

    /// Closes the queue and joins the writer. The dropped sender wakes the
    /// writer deterministically; it drains what is already queued (stop
    /// flag permitting) and exits.
    pub fn close(self) {
        let EgressLink { tx, handle } = self;
        drop(tx);
        let _ = handle.join();
    }
}

/// Per-link dead-peer state: the current (capped, doubling) backoff and
/// the earliest instant the next connect probe may fire.
struct DeadPeer {
    backoff: Duration,
    next_probe: Instant,
}

impl DeadPeer {
    /// Applies ±25 % jitter so a restarted hub isn't hit by every writer
    /// in the same instant.
    fn jittered(backoff: Duration, rng: &mut SplitMix64) -> Duration {
        backoff.mul_f64(0.75 + rng.next_f64() * 0.5)
    }
}

/// Records a failed connect/write: first failure marks the peer dead
/// (incident + counter), later failures double the probe backoff.
fn mark_dead(
    dead: &mut Option<DeadPeer>,
    tuning: &EgressTuning,
    rng: &mut SplitMix64,
    shared: &EgressShared,
) {
    match dead {
        None => {
            shared.stats.peer_deaths.fetch_add(1, Ordering::Relaxed);
            shared.recovery_event("peer_dead");
            let backoff = tuning.probe_backoff_min;
            *dead = Some(DeadPeer {
                backoff,
                next_probe: Instant::now() + DeadPeer::jittered(backoff, rng),
            });
        }
        Some(d) => {
            d.backoff = (d.backoff * 2).min(tuning.probe_backoff_max);
            d.next_probe = Instant::now() + DeadPeer::jittered(d.backoff, rng);
        }
    }
}

fn writer_loop(me: Addr, peer: SocketAddr, rx: Receiver<BytesMut>, shared: Arc<EgressShared>) {
    let mut conn: Option<TcpStream> = None;
    let mut dead: Option<DeadPeer> = None;
    let mut rng = SplitMix64::new(me.0 ^ ((peer.port() as u64) << 32));
    let mut batch: Vec<BytesMut> = Vec::with_capacity(MAX_BATCH);
    // Block for the next frame; a dropped sender ends the link.
    while let Ok(first) = rx.recv() {
        batch.push(first);
        // Coalesce everything else already queued.
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Some(f) => batch.push(f),
                None => break,
            }
        }
        if shared.stop.load(Ordering::Relaxed) {
            // Shutting down: don't start connects or writes, just account.
            shared.stats.conn_drops.fetch_add(batch.len() as u64, Ordering::Relaxed);
        } else if dead.as_ref().is_some_and(|d| Instant::now() < d.next_probe) {
            // Dead and not yet due for a probe: drop instantly instead of
            // paying a full connect timeout per batch.
            shared.stats.conn_drops.fetch_add(batch.len() as u64, Ordering::Relaxed);
        } else {
            let tuning = *shared.tuning.read();
            if conn.is_none() {
                conn = connect(me, peer, &tuning, &shared);
                match &conn {
                    Some(_) => {
                        if dead.take().is_some() {
                            // A probe succeeded: the peer is back.
                            shared.stats.peer_reconnects.fetch_add(1, Ordering::Relaxed);
                            shared.recovery_event("peer_reconnected");
                        }
                    }
                    None => mark_dead(&mut dead, &tuning, &mut rng, &shared),
                }
            }
            let delivered = match conn.as_mut() {
                Some(stream) => write_batch(stream, &batch, &tuning, &shared),
                None => 0,
            };
            if delivered < batch.len() {
                shared
                    .stats
                    .conn_drops
                    .fetch_add((batch.len() - delivered) as u64, Ordering::Relaxed);
                if conn.take().is_some() {
                    // An established connection broke or wedged: back to
                    // dead so probing (not every batch) pays the timeout.
                    mark_dead(&mut dead, &tuning, &mut rng, &shared);
                }
            }
        }
        for buf in batch.drain(..) {
            shared.pool.put(buf);
        }
    }
}

/// Connects with a timeout and writes the 8-byte sender-address preamble.
fn connect(
    me: Addr,
    peer: SocketAddr,
    tuning: &EgressTuning,
    shared: &EgressShared,
) -> Option<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&peer, tuning.connect_timeout).ok()?;
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(tuning.write_timeout)).ok();
    let pre = me.0.to_le_bytes();
    let mut written = 0;
    let mut stalls = 0u32;
    while written < pre.len() {
        match stream.write(&pre[written..]) {
            Ok(0) => return None,
            Ok(n) => {
                written += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                stalls += 1;
                if stalls > tuning.max_write_stalls || shared.stop.load(Ordering::Relaxed) {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(stream)
}

/// Writes the whole batch with vectored syscalls, handling partial writes
/// across frame boundaries. Returns the number of frames fully written.
fn write_batch(
    stream: &mut TcpStream,
    batch: &[BytesMut],
    tuning: &EgressTuning,
    shared: &EgressShared,
) -> usize {
    let mut idx = 0; // first frame not yet fully written
    let mut off = 0; // bytes of frame `idx` already written
    let mut stalls = 0u32;
    while idx < batch.len() {
        let mut slices = Vec::with_capacity(batch.len() - idx);
        slices.push(IoSlice::new(&batch[idx][off..]));
        for frame in &batch[idx + 1..] {
            slices.push(IoSlice::new(frame));
        }
        match stream.write_vectored(&slices) {
            Ok(0) => return idx,
            Ok(mut n) => {
                shared.stats.writes.fetch_add(1, Ordering::Relaxed);
                stalls = 0;
                while n > 0 && idx < batch.len() {
                    let remaining = batch[idx].len() - off;
                    if n >= remaining {
                        n -= remaining;
                        off = 0;
                        idx += 1;
                        shared.stats.frames.fetch_add(1, Ordering::Relaxed);
                    } else {
                        off += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                stalls += 1;
                if stalls > tuning.max_write_stalls || shared.stop.load(Ordering::Relaxed) {
                    return idx;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return idx,
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::poll_until;
    use std::io::Read;

    fn shared() -> Arc<EgressShared> {
        Arc::new(EgressShared::new(Arc::new(AtomicBool::new(false))))
    }

    fn frame(bytes: &[u8], shared: &EgressShared) -> BytesMut {
        let mut b = shared.pool.get();
        b.extend_from_slice(bytes);
        b
    }

    /// Reads everything after the 8-byte preamble until EOF.
    fn drain_after_preamble(listener: std::net::TcpListener) -> Vec<u8> {
        let (mut s, _) = listener.accept().unwrap();
        let mut pre = [0u8; 8];
        s.read_exact(&mut pre).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn frames_arrive_in_order_with_preamble() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || drain_after_preamble(listener));
        let sh = shared();
        let link = EgressLink::spawn(Addr(3), peer, sh.clone());
        for chunk in [b"aaaa".as_slice(), b"bb", b"cccccc"] {
            link.send(frame(chunk, &sh), &sh);
        }
        link.close();
        assert_eq!(reader.join().unwrap(), b"aaaabbcccccc");
        assert_eq!(sh.stats.frames.load(Ordering::Relaxed), 3);
        assert_eq!(sh.stats.queue_drops.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unreachable_peer_counts_conn_drops_without_blocking_sender() {
        // A bound-then-dropped listener: connects are refused instantly.
        let peer = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let sh = shared();
        let link = EgressLink::spawn(Addr(0), peer, sh.clone());
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            link.send(frame(b"x", &sh), &sh);
        }
        assert!(t0.elapsed() < Duration::from_millis(100), "send must not block");
        link.close();
        assert_eq!(
            sh.stats.conn_drops.load(Ordering::Relaxed)
                + sh.stats.queue_drops.load(Ordering::Relaxed),
            10
        );
        assert_eq!(sh.stats.frames.load(Ordering::Relaxed), 0);
        assert_eq!(sh.stats.peer_deaths.load(Ordering::Relaxed), 1, "one death transition");
        assert_eq!(sh.stats.peer_reconnects.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn bursts_coalesce_into_fewer_syscalls() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || drain_after_preamble(listener));
        let sh = shared();
        let link = EgressLink::spawn(Addr(1), peer, sh.clone());
        let n = 512u64;
        for _ in 0..n {
            link.send(frame(b"0123456789", &sh), &sh);
        }
        link.close();
        let got = reader.join().unwrap();
        assert_eq!(got.len(), 10 * n as usize, "no frame lost below queue capacity");
        let frames = sh.stats.frames.load(Ordering::Relaxed);
        let writes = sh.stats.writes.load(Ordering::Relaxed);
        assert_eq!(frames, n);
        assert!(writes <= frames, "coalescing can never need more syscalls than frames");
    }

    #[test]
    fn dead_peer_is_rejoined_by_backoff_probing() {
        // Reserve a port, then free it: connects are refused (the peer is
        // "down") until the listener is rebound on the same port.
        let peer = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let sh = shared();
        *sh.tuning.write() = EgressTuning {
            probe_backoff_min: Duration::from_millis(10),
            probe_backoff_max: Duration::from_millis(40),
            ..EgressTuning::default()
        };
        let obs = Obs::enabled();
        *sh.obs.write() = obs.clone();
        let link = EgressLink::spawn(Addr(7), peer, sh.clone());

        link.send(frame(b"lost", &sh), &sh);
        assert!(
            poll_until(Duration::from_secs(5), || sh.stats.peer_deaths.load(Ordering::Relaxed)
                == 1),
            "refused connect must mark the peer dead"
        );

        // While the backoff runs down, frames drop without connect cost.
        link.send(frame(b"lost2", &sh), &sh);

        // "Restart" the peer on the very same port; keep feeding frames so
        // a probe fires once the backoff expires.
        let listener = std::net::TcpListener::bind(peer).unwrap();
        let reader = std::thread::spawn(move || drain_after_preamble(listener));
        assert!(
            poll_until(Duration::from_secs(5), || {
                link.send(frame(b"hello", &sh), &sh);
                std::thread::sleep(Duration::from_millis(5));
                sh.stats.peer_reconnects.load(Ordering::Relaxed) == 1
            }),
            "probe must rejoin the restarted peer"
        );
        link.close();
        let got = reader.join().unwrap();
        assert!(got.windows(5).any(|w| w == b"hello"), "traffic resumed after rejoin");
        assert_eq!(sh.stats.peer_deaths.load(Ordering::Relaxed), 1);
        let text = obs.registry().prometheus_text();
        assert!(text.contains("scalla_recovery_events_total{event=\"peer_dead\"} 1"), "{text}");
        assert!(
            text.contains("scalla_recovery_events_total{event=\"peer_reconnected\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn backoff_doubles_and_caps_with_jitter_bounds() {
        let tuning = EgressTuning {
            probe_backoff_min: Duration::from_millis(10),
            probe_backoff_max: Duration::from_millis(35),
            ..EgressTuning::default()
        };
        let sh = shared();
        let mut rng = SplitMix64::new(9);
        let mut dead = None;
        mark_dead(&mut dead, &tuning, &mut rng, &sh);
        assert_eq!(dead.as_ref().unwrap().backoff, Duration::from_millis(10));
        mark_dead(&mut dead, &tuning, &mut rng, &sh);
        assert_eq!(dead.as_ref().unwrap().backoff, Duration::from_millis(20));
        mark_dead(&mut dead, &tuning, &mut rng, &sh);
        assert_eq!(dead.as_ref().unwrap().backoff, Duration::from_millis(35), "capped");
        assert_eq!(sh.stats.peer_deaths.load(Ordering::Relaxed), 1, "death counted once");
        for _ in 0..100 {
            let j = DeadPeer::jittered(Duration::from_millis(100), &mut rng);
            assert!(j >= Duration::from_millis(75) && j < Duration::from_millis(125), "{j:?}");
        }
    }
}
