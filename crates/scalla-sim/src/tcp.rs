//! Real-socket runtime: the cluster over TCP on localhost.
//!
//! The third runtime tier. The simulator proves protocol shapes, the
//! threaded runtime proves the locking, and this one proves the *wire*:
//! every message crosses a real `TcpStream` through the binary codec and
//! [`FrameDecoder`](scalla_proto::FrameDecoder), with all the
//! fragmentation and interleaving a kernel socket provides. The very same
//! [`Node`] state machines run unmodified.
//!
//! Topology: each node owns a listener on `127.0.0.1`; outgoing links are
//! lazy persistent connections that start with an 8-byte sender-address
//! preamble so the receiver can attribute frames. A dead peer shows up as
//! a broken pipe and the message is dropped — exactly the loss semantics
//! of the other runtimes.
//!
//! Sends never block the protocol thread: each outgoing link is a bounded
//! queue drained by a writer thread that coalesces queued frames into
//! vectored writes (see [`egress`](crate::egress) internals). Inbound
//! frames land in a bounded mailbox; overflow drops are counted per node
//! and surfaced through [`TcpNet::counters`].

use crate::admin::AdminServer;
use crate::chaos::{FaultGates, GateVerdict};
use crate::egress::{EgressLink, EgressShared, EgressTuning};
use crate::metrics::{EgressCounters, NetCounters};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use scalla_obs::Obs;
use scalla_proto::{encode_frame, encode_frame_traced_pooled, Addr, FrameDecoder, Msg};
use scalla_simnet::{NetCtx, Node};
use scalla_util::{Clock, Nanos, SystemClock};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

enum Envelope {
    Deliver {
        from: Addr,
        msg: Msg,
        trace: u64,
    },
    /// Re-runs the node's `on_start` after a chaos revive (timers are
    /// cleared first — the node re-arms its own schedule, exactly as a
    /// restarted process would).
    Restart,
    Stop,
}

type PendingTcpNode = (Box<dyn Node>, Receiver<Envelope>, TcpListener);

/// Placeholder returned from [`TcpNet::shutdown`] for address slots
/// registered with [`TcpNet::add_external`], keeping the returned vector
/// aligned with addresses.
struct ExternalPeer;
impl Node for ExternalPeer {
    fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {}
}

struct TcpCtx<'a> {
    me: Addr,
    clock: &'a Arc<SystemClock>,
    peers: &'a [SocketAddr],
    links: &'a mut HashMap<Addr, EgressLink>,
    shared: &'a Arc<EgressShared>,
    timers: &'a mut BinaryHeap<std::cmp::Reverse<(Nanos, u64)>>,
    rng_state: &'a mut u64,
    gates: &'a FaultGates,
    /// Ambient request trace id for this callback: seeded from the inbound
    /// frame's envelope and stamped onto every frame sent from it, so a
    /// trace follows the request across cmsd→supervisor→server hops
    /// without touching the `Node` trait.
    trace: u64,
}

impl TcpCtx<'_> {
    fn link(&mut self, to: Addr) -> Option<&EgressLink> {
        if !self.links.contains_key(&to) {
            let peer = *self.peers.get(to.0 as usize)?;
            self.links.insert(to, EgressLink::spawn(self.me, peer, self.shared.clone()));
        }
        self.links.get(&to)
    }
}

impl NetCtx for TcpCtx<'_> {
    fn now(&self) -> Nanos {
        self.clock.now()
    }
    fn me(&self) -> Addr {
        self.me
    }
    fn send(&mut self, to: Addr, msg: Msg) {
        // Chaos gate first: a crashed sender, crashed target, partitioned
        // pair, or loss roll silently eats the message before encoding.
        let copies = match self.gates.verdict(self.me, to) {
            GateVerdict::Drop => return,
            GateVerdict::Deliver => 1,
            GateVerdict::Duplicate => 2,
        };
        // Encode into a pooled buffer and queue it; the writer thread owns
        // every socket interaction. This path must never block.
        let shared = self.shared.clone();
        for _ in 0..copies {
            let frame = encode_frame_traced_pooled(&msg, self.trace, &self.shared.pool);
            match self.link(to) {
                Some(link) => link.send(frame, &shared),
                None => {
                    // Address outside the net: same silent-drop semantics
                    // as a dead peer, but accounted.
                    shared.stats.conn_drops.fetch_add(1, Ordering::Relaxed);
                    shared.pool.put(frame);
                }
            }
        }
    }
    fn set_timer(&mut self, delay: Nanos, token: u64) {
        self.timers.push(std::cmp::Reverse((self.clock.now() + delay, token)));
    }
    fn rand_u64(&mut self) -> u64 {
        *self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }
    fn trace(&self) -> u64 {
        self.trace
    }
}

/// The TCP runtime.
pub struct TcpNet {
    clock: Arc<SystemClock>,
    peers: Vec<SocketAddr>,
    mailboxes: Vec<Sender<Envelope>>,
    mailbox_drops: Vec<Arc<AtomicU64>>,
    pending: Vec<Option<PendingTcpNode>>,
    node_handles: Vec<Option<JoinHandle<Box<dyn Node>>>>,
    acceptor_handles: Vec<Option<JoinHandle<()>>>,
    /// Clones of accepted inbound streams, shut down at teardown so reader
    /// threads blocked in `read` wake deterministically.
    inbound: Arc<Mutex<Vec<TcpStream>>>,
    shared: Arc<EgressShared>,
    stop: Arc<AtomicBool>,
    started: bool,
    admin: Option<AdminServer>,
    gates: FaultGates,
}

impl TcpNet {
    /// Creates an empty TCP network.
    pub fn new() -> std::io::Result<TcpNet> {
        let stop = Arc::new(AtomicBool::new(false));
        Ok(TcpNet {
            clock: Arc::new(SystemClock::new()),
            peers: Vec::new(),
            mailboxes: Vec::new(),
            mailbox_drops: Vec::new(),
            pending: Vec::new(),
            node_handles: Vec::new(),
            acceptor_handles: Vec::new(),
            inbound: Arc::new(Mutex::new(Vec::new())),
            shared: Arc::new(EgressShared::new(stop.clone())),
            stop,
            started: false,
            admin: None,
            gates: FaultGates::new(0),
        })
    }

    /// The chaos gates governing this net's message flow. Cloning shares
    /// state, so a harness can drive faults while the net runs.
    pub fn gates(&self) -> FaultGates {
        self.gates.clone()
    }

    /// Replaces the chaos gates (call before [`TcpNet::start`] to pick a
    /// fault seed).
    pub fn set_gates(&mut self, gates: FaultGates) {
        assert!(!self.started, "set_gates before start");
        self.gates = gates;
    }

    /// Overrides the egress writer timeouts and dead-peer probe schedule.
    pub fn set_egress_tuning(&self, tuning: EgressTuning) {
        *self.shared.tuning.write() = tuning;
    }

    /// Attaches an observability handle: egress writers report
    /// `peer_dead` / `peer_reconnected` recovery events through it.
    /// ([`TcpNet::serve_admin`] attaches its handle automatically.)
    pub fn set_obs(&self, obs: Obs) {
        *self.shared.obs.write() = obs;
    }

    /// Gates a node down: its inbound and outbound messages drop until
    /// [`TcpNet::revive`]. The OS process and threads stay up — this
    /// models the *peer-visible* effect of a crash.
    pub fn kill(&self, addr: Addr) {
        self.gates.kill(addr);
    }

    /// Clears the down gate and restarts the node's state machine
    /// (`on_start` re-runs on its protocol thread; pending timers are
    /// discarded first).
    pub fn revive(&self, addr: Addr) {
        self.gates.revive(addr);
        let _ = self.mailboxes[addr.0 as usize].try_send(Envelope::Restart);
    }

    /// The shared clock.
    pub fn clock(&self) -> Arc<SystemClock> {
        self.clock.clone()
    }

    /// Registers a node; it gets a listener on an ephemeral localhost port.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> std::io::Result<Addr> {
        assert!(!self.started, "add_node before start");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        let (tx, rx) = bounded::<Envelope>(65_536);
        let addr = Addr(self.peers.len() as u64);
        self.peers.push(local);
        self.mailboxes.push(tx);
        self.mailbox_drops.push(Arc::new(AtomicU64::new(0)));
        self.pending.push(Some((node, rx, listener)));
        self.node_handles.push(None);
        self.acceptor_handles.push(None);
        Ok(addr)
    }

    /// Registers an address slot served by an *external* socket the net
    /// does not manage (fault injection: a black-hole listener that
    /// accepts but never reads, a server speaking garbage, …). Frames
    /// sent to it leave through the normal egress pipeline; nothing is
    /// read back. [`TcpNet::shutdown`] returns a placeholder node for the
    /// slot so address alignment is preserved.
    pub fn add_external(&mut self, peer: SocketAddr) -> Addr {
        assert!(!self.started, "add_external before start");
        let addr = Addr(self.peers.len() as u64);
        self.peers.push(peer);
        // Dummy mailbox: the receiver is dropped immediately, so sends to
        // it error out harmlessly.
        let (tx, _rx) = bounded::<Envelope>(1);
        self.mailboxes.push(tx);
        self.mailbox_drops.push(Arc::new(AtomicU64::new(0)));
        self.pending.push(None);
        self.node_handles.push(None);
        self.acceptor_handles.push(None);
        addr
    }

    /// The socket address a node listens on (diagnostics).
    pub fn socket_of(&self, addr: Addr) -> SocketAddr {
        self.peers[addr.0 as usize]
    }

    /// Starts the admin endpoint for this net: one listener thread serving
    /// line-oriented `/metrics`, `/stats`, and `/flight` requests against
    /// `obs` (see [`crate::admin`]). The net's own wire counters are
    /// mirrored into the registry at every scrape; call this after the
    /// last [`TcpNet::add_node`] so every mailbox is covered. Returns the
    /// endpoint's socket address.
    pub fn serve_admin(&mut self, obs: Obs) -> std::io::Result<SocketAddr> {
        assert!(obs.is_enabled(), "serve_admin needs an enabled Obs handle");
        assert!(self.admin.is_none(), "serve_admin once per net");
        self.set_obs(obs.clone());
        let shared = self.shared.clone();
        let drops: Vec<Arc<AtomicU64>> = self.mailbox_drops.clone();
        obs.registry().add_collector(Box::new(move |reg| {
            let stats = &shared.stats;
            let counters = NetCounters {
                mailbox_drops: drops.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                egress: EgressCounters {
                    frames: stats.frames.load(Ordering::Relaxed),
                    writes: stats.writes.load(Ordering::Relaxed),
                    queue_drops: stats.queue_drops.load(Ordering::Relaxed),
                    conn_drops: stats.conn_drops.load(Ordering::Relaxed),
                    pool_hits: shared.pool.hits(),
                    pool_misses: shared.pool.misses(),
                    peer_deaths: stats.peer_deaths.load(Ordering::Relaxed),
                    peer_reconnects: stats.peer_reconnects.load(Ordering::Relaxed),
                },
            };
            counters.export_into(reg);
        }));
        let server = AdminServer::spawn(obs)?;
        let addr = server.addr();
        self.admin = Some(server);
        Ok(addr)
    }

    /// Wire and queue counters accumulated so far (callable any time).
    pub fn counters(&self) -> NetCounters {
        let stats = &self.shared.stats;
        NetCounters {
            mailbox_drops: self.mailbox_drops.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            egress: EgressCounters {
                frames: stats.frames.load(Ordering::Relaxed),
                writes: stats.writes.load(Ordering::Relaxed),
                queue_drops: stats.queue_drops.load(Ordering::Relaxed),
                conn_drops: stats.conn_drops.load(Ordering::Relaxed),
                pool_hits: self.shared.pool.hits(),
                pool_misses: self.shared.pool.misses(),
                peer_deaths: stats.peer_deaths.load(Ordering::Relaxed),
                peer_reconnects: stats.peer_reconnects.load(Ordering::Relaxed),
            },
        }
    }

    /// Spawns every node (protocol thread + acceptor + per-connection
    /// readers) and runs `on_start`.
    pub fn start(&mut self) {
        assert!(!self.started, "start once");
        self.started = true;
        let peers = self.peers.clone();
        for i in 0..self.pending.len() {
            let Some((mut node, rx, listener)) = self.pending[i].take() else {
                continue; // external slot: no acceptor, no protocol thread
            };
            let me = Addr(i as u64);
            let clock = self.clock.clone();
            let peers = peers.clone();
            let stop = self.stop.clone();
            let mailbox = self.mailboxes[i].clone();
            let drops = self.mailbox_drops[i].clone();
            let inbound = self.inbound.clone();
            let shared = self.shared.clone();
            let gates = self.gates.clone();

            // Acceptor: blocking accept, one reader thread per inbound
            // connection decoding frames into the node's mailbox. Woken at
            // shutdown by a throwaway connection; joins its readers (woken
            // by the inbound-registry shutdown) before exiting.
            let acceptor = std::thread::Builder::new()
                .name(format!("scalla-tcp-accept-{i}"))
                .spawn(move || {
                    let mut readers: Vec<JoinHandle<()>> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if stop.load(Ordering::Relaxed) {
                                    break; // the shutdown wake-up call
                                }
                                if let Ok(clone) = stream.try_clone() {
                                    inbound.lock().expect("inbound registry").push(clone);
                                }
                                let mailbox = mailbox.clone();
                                let drops = drops.clone();
                                readers.push(std::thread::spawn(move || {
                                    reader_loop(stream, mailbox, drops)
                                }));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(_) => break,
                        }
                    }
                    for r in readers {
                        let _ = r.join();
                    }
                })
                .expect("spawn acceptor");
            self.acceptor_handles[i] = Some(acceptor);

            // Protocol thread: identical event loop to LiveNet, but sends
            // go out through the egress pipeline.
            let handle = std::thread::Builder::new()
                .name(format!("scalla-tcp-node-{i}"))
                .spawn(move || {
                    let mut timers: BinaryHeap<std::cmp::Reverse<(Nanos, u64)>> = BinaryHeap::new();
                    let mut links: HashMap<Addr, EgressLink> = HashMap::new();
                    let mut rng_state = 0x7C9_0000 ^ me.0;
                    {
                        let mut ctx = TcpCtx {
                            me,
                            clock: &clock,
                            peers: &peers,
                            links: &mut links,
                            shared: &shared,
                            timers: &mut timers,
                            rng_state: &mut rng_state,
                            gates: &gates,
                            trace: 0,
                        };
                        node.on_start(&mut ctx);
                    }
                    loop {
                        let now = clock.now();
                        let mut due = Vec::new();
                        while let Some(&std::cmp::Reverse((at, token))) = timers.peek() {
                            if at <= now {
                                timers.pop();
                                due.push(token);
                            } else {
                                break;
                            }
                        }
                        for token in due {
                            if gates.is_down(me) {
                                continue; // a crashed node's timers don't fire
                            }
                            let mut ctx = TcpCtx {
                                me,
                                clock: &clock,
                                peers: &peers,
                                links: &mut links,
                                shared: &shared,
                                timers: &mut timers,
                                rng_state: &mut rng_state,
                                gates: &gates,
                                trace: 0,
                            };
                            node.on_timer(&mut ctx, token);
                        }
                        let wait = timers
                            .peek()
                            .map(|&std::cmp::Reverse((at, _))| {
                                std::time::Duration::from_nanos(at.since(clock.now()).0)
                            })
                            .unwrap_or(std::time::Duration::from_millis(50));
                        match rx.recv_timeout(wait) {
                            Ok(Envelope::Deliver { from, msg, trace }) => {
                                if gates.is_down(me) {
                                    continue; // a crashed node hears nothing
                                }
                                let mut ctx = TcpCtx {
                                    me,
                                    clock: &clock,
                                    peers: &peers,
                                    links: &mut links,
                                    shared: &shared,
                                    timers: &mut timers,
                                    rng_state: &mut rng_state,
                                    gates: &gates,
                                    trace,
                                };
                                node.on_message(&mut ctx, from, msg);
                            }
                            Ok(Envelope::Restart) => {
                                timers.clear();
                                let mut ctx = TcpCtx {
                                    me,
                                    clock: &clock,
                                    peers: &peers,
                                    links: &mut links,
                                    shared: &shared,
                                    timers: &mut timers,
                                    rng_state: &mut rng_state,
                                    gates: &gates,
                                    trace: 0,
                                };
                                node.on_start(&mut ctx);
                            }
                            Ok(Envelope::Stop) => break,
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    // Dropping each queue sender wakes its writer; join
                    // them all so no writer outlives the net.
                    for (_, link) in links.drain() {
                        link.close();
                    }
                    node
                })
                .expect("spawn node thread");
            self.node_handles[i] = Some(handle);
        }
    }

    /// Stops every node and returns them in address order (placeholder
    /// entries for [`TcpNet::add_external`] slots). Teardown is prompt and
    /// leak-free: protocol threads join their egress writers, inbound
    /// sockets are shut down to wake blocked readers, and each acceptor is
    /// woken by a throwaway connection and joins its readers.
    pub fn shutdown(mut self) -> Vec<Box<dyn Node>> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(admin) = self.admin.take() {
            admin.shutdown();
        }
        for tx in &self.mailboxes {
            let _ = tx.send(Envelope::Stop);
        }
        // 1. Protocol threads (each joins its writer threads on the way
        //    out, which closes all outgoing connections).
        let nodes: Vec<Box<dyn Node>> = self
            .node_handles
            .iter_mut()
            .map(|h| match h.take() {
                Some(h) => h.join().expect("node thread panicked"),
                None => Box::new(ExternalPeer) as Box<dyn Node>,
            })
            .collect();
        // 2. Wake any reader still blocked in `read` (streams whose peer
        //    did not close: injected or external connections).
        for stream in self.inbound.lock().expect("inbound registry").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // 3. Wake each acceptor out of `accept` and join it (it joins its
        //    readers first).
        for (i, slot) in self.acceptor_handles.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                let _ =
                    TcpStream::connect_timeout(&self.peers[i], std::time::Duration::from_secs(1));
                let _ = handle.join();
            }
        }
        nodes
    }

    /// Injects a message from a synthetic external address over a real
    /// socket (opens a short-lived connection). Connect and writes are
    /// bounded so a hung target cannot wedge the caller.
    pub fn inject(&self, from: Addr, to: Addr, msg: Msg) -> std::io::Result<()> {
        let peer = self.peers[to.0 as usize];
        let mut stream = TcpStream::connect_timeout(&peer, std::time::Duration::from_secs(1))?;
        stream.set_write_timeout(Some(std::time::Duration::from_secs(1)))?;
        stream.write_all(&from.0.to_le_bytes())?;
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf);
        stream.write_all(&buf)?;
        // Linger long enough for delivery; the reader sees EOF after.
        stream.flush()?;
        Ok(())
    }
}

/// Per-connection inbound loop: preamble, then frames into the mailbox.
/// Blocking reads; woken at shutdown by the inbound-registry `shutdown`
/// (or naturally by peer EOF). Mailbox overflow drops are counted.
fn reader_loop(mut stream: TcpStream, mailbox: Sender<Envelope>, drops: Arc<AtomicU64>) {
    stream.set_nodelay(true).ok();
    let mut pre = [0u8; 8];
    if stream.read_exact(&mut pre).is_err() {
        return;
    }
    let from = Addr(u64::from_le_bytes(pre));
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                dec.feed(&buf[..n]);
                loop {
                    match dec.next_traced() {
                        Ok(Some((trace, msg))) => {
                            match mailbox.try_send(Envelope::Deliver { from, msg, trace }) {
                                Ok(()) => {}
                                Err(TrySendError::Full(_)) => {
                                    drops.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return, // garbage stream
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::assert_poll;
    use scalla_proto::{ClientMsg, ServerMsg};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    struct Echo;
    impl Node for Echo {
        fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
            if matches!(msg, Msg::Client(ClientMsg::Open { .. })) {
                ctx.send(from, ServerMsg::OpenOk { handle: 42 }.into());
            }
        }
    }

    struct Counter(Arc<AtomicU64>);
    impl Node for Counter {
        fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, msg: Msg) {
            if matches!(msg, Msg::Server(ServerMsg::OpenOk { handle: 42 })) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        fn on_start(&mut self, ctx: &mut dyn NetCtx) {
            // Kick the exchange from inside the net: ask the echo node.
            ctx.send(
                Addr(0),
                ClientMsg::Open { path: "/t".into(), write: false, refresh: false, avoid: None }
                    .into(),
            );
        }
    }

    #[test]
    fn frames_cross_real_sockets() {
        let mut net = TcpNet::new().unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let _echo = net.add_node(Box::new(Echo)).unwrap();
        let _counter = net.add_node(Box::new(Counter(count.clone()))).unwrap();
        net.start();
        assert_poll(Duration::from_secs(10), "echo round trip over TCP", || {
            count.load(Ordering::SeqCst) == 1
        });
        let counters = net.counters();
        assert!(counters.egress.frames >= 2, "request + reply crossed the wire");
        assert_eq!(counters.total_mailbox_drops(), 0);
        net.shutdown();
    }

    #[test]
    fn inject_reaches_node_over_socket() {
        let mut net = TcpNet::new().unwrap();
        let count = Arc::new(AtomicU64::new(0));
        struct Sink(Arc<AtomicU64>);
        impl Node for Sink {
            fn on_message(&mut self, _: &mut dyn NetCtx, from: Addr, _: Msg) {
                assert_eq!(from, Addr(9999));
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let sink = net.add_node(Box::new(Sink(count.clone()))).unwrap();
        net.start();
        net.inject(Addr(9999), sink, ServerMsg::CloseOk.into()).unwrap();
        assert_poll(Duration::from_secs(10), "injected frame reaches node", || {
            count.load(Ordering::SeqCst) == 1
        });
        net.shutdown();
    }

    #[test]
    fn shutdown_is_prompt() {
        let mut net = TcpNet::new().unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let _echo = net.add_node(Box::new(Echo)).unwrap();
        let _counter = net.add_node(Box::new(Counter(count.clone()))).unwrap();
        net.start();
        assert_poll(Duration::from_secs(10), "round trip before shutdown", || {
            count.load(Ordering::SeqCst) == 1
        });
        let t0 = std::time::Instant::now();
        net.shutdown();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "deterministic wake protocol must tear down quickly, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn external_slot_keeps_address_alignment() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = listener.local_addr().unwrap();
        let mut net = TcpNet::new().unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let _echo = net.add_node(Box::new(Echo)).unwrap();
        let hole = net.add_external(peer);
        let counter = net.add_node(Box::new(Counter(count.clone()))).unwrap();
        assert_eq!(hole, Addr(1));
        assert_eq!(counter, Addr(2));
        net.start();
        assert_poll(Duration::from_secs(10), "round trip past the external slot", || {
            count.load(Ordering::SeqCst) == 1
        });
        let nodes = net.shutdown();
        assert_eq!(nodes.len(), 3, "external slot yields a placeholder");
    }
}
