//! Real-socket runtime: the cluster over TCP on localhost.
//!
//! The third runtime tier. The simulator proves protocol shapes, the
//! threaded runtime proves the locking, and this one proves the *wire*:
//! every message crosses a real `TcpStream` through the binary codec and
//! [`FrameDecoder`](scalla_proto::FrameDecoder), with all the
//! fragmentation and interleaving a kernel socket provides. The very same
//! [`Node`] state machines run unmodified.
//!
//! Topology: each node owns a listener on `127.0.0.1`; outgoing links are
//! lazy persistent connections that start with an 8-byte sender-address
//! preamble so the receiver can attribute frames. A dead peer shows up as
//! a broken pipe and the message is dropped — exactly the loss semantics
//! of the other runtimes.

use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender};
use scalla_proto::{encode_frame, Addr, FrameDecoder, Msg};
use scalla_simnet::{NetCtx, Node};
use scalla_util::{Clock, Nanos, SystemClock};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Envelope {
    Deliver { from: Addr, msg: Msg },
    Stop,
}

type PendingTcpNode = (Box<dyn Node>, Receiver<Envelope>, TcpListener);

struct TcpCtx<'a> {
    me: Addr,
    clock: &'a Arc<SystemClock>,
    peers: &'a [SocketAddr],
    conns: &'a mut HashMap<Addr, TcpStream>,
    timers: &'a mut BinaryHeap<std::cmp::Reverse<(Nanos, u64)>>,
    rng_state: &'a mut u64,
    scratch: &'a mut BytesMut,
}

impl TcpCtx<'_> {
    fn connection(&mut self, to: Addr) -> Option<&mut TcpStream> {
        if !self.conns.contains_key(&to) {
            let peer = *self.peers.get(to.0 as usize)?;
            let mut stream = TcpStream::connect(peer).ok()?;
            stream.set_nodelay(true).ok();
            // Preamble: who is calling.
            stream.write_all(&self.me.0.to_le_bytes()).ok()?;
            self.conns.insert(to, stream);
        }
        self.conns.get_mut(&to)
    }
}

impl NetCtx for TcpCtx<'_> {
    fn now(&self) -> Nanos {
        self.clock.now()
    }
    fn me(&self) -> Addr {
        self.me
    }
    fn send(&mut self, to: Addr, msg: Msg) {
        self.scratch.clear();
        encode_frame(&msg, self.scratch);
        let frame = self.scratch.split().freeze();
        let ok = match self.connection(to) {
            Some(stream) => stream.write_all(&frame).is_ok(),
            None => false,
        };
        if !ok {
            // Dead peer or refused connection: drop the link so a later
            // send retries a fresh connect (the peer may have restarted).
            self.conns.remove(&to);
        }
    }
    fn set_timer(&mut self, delay: Nanos, token: u64) {
        self.timers.push(std::cmp::Reverse((self.clock.now() + delay, token)));
    }
    fn rand_u64(&mut self) -> u64 {
        *self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The TCP runtime.
pub struct TcpNet {
    clock: Arc<SystemClock>,
    peers: Vec<SocketAddr>,
    mailboxes: Vec<Sender<Envelope>>,
    pending: Vec<Option<PendingTcpNode>>,
    node_handles: Vec<Option<JoinHandle<Box<dyn Node>>>>,
    stop: Arc<AtomicBool>,
    started: bool,
}

impl TcpNet {
    /// Creates an empty TCP network.
    pub fn new() -> std::io::Result<TcpNet> {
        Ok(TcpNet {
            clock: Arc::new(SystemClock::new()),
            peers: Vec::new(),
            mailboxes: Vec::new(),
            pending: Vec::new(),
            node_handles: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
            started: false,
        })
    }

    /// The shared clock.
    pub fn clock(&self) -> Arc<SystemClock> {
        self.clock.clone()
    }

    /// Registers a node; it gets a listener on an ephemeral localhost port.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> std::io::Result<Addr> {
        assert!(!self.started, "add_node before start");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (tx, rx) = bounded::<Envelope>(65_536);
        let addr = Addr(self.peers.len() as u64);
        self.peers.push(local);
        self.mailboxes.push(tx);
        self.pending.push(Some((node, rx, listener)));
        self.node_handles.push(None);
        Ok(addr)
    }

    /// The socket address a node listens on (diagnostics).
    pub fn socket_of(&self, addr: Addr) -> SocketAddr {
        self.peers[addr.0 as usize]
    }

    /// Spawns every node (protocol thread + acceptor + per-connection
    /// readers) and runs `on_start`.
    pub fn start(&mut self) {
        assert!(!self.started, "start once");
        self.started = true;
        let peers = self.peers.clone();
        for (i, slot) in self.pending.iter_mut().enumerate() {
            let (mut node, rx, listener) = slot.take().expect("un-started node");
            let me = Addr(i as u64);
            let clock = self.clock.clone();
            let peers = peers.clone();
            let stop = self.stop.clone();
            let mailbox = self.mailboxes[i].clone();

            // Acceptor: poll-accept, then one reader thread per inbound
            // connection decoding frames into the node's mailbox.
            std::thread::Builder::new()
                .name(format!("scalla-tcp-accept-{i}"))
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((mut stream, _)) => {
                                let mailbox = mailbox.clone();
                                let stop = stop.clone();
                                std::thread::spawn(move || {
                                    stream.set_nodelay(true).ok();
                                    stream
                                        .set_read_timeout(Some(std::time::Duration::from_millis(
                                            200,
                                        )))
                                        .ok();
                                    // Preamble: sender address.
                                    let mut pre = [0u8; 8];
                                    let mut got = 0;
                                    while got < 8 {
                                        match stream.read(&mut pre[got..]) {
                                            Ok(0) => return,
                                            Ok(n) => got += n,
                                            Err(e)
                                                if e.kind() == std::io::ErrorKind::WouldBlock
                                                    || e.kind() == std::io::ErrorKind::TimedOut =>
                                            {
                                                if stop.load(Ordering::Relaxed) {
                                                    return;
                                                }
                                            }
                                            Err(_) => return,
                                        }
                                    }
                                    let from = Addr(u64::from_le_bytes(pre));
                                    let mut dec = FrameDecoder::new();
                                    let mut buf = [0u8; 16 * 1024];
                                    loop {
                                        match stream.read(&mut buf) {
                                            Ok(0) => return, // peer closed
                                            Ok(n) => {
                                                dec.feed(&buf[..n]);
                                                loop {
                                                    match dec.next() {
                                                        Ok(Some(msg)) => {
                                                            let _ = mailbox.try_send(
                                                                Envelope::Deliver { from, msg },
                                                            );
                                                        }
                                                        Ok(None) => break,
                                                        Err(_) => return, // garbage stream
                                                    }
                                                }
                                            }
                                            Err(e)
                                                if e.kind() == std::io::ErrorKind::WouldBlock
                                                    || e.kind() == std::io::ErrorKind::TimedOut =>
                                            {
                                                if stop.load(Ordering::Relaxed) {
                                                    return;
                                                }
                                            }
                                            Err(_) => return,
                                        }
                                    }
                                });
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(std::time::Duration::from_millis(10));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn acceptor");

            // Protocol thread: identical event loop to LiveNet, but sends
            // go out over TCP.
            let handle = std::thread::Builder::new()
                .name(format!("scalla-tcp-node-{i}"))
                .spawn(move || {
                    let mut timers: BinaryHeap<std::cmp::Reverse<(Nanos, u64)>> = BinaryHeap::new();
                    let mut conns: HashMap<Addr, TcpStream> = HashMap::new();
                    let mut rng_state = 0x7C9_0000 ^ me.0;
                    let mut scratch = BytesMut::with_capacity(4096);
                    {
                        let mut ctx = TcpCtx {
                            me,
                            clock: &clock,
                            peers: &peers,
                            conns: &mut conns,
                            timers: &mut timers,
                            rng_state: &mut rng_state,
                            scratch: &mut scratch,
                        };
                        node.on_start(&mut ctx);
                    }
                    loop {
                        let now = clock.now();
                        let mut due = Vec::new();
                        while let Some(&std::cmp::Reverse((at, token))) = timers.peek() {
                            if at <= now {
                                timers.pop();
                                due.push(token);
                            } else {
                                break;
                            }
                        }
                        for token in due {
                            let mut ctx = TcpCtx {
                                me,
                                clock: &clock,
                                peers: &peers,
                                conns: &mut conns,
                                timers: &mut timers,
                                rng_state: &mut rng_state,
                                scratch: &mut scratch,
                            };
                            node.on_timer(&mut ctx, token);
                        }
                        let wait = timers
                            .peek()
                            .map(|&std::cmp::Reverse((at, _))| {
                                std::time::Duration::from_nanos(at.since(clock.now()).0)
                            })
                            .unwrap_or(std::time::Duration::from_millis(50));
                        match rx.recv_timeout(wait) {
                            Ok(Envelope::Deliver { from, msg }) => {
                                let mut ctx = TcpCtx {
                                    me,
                                    clock: &clock,
                                    peers: &peers,
                                    conns: &mut conns,
                                    timers: &mut timers,
                                    rng_state: &mut rng_state,
                                    scratch: &mut scratch,
                                };
                                node.on_message(&mut ctx, from, msg);
                            }
                            Ok(Envelope::Stop) => break,
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    node
                })
                .expect("spawn node thread");
            self.node_handles[i] = Some(handle);
        }
    }

    /// Stops every node and returns them in address order.
    pub fn shutdown(mut self) -> Vec<Box<dyn Node>> {
        self.stop.store(true, Ordering::Relaxed);
        for tx in &self.mailboxes {
            let _ = tx.send(Envelope::Stop);
        }
        self.node_handles
            .iter_mut()
            .map(|h| h.take().expect("started").join().expect("node thread panicked"))
            .collect()
    }

    /// Injects a message from a synthetic external address over a real
    /// socket (opens a short-lived connection).
    pub fn inject(&self, from: Addr, to: Addr, msg: Msg) -> std::io::Result<()> {
        let mut stream = TcpStream::connect(self.peers[to.0 as usize])?;
        stream.write_all(&from.0.to_le_bytes())?;
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf);
        stream.write_all(&buf)?;
        // Linger long enough for delivery; the reader sees EOF after.
        stream.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_proto::{ClientMsg, ServerMsg};
    use std::sync::atomic::AtomicU64;

    struct Echo;
    impl Node for Echo {
        fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
            if matches!(msg, Msg::Client(ClientMsg::Open { .. })) {
                ctx.send(from, ServerMsg::OpenOk { handle: 42 }.into());
            }
        }
    }

    struct Counter(Arc<AtomicU64>);
    impl Node for Counter {
        fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, msg: Msg) {
            if matches!(msg, Msg::Server(ServerMsg::OpenOk { handle: 42 })) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        fn on_start(&mut self, ctx: &mut dyn NetCtx) {
            // Kick the exchange from inside the net: ask the echo node.
            ctx.send(
                Addr(0),
                ClientMsg::Open { path: "/t".into(), write: false, refresh: false, avoid: None }
                    .into(),
            );
        }
    }

    #[test]
    fn frames_cross_real_sockets() {
        let mut net = TcpNet::new().unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let _echo = net.add_node(Box::new(Echo)).unwrap();
        let _counter = net.add_node(Box::new(Counter(count.clone()))).unwrap();
        net.start();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while count.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(count.load(Ordering::SeqCst), 1, "echo round trip over TCP");
        net.shutdown();
    }

    #[test]
    fn inject_reaches_node_over_socket() {
        let mut net = TcpNet::new().unwrap();
        let count = Arc::new(AtomicU64::new(0));
        struct Sink(Arc<AtomicU64>);
        impl Node for Sink {
            fn on_message(&mut self, _: &mut dyn NetCtx, from: Addr, _: Msg) {
                assert_eq!(from, Addr(9999));
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let sink = net.add_node(Box::new(Sink(count.clone()))).unwrap();
        net.start();
        net.inject(Addr(9999), sink, ServerMsg::CloseOk.into()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while count.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(count.load(Ordering::SeqCst), 1);
        net.shutdown();
    }
}
