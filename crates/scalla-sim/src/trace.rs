//! Operation-trace recording and replay.
//!
//! Experiments produce per-operation records; this module gives them a
//! stable, line-oriented text form so runs can be archived, diffed, and
//! re-summarized without re-running the simulation — the regression
//! workflow EXPERIMENTS.md is built on. One line per operation:
//!
//! ```text
//! v2 <op_index> <trace_id> <start_ns> <end_ns> <outcome> <redirects> <waits> <refreshes> <server|-> <path>
//! ```
//!
//! The format is versioned, whitespace-delimited, and keeps the free-form
//! path last so it may contain anything but a newline. The `outcome` field
//! is `ok`, `notfound`, `gaveup`, or `error:<message>` where the message
//! escapes backslashes as `\\` and spaces as `\s` so the token stays
//! whitespace-free. `trace_id` is the hex trace minted by the client, `0`
//! when tracing was off.
//!
//! v1 lines (`v1 <start> <end> <outcome> <redirects> <waits> <refreshes>
//! <server|-> <path>`) are still decoded: `op_index` is assigned by
//! position, `trace_id` is 0, and error messages (which v1 never carried)
//! come back as `"recorded"`.

use scalla_client::{OpOutcome, OpResult};
use scalla_util::Nanos;

/// Escapes an error message into a whitespace-free token (`\` → `\\`,
/// space → `\s`).
fn escape_msg(msg: &str) -> String {
    msg.replace('\\', "\\\\").replace(' ', "\\s")
}

/// Reverses [`escape_msg`].
fn unescape_msg(tok: &str) -> String {
    let mut out = String::with_capacity(tok.len());
    let mut chars = tok.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('s') => out.push(' '),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn outcome_token(outcome: &OpOutcome) -> String {
    match outcome {
        OpOutcome::Ok => "ok".into(),
        OpOutcome::NotFound => "notfound".into(),
        OpOutcome::GaveUp => "gaveup".into(),
        OpOutcome::Error(msg) => format!("error:{}", escape_msg(msg)),
    }
}

fn parse_outcome(tok: &str) -> Option<OpOutcome> {
    match tok {
        "ok" => Some(OpOutcome::Ok),
        "notfound" => Some(OpOutcome::NotFound),
        "gaveup" => Some(OpOutcome::GaveUp),
        // Bare "error" is the v1 spelling (message was not recorded).
        "error" => Some(OpOutcome::Error("recorded".into())),
        t => t.strip_prefix("error:").map(|m| OpOutcome::Error(unescape_msg(m))),
    }
}

/// Serializes records, one line each, in the current (v2) format.
pub fn encode<'a>(results: impl IntoIterator<Item = &'a OpResult>) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!(
            "v2 {} {:x} {} {} {} {} {} {} {} {}\n",
            r.op_index,
            r.trace_id,
            r.start.0,
            r.end.0,
            outcome_token(&r.outcome),
            r.redirects,
            r.waits,
            r.refreshes,
            r.server.as_deref().unwrap_or("-"),
            r.path,
        ));
    }
    out
}

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, PartialEq, Eq)]
pub struct TraceError {
    /// Line the error occurred on.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

/// Parses a trace produced by [`encode`] — v2 or legacy v1 lines, freely
/// mixed.
pub fn decode(text: &str) -> Result<Vec<OpResult>, TraceError> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let err = |reason: &str| TraceError { line: idx + 1, reason: reason.to_string() };
        if line.trim().is_empty() {
            continue;
        }
        let version = line.split(' ').next().ok_or_else(|| err("empty line"))?;
        let (op_index, trace_id, mut it) = match version {
            "v1" => {
                let mut it = line.splitn(9, ' ');
                it.next(); // version tag
                (out.len(), 0u64, it)
            }
            "v2" => {
                let mut it = line.splitn(11, ' ');
                it.next(); // version tag
                let op_index: usize =
                    it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad op_index"))?;
                let trace_id = it
                    .next()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| err("bad trace_id"))?;
                (op_index, trace_id, it)
            }
            _ => return Err(err("unknown version")),
        };
        let start: u64 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad start"))?;
        let end: u64 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad end"))?;
        let outcome = parse_outcome(it.next().ok_or_else(|| err("missing outcome"))?)
            .ok_or_else(|| err("unknown outcome"))?;
        let redirects: u32 =
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad redirects"))?;
        let waits: u32 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad waits"))?;
        let refreshes: u32 =
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad refreshes"))?;
        let server = match it.next().ok_or_else(|| err("missing server"))? {
            "-" => None,
            s => Some(s.to_string()),
        };
        let path = it.next().ok_or_else(|| err("missing path"))?.to_string();
        out.push(OpResult {
            op_index,
            path,
            start: Nanos(start),
            end: Nanos(end),
            outcome,
            redirects,
            waits,
            refreshes,
            server,
            trace_id,
            entries: Vec::new(),
            data: None,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::summarize;

    fn sample() -> Vec<OpResult> {
        vec![
            OpResult {
                op_index: 0,
                path: "/a/file with spaces.root".into(),
                start: Nanos(100),
                end: Nanos(5_100),
                outcome: OpOutcome::Ok,
                redirects: 2,
                waits: 0,
                refreshes: 0,
                server: Some("srv-3".into()),
                trace_id: 0xDEAD_BEEF,
                entries: Vec::new(),
                data: None,
            },
            OpResult {
                op_index: 1,
                path: "/b".into(),
                start: Nanos(200),
                end: Nanos(5_000_000_200),
                outcome: OpOutcome::NotFound,
                redirects: 0,
                waits: 1,
                refreshes: 0,
                server: None,
                trace_id: 0,
                entries: Vec::new(),
                data: None,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let original = sample();
        let text = encode(&original);
        let decoded = decode(&text).unwrap();
        assert_eq!(decoded.len(), 2);
        for (a, b) in original.iter().zip(&decoded) {
            assert_eq!(a.path, b.path, "paths with spaces must survive");
            assert_eq!(a.op_index, b.op_index);
            assert_eq!(a.trace_id, b.trace_id, "trace ids must survive");
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.outcome == OpOutcome::Ok, b.outcome == OpOutcome::Ok);
            assert_eq!(a.redirects, b.redirects);
            assert_eq!(a.server, b.server);
        }
        // Summaries computed from the decoded trace match the originals.
        assert_eq!(summarize(&original).row(), summarize(&decoded).row());
    }

    #[test]
    fn error_messages_roundtrip_with_escaping() {
        let mut r = sample().remove(0);
        r.outcome = OpOutcome::Error("disk \\ went away".into());
        let text = encode(std::iter::once(&r));
        assert!(!text.contains("disk \\ went"), "message must be one token: {text}");
        let back = decode(&text).unwrap();
        assert_eq!(back[0].outcome, OpOutcome::Error("disk \\ went away".into()));
    }

    #[test]
    fn v1_lines_still_decode() {
        let text = "v1 100 5100 ok 2 0 0 srv-3 /a/file with spaces.root\n\
                    v1 200 5000000200 error 0 1 0 - /b\n";
        let decoded = decode(text).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].path, "/a/file with spaces.root");
        assert_eq!(decoded[0].op_index, 0, "v1 op_index assigned by position");
        assert_eq!(decoded[0].trace_id, 0, "v1 never carried a trace id");
        assert_eq!(decoded[1].op_index, 1);
        assert_eq!(decoded[1].outcome, OpOutcome::Error("recorded".into()));
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        assert_eq!(decode("v9 1 2 ok 0 0 0 - /x").unwrap_err().line, 1);
        let two = "v1 1 2 ok 0 0 0 - /x\nv1 oops";
        assert_eq!(decode(two).unwrap_err().line, 2);
        assert!(decode("v1 1 2 banana 0 0 0 - /x").is_err());
        assert!(decode("v2 0 zz 1 2 ok 0 0 0 - /x").is_err(), "bad hex trace id");
    }

    #[test]
    fn blank_lines_tolerated() {
        let text = format!("\n{}\n\n", encode(&sample()));
        assert_eq!(decode(&text).unwrap().len(), 2);
    }
}
