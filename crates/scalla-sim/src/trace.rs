//! Operation-trace recording and replay.
//!
//! Experiments produce per-operation records; this module gives them a
//! stable, line-oriented text form so runs can be archived, diffed, and
//! re-summarized without re-running the simulation — the regression
//! workflow EXPERIMENTS.md is built on. One line per operation:
//!
//! ```text
//! v1 <start_ns> <end_ns> <outcome> <redirects> <waits> <refreshes> <server|-> <path>
//! ```
//!
//! The format is versioned, whitespace-delimited, and keeps the free-form
//! path last so it may contain anything but a newline.

use scalla_client::{OpOutcome, OpResult};
use scalla_util::Nanos;

/// Serializes records, one line each.
pub fn encode<'a>(results: impl IntoIterator<Item = &'a OpResult>) -> String {
    let mut out = String::new();
    for r in results {
        let outcome = match &r.outcome {
            OpOutcome::Ok => "ok",
            OpOutcome::NotFound => "notfound",
            OpOutcome::GaveUp => "gaveup",
            OpOutcome::Error(_) => "error",
        };
        out.push_str(&format!(
            "v1 {} {} {} {} {} {} {} {}\n",
            r.start.0,
            r.end.0,
            outcome,
            r.redirects,
            r.waits,
            r.refreshes,
            r.server.as_deref().unwrap_or("-"),
            r.path,
        ));
    }
    out
}

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, PartialEq, Eq)]
pub struct TraceError {
    /// Line the error occurred on.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

/// Parses a trace produced by [`encode`].
pub fn decode(text: &str) -> Result<Vec<OpResult>, TraceError> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let err = |reason: &str| TraceError { line: idx + 1, reason: reason.to_string() };
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.splitn(9, ' ');
        let version = it.next().ok_or_else(|| err("empty line"))?;
        if version != "v1" {
            return Err(err("unknown version"));
        }
        let start: u64 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad start"))?;
        let end: u64 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad end"))?;
        let outcome = match it.next().ok_or_else(|| err("missing outcome"))? {
            "ok" => OpOutcome::Ok,
            "notfound" => OpOutcome::NotFound,
            "gaveup" => OpOutcome::GaveUp,
            "error" => OpOutcome::Error("recorded".into()),
            _ => return Err(err("unknown outcome")),
        };
        let redirects: u32 =
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad redirects"))?;
        let waits: u32 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad waits"))?;
        let refreshes: u32 =
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad refreshes"))?;
        let server = match it.next().ok_or_else(|| err("missing server"))? {
            "-" => None,
            s => Some(s.to_string()),
        };
        let path = it.next().ok_or_else(|| err("missing path"))?.to_string();
        out.push(OpResult {
            op_index: out.len(),
            path,
            start: Nanos(start),
            end: Nanos(end),
            outcome,
            redirects,
            waits,
            refreshes,
            server,
            entries: Vec::new(),
            data: None,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::summarize;

    fn sample() -> Vec<OpResult> {
        vec![
            OpResult {
                op_index: 0,
                path: "/a/file with spaces.root".into(),
                start: Nanos(100),
                end: Nanos(5_100),
                outcome: OpOutcome::Ok,
                redirects: 2,
                waits: 0,
                refreshes: 0,
                server: Some("srv-3".into()),
                entries: Vec::new(),
                data: None,
            },
            OpResult {
                op_index: 1,
                path: "/b".into(),
                start: Nanos(200),
                end: Nanos(5_000_000_200),
                outcome: OpOutcome::NotFound,
                redirects: 0,
                waits: 1,
                refreshes: 0,
                server: None,
                entries: Vec::new(),
                data: None,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let original = sample();
        let text = encode(&original);
        let decoded = decode(&text).unwrap();
        assert_eq!(decoded.len(), 2);
        for (a, b) in original.iter().zip(&decoded) {
            assert_eq!(a.path, b.path, "paths with spaces must survive");
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.outcome == OpOutcome::Ok, b.outcome == OpOutcome::Ok);
            assert_eq!(a.redirects, b.redirects);
            assert_eq!(a.server, b.server);
        }
        // Summaries computed from the decoded trace match the originals.
        assert_eq!(summarize(&original).row(), summarize(&decoded).row());
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        assert_eq!(decode("v2 1 2 ok 0 0 0 - /x").unwrap_err().line, 1);
        let two = "v1 1 2 ok 0 0 0 - /x\nv1 oops";
        assert_eq!(decode(two).unwrap_err().line, 2);
        assert!(decode("v1 1 2 banana 0 0 0 - /x").is_err());
    }

    #[test]
    fn blank_lines_tolerated() {
        let text = format!("\n{}\n\n", encode(&sample()));
        assert_eq!(decode(&text).unwrap().len(), 2);
    }
}
