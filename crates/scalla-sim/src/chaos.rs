//! Deterministic chaos engine: seeded fault plans and runtime fault gates.
//!
//! The paper's design brief is to "recover gracefully from failures
//! expected when a massive amount of hardware is deployed" (§II-A) — so
//! failures must be *first-class, reproducible inputs*, not ad-hoc test
//! scaffolding. This module provides one fault vocabulary usable across
//! all three runtime tiers:
//!
//! * [`FaultPlan`] — a schedule of [`Fault`]s, either hand-written or
//!   generated from a seed + [`ChaosProfile`]. Equal seeds give equal
//!   plans; a failing soak prints its seed for exact replay.
//! * [`ChaosScheduler`] — drives a plan against the discrete-event
//!   [`SimNet`], interleaving fault application with event execution and
//!   recording what was applied when (for recovery-time measurement).
//! * [`FaultGates`] — the live/TCP counterpart: a cheap shared handle the
//!   runtimes consult per message. Disengaged (the default, and whenever
//!   every knob is back to neutral) it costs one relaxed atomic load.
//!   Decisions are deterministic: a seeded hash of the gate's roll
//!   counter, not a global RNG, so a given seed and message order always
//!   yields the same drops.
//! * [`poll_until`] / [`assert_poll`] — the shared deadline-poll helper
//!   the live-runtime tests use instead of hand-rolled busy-wait loops.
//!
//! Fault *application* is itself observable: the scheduler counts every
//! fault in `scalla_chaos_faults_total{fault=...}` and marks a
//! `partition_healed` incident when a partition closes, pairing with the
//! `peer_dead` / `peer_reconnected` incidents the recovery machinery
//! emits (egress writer state machine, cmsd health monitor).

use scalla_obs::Obs;
use scalla_proto::Addr;
use scalla_simnet::{LatencyModel, SimNet};
use scalla_util::{Nanos, SplitMix64};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One injectable fault (or its recovery counterpart).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Take a node down: its messages (both directions) drop, timers die.
    Crash(Addr),
    /// Bring a crashed node back; it restarts its state machine
    /// (`on_start`, i.e. re-login for servers).
    Restart(Addr),
    /// Bidirectional blackhole between two nodes.
    Partition(Addr, Addr),
    /// Remove the blackhole.
    Heal(Addr, Addr),
    /// Override one link's latency (delay spike).
    DelaySpike {
        /// One endpoint.
        a: Addr,
        /// Other endpoint.
        b: Addr,
        /// The spiked latency model.
        model: LatencyModel,
    },
    /// Drop a link latency override back to the default.
    DelayClear {
        /// One endpoint.
        a: Addr,
        /// Other endpoint.
        b: Addr,
    },
    /// Set the global message-loss rate (0 ends the burst).
    Loss {
        /// Per-mille of messages dropped.
        permille: u16,
    },
    /// Set the global duplication rate (0 ends the burst).
    Dup {
        /// Per-mille of messages delivered twice.
        permille: u16,
    },
    /// Set the bounded reorder jitter (ZERO restores FIFO).
    Reorder {
        /// Extra uniform per-message delay in `[0, jitter)`.
        jitter: Nanos,
    },
}

impl Fault {
    /// The `fault` label value for `scalla_chaos_faults_total`.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Crash(_) => "crash",
            Fault::Restart(_) => "restart",
            Fault::Partition(..) => "partition",
            Fault::Heal(..) => "heal",
            Fault::DelaySpike { .. } => "delay_spike",
            Fault::DelayClear { .. } => "delay_clear",
            Fault::Loss { .. } => "loss",
            Fault::Dup { .. } => "dup",
            Fault::Reorder { .. } => "reorder",
        }
    }

    /// Whether this fault *restores* service (a recovery point for the
    /// time-to-first-successful-op metric).
    pub fn is_recovery(&self) -> bool {
        matches!(self, Fault::Restart(_) | Fault::Heal(..) | Fault::Loss { permille: 0 })
    }
}

/// A fault scheduled at a virtual-clock instant.
#[derive(Clone, Copy, Debug)]
pub struct FaultEvent {
    /// When to apply the fault.
    pub at: Nanos,
    /// What to apply.
    pub fault: Fault,
}

/// The fault families the seeded generator knows how to compose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosProfile {
    /// Crash data servers and restart them after a bounded downtime.
    CrashRestart,
    /// Partition manager↔server links and heal them.
    PartitionHeal,
    /// Loss, duplication, and reorder bursts (always cleared before the
    /// horizon).
    LossBurst,
}

impl ChaosProfile {
    /// All profiles, for soak loops.
    pub const ALL: [ChaosProfile; 3] =
        [ChaosProfile::CrashRestart, ChaosProfile::PartitionHeal, ChaosProfile::LossBurst];

    /// Short name for logs and the machine-readable summary.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosProfile::CrashRestart => "crash_restart",
            ChaosProfile::PartitionHeal => "partition_heal",
            ChaosProfile::LossBurst => "loss_burst",
        }
    }
}

/// A seeded, time-sorted schedule of faults. Every disruptive fault the
/// generator emits is paired with its recovery before the horizon, so a
/// plan always ends with the cluster nominally whole.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The seed that produced this plan (0 for hand-written plans).
    pub seed: u64,
    /// Events in non-decreasing time order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the no-fault control run).
    pub fn empty() -> FaultPlan {
        FaultPlan { seed: 0, events: Vec::new() }
    }

    /// A hand-written plan; events are sorted by time.
    pub fn from_events(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at);
        FaultPlan { seed: 0, events }
    }

    /// Generates a seeded plan of `profile` faults against `targets`
    /// (data servers — crash / partition victims) and `spine` (managers /
    /// supervisors — the far end of partitions), with all activity inside
    /// `[start, horizon)` and every fault healed before `horizon`.
    pub fn random(
        seed: u64,
        profile: ChaosProfile,
        targets: &[Addr],
        spine: &[Addr],
        start: Nanos,
        horizon: Nanos,
    ) -> FaultPlan {
        assert!(horizon.0 > start.0, "horizon must lie after start");
        assert!(!targets.is_empty(), "need at least one fault target");
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5A11);
        let span = horizon.0 - start.0;
        // Recovery must land strictly before the horizon with slack for
        // the cluster to converge inside the plan window; bursts get
        // disjoint time slices so a node is never crashed twice at once.
        let active = span * 7 / 10;
        let mut events = Vec::new();
        let bursts = 1 + rng.next_below(2); // 1..=2 disruption cycles
        let slice = active / bursts;
        for burst in 0..bursts {
            let lo = start.0 + burst * slice;
            let at = Nanos(lo + rng.next_below(slice * 2 / 5));
            let dwell = 1 + rng.next_below(slice - (at.0 - lo) - 1);
            let end = Nanos(at.0 + dwell);
            match profile {
                ChaosProfile::CrashRestart => {
                    let t = targets[rng.next_below(targets.len() as u64) as usize];
                    events.push(FaultEvent { at, fault: Fault::Crash(t) });
                    events.push(FaultEvent { at: end, fault: Fault::Restart(t) });
                }
                ChaosProfile::PartitionHeal => {
                    let t = targets[rng.next_below(targets.len() as u64) as usize];
                    let s = if spine.is_empty() {
                        targets[rng.next_below(targets.len() as u64) as usize]
                    } else {
                        spine[rng.next_below(spine.len() as u64) as usize]
                    };
                    if s == t {
                        continue;
                    }
                    events.push(FaultEvent { at, fault: Fault::Partition(s, t) });
                    events.push(FaultEvent { at: end, fault: Fault::Heal(s, t) });
                }
                ChaosProfile::LossBurst => {
                    let permille = 50 + rng.next_below(250) as u16;
                    events.push(FaultEvent { at, fault: Fault::Loss { permille } });
                    events.push(FaultEvent { at: end, fault: Fault::Loss { permille: 0 } });
                    let dup = 50 + rng.next_below(200) as u16;
                    events.push(FaultEvent { at, fault: Fault::Dup { permille: dup } });
                    events.push(FaultEvent { at: end, fault: Fault::Dup { permille: 0 } });
                    let jitter = Nanos::from_micros(100 + rng.next_below(400));
                    events.push(FaultEvent { at, fault: Fault::Reorder { jitter } });
                    events.push(FaultEvent {
                        at: end,
                        fault: Fault::Reorder { jitter: Nanos::ZERO },
                    });
                }
            }
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }
}

/// Drives a [`FaultPlan`] against a [`SimNet`], interleaving simulated
/// execution with fault application and recording what it applied.
pub struct ChaosScheduler {
    plan: FaultPlan,
    next: usize,
    /// Faults actually applied, with their application times.
    pub applied: Vec<(Nanos, Fault)>,
    obs: Obs,
}

impl ChaosScheduler {
    /// A scheduler with no observability attached.
    pub fn new(plan: FaultPlan) -> ChaosScheduler {
        ChaosScheduler::with_obs(plan, Obs::disabled())
    }

    /// A scheduler counting faults into `obs` as it applies them.
    pub fn with_obs(plan: FaultPlan, obs: Obs) -> ChaosScheduler {
        ChaosScheduler { plan, next: 0, applied: Vec::new(), obs }
    }

    /// The plan's seed (for replay messages).
    pub fn seed(&self) -> u64 {
        self.plan.seed
    }

    /// Whether every scheduled fault has been applied.
    pub fn exhausted(&self) -> bool {
        self.next >= self.plan.events.len()
    }

    /// Runs the net up to `until`, applying every fault that falls due
    /// along the way at its exact virtual instant.
    pub fn run(&mut self, net: &mut SimNet, until: Nanos) {
        while self.next < self.plan.events.len() && self.plan.events[self.next].at <= until {
            let ev = self.plan.events[self.next];
            self.next += 1;
            net.run_until(ev.at);
            self.apply(net, ev.fault);
        }
        net.run_until(until);
    }

    /// Times at which service was restored (restart / heal / burst end) —
    /// the anchors for recovery-latency percentiles.
    pub fn recovery_points(&self) -> Vec<Nanos> {
        self.applied.iter().filter(|(_, f)| f.is_recovery()).map(|(at, _)| *at).collect()
    }

    fn apply(&mut self, net: &mut SimNet, fault: Fault) {
        match fault {
            Fault::Crash(a) => net.kill(a),
            Fault::Restart(a) => net.revive(a),
            Fault::Partition(a, b) => net.partition(a, b),
            Fault::Heal(a, b) => {
                net.heal(a, b);
                self.obs.incident("partition_healed");
            }
            Fault::DelaySpike { a, b, model } => net.set_link(a, b, model),
            Fault::DelayClear { a, b } => net.clear_link(a, b),
            Fault::Loss { permille } => net.set_loss_permille(permille),
            Fault::Dup { permille } => net.set_dup_permille(permille),
            Fault::Reorder { jitter } => net.set_reorder_jitter(jitter),
        }
        self.obs.count("scalla_chaos_faults_total", &[("fault", fault.label())], 1);
        self.applied.push((net.now(), fault));
    }
}

/// What a gate decided about one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateVerdict {
    /// Deliver normally.
    Deliver,
    /// Silently drop (crashed endpoint, partitioned pair, or loss roll).
    Drop,
    /// Deliver twice (duplication roll).
    Duplicate,
}

struct GatesInner {
    /// Fast path: false ⇒ every knob is neutral, skip all checks.
    engaged: AtomicBool,
    down: parking_lot::Mutex<HashSet<Addr>>,
    blocked: parking_lot::Mutex<HashSet<(Addr, Addr)>>,
    loss_permille: AtomicU64,
    dup_permille: AtomicU64,
    /// Decision counter: roll `n` hashes `(seed, n)`, so verdicts are a
    /// pure function of seed and message order.
    rolls: AtomicU64,
    seed: u64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
}

/// Shared fault-injection gate for the live and TCP runtimes.
///
/// The runtimes call [`FaultGates::verdict`] once per message (live: on
/// mailbox push; TCP: on protocol-thread send and inbound dispatch).
/// Cloning shares state — harness and runtime hold the same gates.
#[derive(Clone)]
pub struct FaultGates {
    inner: Arc<GatesInner>,
}

impl Default for FaultGates {
    fn default() -> FaultGates {
        FaultGates::new(0)
    }
}

impl FaultGates {
    /// Gates with all knobs neutral; `seed` fixes loss/dup decisions.
    pub fn new(seed: u64) -> FaultGates {
        FaultGates {
            inner: Arc::new(GatesInner {
                engaged: AtomicBool::new(false),
                down: parking_lot::Mutex::new(HashSet::new()),
                blocked: parking_lot::Mutex::new(HashSet::new()),
                loss_permille: AtomicU64::new(0),
                dup_permille: AtomicU64::new(0),
                rolls: AtomicU64::new(0),
                seed,
                dropped: AtomicU64::new(0),
                duplicated: AtomicU64::new(0),
            }),
        }
    }

    /// Marks `addr` crashed: all its traffic (both directions) drops.
    pub fn kill(&self, addr: Addr) {
        self.inner.down.lock().insert(addr);
        self.inner.engaged.store(true, Ordering::Release);
    }

    /// Clears the crash flag (the runtime separately restarts the node).
    pub fn revive(&self, addr: Addr) {
        self.inner.down.lock().remove(&addr);
        self.recompute_engaged();
    }

    /// Whether `addr` is currently gated down.
    pub fn is_down(&self, addr: Addr) -> bool {
        self.inner.engaged.load(Ordering::Acquire) && self.inner.down.lock().contains(&addr)
    }

    /// Blackholes both directions between `a` and `b`.
    pub fn partition(&self, a: Addr, b: Addr) {
        let mut blocked = self.inner.blocked.lock();
        blocked.insert((a, b));
        blocked.insert((b, a));
        drop(blocked);
        self.inner.engaged.store(true, Ordering::Release);
    }

    /// Removes the blackhole between `a` and `b`.
    pub fn heal(&self, a: Addr, b: Addr) {
        let mut blocked = self.inner.blocked.lock();
        blocked.remove(&(a, b));
        blocked.remove(&(b, a));
        drop(blocked);
        self.recompute_engaged();
    }

    /// Sets the per-mille probability of dropping a message.
    pub fn set_loss_permille(&self, permille: u16) {
        self.inner.loss_permille.store(permille.min(1000) as u64, Ordering::Relaxed);
        if permille > 0 {
            self.inner.engaged.store(true, Ordering::Release);
        } else {
            self.recompute_engaged();
        }
    }

    /// Sets the per-mille probability of duplicating a message.
    pub fn set_dup_permille(&self, permille: u16) {
        self.inner.dup_permille.store(permille.min(1000) as u64, Ordering::Relaxed);
        if permille > 0 {
            self.inner.engaged.store(true, Ordering::Release);
        } else {
            self.recompute_engaged();
        }
    }

    /// Decides the fate of one `from → to` message.
    #[inline]
    pub fn verdict(&self, from: Addr, to: Addr) -> GateVerdict {
        if !self.inner.engaged.load(Ordering::Acquire) {
            return GateVerdict::Deliver;
        }
        self.verdict_slow(from, to)
    }

    fn verdict_slow(&self, from: Addr, to: Addr) -> GateVerdict {
        {
            let down = self.inner.down.lock();
            if down.contains(&from) || down.contains(&to) {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                return GateVerdict::Drop;
            }
        }
        if self.inner.blocked.lock().contains(&(from, to)) {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return GateVerdict::Drop;
        }
        let loss = self.inner.loss_permille.load(Ordering::Relaxed);
        let dup = self.inner.dup_permille.load(Ordering::Relaxed);
        if loss > 0 || dup > 0 {
            let n = self.inner.rolls.fetch_add(1, Ordering::Relaxed);
            let mut r = SplitMix64::new(self.inner.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if loss > 0 && r.next_below(1000) < loss {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                return GateVerdict::Drop;
            }
            if dup > 0 && r.next_below(1000) < dup {
                self.inner.duplicated.fetch_add(1, Ordering::Relaxed);
                return GateVerdict::Duplicate;
            }
        }
        GateVerdict::Deliver
    }

    /// Messages the gates dropped so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Messages the gates duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.inner.duplicated.load(Ordering::Relaxed)
    }

    fn recompute_engaged(&self) {
        let engaged = !self.inner.down.lock().is_empty()
            || !self.inner.blocked.lock().is_empty()
            || self.inner.loss_permille.load(Ordering::Relaxed) > 0
            || self.inner.dup_permille.load(Ordering::Relaxed) > 0;
        self.inner.engaged.store(engaged, Ordering::Release);
    }
}

/// Polls `cond` every few milliseconds until it holds or `timeout`
/// elapses; returns whether it held. Replaces the hand-rolled busy-wait
/// deadline loops the live-runtime tests used to copy around.
pub fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return cond();
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Panics with `context` if `cond` does not hold within `timeout`.
#[track_caller]
pub fn assert_poll(timeout: Duration, context: &str, cond: impl FnMut() -> bool) {
    assert!(poll_until(timeout, cond), "condition not met within {timeout:?}: {context}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: u64) -> Vec<Addr> {
        (0..n).map(Addr).collect()
    }

    #[test]
    fn equal_seeds_give_equal_plans() {
        let targets = addrs(4);
        let spine = [Addr(9)];
        for profile in ChaosProfile::ALL {
            let a =
                FaultPlan::random(7, profile, &targets, &spine, Nanos::ZERO, Nanos::from_secs(10));
            let b =
                FaultPlan::random(7, profile, &targets, &spine, Nanos::ZERO, Nanos::from_secs(10));
            assert_eq!(format!("{:?}", a.events), format!("{:?}", b.events), "{profile:?}");
            let c =
                FaultPlan::random(8, profile, &targets, &spine, Nanos::ZERO, Nanos::from_secs(10));
            assert_ne!(format!("{:?}", a.events), format!("{:?}", c.events), "{profile:?}");
        }
    }

    #[test]
    fn every_disruption_is_paired_with_recovery_before_horizon() {
        let targets = addrs(5);
        let spine = [Addr(8)];
        let horizon = Nanos::from_secs(20);
        for profile in ChaosProfile::ALL {
            for seed in 1..50u64 {
                let plan = FaultPlan::random(seed, profile, &targets, &spine, Nanos::ZERO, horizon);
                let mut down: HashSet<Addr> = HashSet::new();
                let mut cut: HashSet<(Addr, Addr)> = HashSet::new();
                let (mut loss, mut dup, mut jitter) = (0u16, 0u16, Nanos::ZERO);
                for ev in &plan.events {
                    assert!(ev.at < horizon, "seed {seed}: fault past horizon");
                    match ev.fault {
                        Fault::Crash(a) => assert!(down.insert(a)),
                        Fault::Restart(a) => assert!(down.remove(&a)),
                        Fault::Partition(a, b) => {
                            cut.insert((a, b));
                        }
                        Fault::Heal(a, b) => {
                            assert!(cut.remove(&(a, b)));
                        }
                        Fault::Loss { permille } => loss = permille,
                        Fault::Dup { permille } => dup = permille,
                        Fault::Reorder { jitter: j } => jitter = j,
                        _ => {}
                    }
                }
                assert!(down.is_empty(), "seed {seed}: node left crashed");
                assert!(cut.is_empty(), "seed {seed}: partition left open");
                assert_eq!((loss, dup, jitter), (0, 0, Nanos::ZERO), "seed {seed}: burst left on");
            }
        }
    }

    #[test]
    fn gates_disengaged_always_deliver() {
        let g = FaultGates::new(1);
        for i in 0..100 {
            assert_eq!(g.verdict(Addr(i), Addr(i + 1)), GateVerdict::Deliver);
        }
        assert_eq!(g.dropped(), 0);
    }

    #[test]
    fn gates_drop_for_down_nodes_and_partitions() {
        let g = FaultGates::new(1);
        g.kill(Addr(1));
        assert_eq!(g.verdict(Addr(1), Addr(2)), GateVerdict::Drop);
        assert_eq!(g.verdict(Addr(2), Addr(1)), GateVerdict::Drop);
        assert_eq!(g.verdict(Addr(2), Addr(3)), GateVerdict::Deliver);
        g.revive(Addr(1));
        assert_eq!(g.verdict(Addr(1), Addr(2)), GateVerdict::Deliver);

        g.partition(Addr(4), Addr(5));
        assert_eq!(g.verdict(Addr(4), Addr(5)), GateVerdict::Drop);
        assert_eq!(g.verdict(Addr(5), Addr(4)), GateVerdict::Drop);
        assert_eq!(g.verdict(Addr(4), Addr(6)), GateVerdict::Deliver);
        g.heal(Addr(4), Addr(5));
        assert_eq!(g.verdict(Addr(5), Addr(4)), GateVerdict::Deliver);
        assert_eq!(g.dropped(), 4);
    }

    #[test]
    fn gates_loss_and_dup_are_seed_deterministic() {
        let run = |seed| {
            let g = FaultGates::new(seed);
            g.set_loss_permille(300);
            g.set_dup_permille(300);
            (0..1000).map(|i| g.verdict(Addr(0), Addr(i))).collect::<Vec<_>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same verdict sequence");
        assert_ne!(a, run(43), "different seed diverges");
        let drops = a.iter().filter(|v| **v == GateVerdict::Drop).count();
        let dups = a.iter().filter(|v| **v == GateVerdict::Duplicate).count();
        assert!((200..=400).contains(&drops), "drops {drops}");
        assert!((100..=350).contains(&dups), "dups {dups}");
        // Extremes: everything drops / everything duplicates.
        let g = FaultGates::new(1);
        g.set_loss_permille(1000);
        assert_eq!(g.verdict(Addr(0), Addr(1)), GateVerdict::Drop);
        g.set_loss_permille(0);
        g.set_dup_permille(1000);
        assert_eq!(g.verdict(Addr(0), Addr(1)), GateVerdict::Duplicate);
        g.set_dup_permille(0);
        assert_eq!(g.verdict(Addr(0), Addr(1)), GateVerdict::Deliver);
    }

    #[test]
    fn scheduler_applies_plan_against_simnet_and_records_recovery_points() {
        use scalla_simnet::{LatencyModel, NetCtx, Node};
        struct Idle;
        impl Node for Idle {
            fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: scalla_proto::Msg) {}
        }
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(10)), 3);
        let a = net.add_node(Box::new(Idle));
        let b = net.add_node(Box::new(Idle));
        net.start();
        let plan = FaultPlan::from_events(vec![
            FaultEvent { at: Nanos::from_millis(10), fault: Fault::Crash(a) },
            FaultEvent { at: Nanos::from_millis(30), fault: Fault::Restart(a) },
            FaultEvent { at: Nanos::from_millis(40), fault: Fault::Partition(a, b) },
            FaultEvent { at: Nanos::from_millis(60), fault: Fault::Heal(a, b) },
        ]);
        let obs = Obs::enabled();
        let mut sched = ChaosScheduler::with_obs(plan, obs.clone());
        sched.run(&mut net, Nanos::from_millis(100));
        assert!(sched.exhausted());
        assert_eq!(net.now(), Nanos::from_millis(100));
        assert_eq!(sched.applied.len(), 4);
        assert_eq!(sched.recovery_points(), vec![Nanos::from_millis(30), Nanos::from_millis(60)]);
        let text = obs.registry().prometheus_text();
        assert!(text.contains("scalla_chaos_faults_total{fault=\"crash\"} 1"), "{text}");
        assert!(text.contains("scalla_chaos_faults_total{fault=\"heal\"} 1"), "{text}");
        assert_eq!(obs.flight().incidents(), 1, "heal marks partition_healed");
    }

    #[test]
    fn poll_until_reports_conditions_and_respects_deadline() {
        let mut calls = 0;
        assert!(poll_until(Duration::from_millis(50), || {
            calls += 1;
            calls >= 3
        }));
        let t0 = Instant::now();
        assert!(!poll_until(Duration::from_millis(20), || false));
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_poll(Duration::from_millis(50), "instant condition", || true);
    }
}
