//! Live threaded runtime: real threads, real channels, real time.
//!
//! The discrete-event simulator proves the protocol shapes; this runtime
//! proves the *code* under genuine concurrency. Each node runs on its own
//! OS thread with a crossbeam channel as its mailbox and a local timer
//! heap; `NetCtx::now` reads the monotonic system clock. The same
//! [`Node`] implementations run unmodified.
//!
//! Message latency is whatever the channel costs (microseconds), which is
//! exactly the regime the paper's cmsd operates in on a LAN.

use crate::admin::AdminServer;
use crate::chaos::{FaultGates, GateVerdict};
use crate::metrics::NetCounters;
use crossbeam::channel::{bounded, Receiver, Sender};
use scalla_obs::Obs;
use scalla_proto::{Addr, Msg};
use scalla_simnet::{NetCtx, Node};
use scalla_util::{Clock, Nanos, SystemClock};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Envelope {
    Deliver {
        from: Addr,
        msg: Msg,
        trace: u64,
    },
    /// Re-runs `on_start` after a chaos revive (timers cleared first).
    Restart,
    Stop,
}

/// A node waiting to be spawned, with its mailbox receiver.
type PendingNode = (Box<dyn Node>, Receiver<Envelope>);

struct LiveCtx<'a> {
    me: Addr,
    clock: &'a Arc<SystemClock>,
    senders: &'a [Sender<Envelope>],
    drops: &'a [Arc<AtomicU64>],
    timers: &'a mut BinaryHeap<std::cmp::Reverse<(Nanos, u64)>>,
    rng_state: &'a mut u64,
    gates: &'a FaultGates,
    /// Trace id of the request being handled; sends inherit it, so a
    /// trace follows the causal chain across hops without any node
    /// knowing about tracing.
    trace: u64,
}

impl NetCtx for LiveCtx<'_> {
    fn now(&self) -> Nanos {
        self.clock.now()
    }
    fn me(&self) -> Addr {
        self.me
    }
    fn send(&mut self, to: Addr, msg: Msg) {
        // Chaos gate: crashed endpoints, partitioned pairs, and loss rolls
        // eat the message; a dup roll delivers it twice.
        let copies = match self.gates.verdict(self.me, to) {
            GateVerdict::Drop => return,
            GateVerdict::Deliver => 1,
            GateVerdict::Duplicate => 2,
        };
        if let Some(tx) = self.senders.get(to.0 as usize) {
            for _ in 0..copies {
                // A full or disconnected mailbox models a dead peer: drop,
                // but keep the books.
                let env = Envelope::Deliver { from: self.me, msg: msg.clone(), trace: self.trace };
                if tx.try_send(env).is_err() {
                    self.drops[to.0 as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    fn set_timer(&mut self, delay: Nanos, token: u64) {
        self.timers.push(std::cmp::Reverse((self.clock.now() + delay, token)));
    }
    fn rand_u64(&mut self) -> u64 {
        // Inline SplitMix64 step over thread-local state.
        *self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }
    fn trace(&self) -> u64 {
        self.trace
    }
}

/// A running live network.
pub struct LiveNet {
    clock: Arc<SystemClock>,
    senders: Vec<Sender<Envelope>>,
    drops: Vec<Arc<AtomicU64>>,
    pending: Vec<Option<PendingNode>>,
    handles: Vec<Option<JoinHandle<Box<dyn Node>>>>,
    started: bool,
    admin: Option<AdminServer>,
    gates: FaultGates,
}

impl LiveNet {
    /// Creates an empty live network.
    pub fn new() -> LiveNet {
        LiveNet {
            clock: Arc::new(SystemClock::new()),
            senders: Vec::new(),
            drops: Vec::new(),
            pending: Vec::new(),
            handles: Vec::new(),
            started: false,
            admin: None,
            gates: FaultGates::new(0),
        }
    }

    /// The chaos gates governing this net's mailboxes (cloning shares
    /// state, so a harness can drive faults while the net runs).
    pub fn gates(&self) -> FaultGates {
        self.gates.clone()
    }

    /// Replaces the chaos gates (call before [`LiveNet::start`] to pick a
    /// fault seed).
    pub fn set_gates(&mut self, gates: FaultGates) {
        assert!(!self.started, "set_gates before start");
        self.gates = gates;
    }

    /// Gates a node down: its messages (both directions) drop and its
    /// timers stop firing until [`LiveNet::revive`].
    pub fn kill(&self, addr: Addr) {
        self.gates.kill(addr);
    }

    /// Clears the down gate and restarts the node's state machine
    /// (`on_start` re-runs on its own thread, timers cleared first).
    pub fn revive(&self, addr: Addr) {
        self.gates.revive(addr);
        if let Some(tx) = self.senders.get(addr.0 as usize) {
            let _ = tx.try_send(Envelope::Restart);
        }
    }

    /// Starts the admin endpoint for this net, mirroring the runtime's
    /// delivery counters into the registry at every scrape. Returns the
    /// endpoint address. Call at most once, after all nodes are added
    /// (the counter mirror snapshots the node set).
    pub fn serve_admin(&mut self, obs: Obs) -> std::io::Result<std::net::SocketAddr> {
        assert!(obs.is_enabled(), "serve_admin needs an enabled Obs");
        assert!(self.admin.is_none(), "serve_admin once per net");
        let drops: Vec<Arc<AtomicU64>> = self.drops.clone();
        obs.registry().add_collector(Box::new(move |reg| {
            let counters = NetCounters {
                mailbox_drops: drops.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                egress: Default::default(),
            };
            counters.export_into(reg);
        }));
        let server = AdminServer::spawn(obs)?;
        let addr = server.addr();
        self.admin = Some(server);
        Ok(addr)
    }

    /// The shared clock (hand it to `NameCache` etc.).
    pub fn clock(&self) -> Arc<SystemClock> {
        self.clock.clone()
    }

    /// Registers a node before [`LiveNet::start`].
    pub fn add_node(&mut self, node: Box<dyn Node>) -> Addr {
        assert!(!self.started, "add_node before start");
        let (tx, rx) = bounded::<Envelope>(65_536);
        let addr = Addr(self.senders.len() as u64);
        self.senders.push(tx);
        self.drops.push(Arc::new(AtomicU64::new(0)));
        self.pending.push(Some((node, rx)));
        self.handles.push(None);
        addr
    }

    /// Spawns every node thread and runs `on_start` on each.
    pub fn start(&mut self) {
        assert!(!self.started, "start once");
        self.started = true;
        let senders = self.senders.clone();
        let all_drops = self.drops.clone();
        for (i, slot) in self.pending.iter_mut().enumerate() {
            let (mut node, rx) = slot.take().expect("un-started node");
            let me = Addr(i as u64);
            let clock = self.clock.clone();
            let senders = senders.clone();
            let drops = all_drops.clone();
            let gates = self.gates.clone();
            let handle = std::thread::Builder::new()
                .name(format!("scalla-node-{i}"))
                .spawn(move || {
                    let mut timers: BinaryHeap<std::cmp::Reverse<(Nanos, u64)>> = BinaryHeap::new();
                    let mut rng_state = 0x5EED_0000 ^ me.0;
                    {
                        let mut ctx = LiveCtx {
                            me,
                            clock: &clock,
                            senders: &senders,
                            drops: &drops,
                            timers: &mut timers,
                            rng_state: &mut rng_state,
                            gates: &gates,
                            trace: 0,
                        };
                        node.on_start(&mut ctx);
                    }
                    loop {
                        // Fire due timers.
                        let now = clock.now();
                        let mut due = Vec::new();
                        while let Some(&std::cmp::Reverse((at, token))) = timers.peek() {
                            if at <= now {
                                timers.pop();
                                due.push(token);
                            } else {
                                break;
                            }
                        }
                        for token in due {
                            if gates.is_down(me) {
                                continue; // a crashed node's timers don't fire
                            }
                            let mut ctx = LiveCtx {
                                me,
                                clock: &clock,
                                senders: &senders,
                                drops: &drops,
                                timers: &mut timers,
                                rng_state: &mut rng_state,
                                gates: &gates,
                                trace: 0,
                            };
                            node.on_timer(&mut ctx, token);
                        }
                        // Wait for the next message or timer deadline.
                        let wait = timers
                            .peek()
                            .map(|&std::cmp::Reverse((at, _))| {
                                std::time::Duration::from_nanos(at.since(clock.now()).0)
                            })
                            .unwrap_or(std::time::Duration::from_millis(50));
                        match rx.recv_timeout(wait) {
                            Ok(Envelope::Deliver { from, msg, trace }) => {
                                if gates.is_down(me) {
                                    continue; // a crashed node hears nothing
                                }
                                let mut ctx = LiveCtx {
                                    me,
                                    clock: &clock,
                                    senders: &senders,
                                    drops: &drops,
                                    timers: &mut timers,
                                    rng_state: &mut rng_state,
                                    gates: &gates,
                                    trace,
                                };
                                node.on_message(&mut ctx, from, msg);
                            }
                            Ok(Envelope::Restart) => {
                                timers.clear();
                                let mut ctx = LiveCtx {
                                    me,
                                    clock: &clock,
                                    senders: &senders,
                                    drops: &drops,
                                    timers: &mut timers,
                                    rng_state: &mut rng_state,
                                    gates: &gates,
                                    trace: 0,
                                };
                                node.on_start(&mut ctx);
                            }
                            Ok(Envelope::Stop) => break,
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    node
                })
                .expect("spawn node thread");
            self.handles[i] = Some(handle);
        }
    }

    /// Stops every node and returns them (for result harvesting), in
    /// address order.
    pub fn shutdown(mut self) -> Vec<Box<dyn Node>> {
        if let Some(admin) = self.admin.take() {
            admin.shutdown();
        }
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles
            .iter_mut()
            .map(|h| h.take().expect("started").join().expect("node thread panicked"))
            .collect()
    }

    /// Sends a message into the network from a synthetic external address.
    pub fn inject(&self, from: Addr, to: Addr, msg: Msg) {
        if let Some(tx) = self.senders.get(to.0 as usize) {
            if tx.try_send(Envelope::Deliver { from, msg, trace: 0 }).is_err() {
                self.drops[to.0 as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Delivery counters (mailbox overflow drops per node; this runtime
    /// has no wire, so the egress section stays zero).
    pub fn counters(&self) -> NetCounters {
        NetCounters {
            mailbox_drops: self.drops.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            egress: Default::default(),
        }
    }
}

impl Default for LiveNet {
    fn default() -> LiveNet {
        LiveNet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::assert_poll;
    use scalla_proto::{ClientMsg, ServerMsg};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    struct Echo;
    impl Node for Echo {
        fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
            if matches!(msg, Msg::Client(ClientMsg::Open { .. })) {
                ctx.send(from, ServerMsg::OpenOk { handle: 1 }.into());
            }
        }
    }

    struct Counter(Arc<AtomicU64>);
    impl Node for Counter {
        fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    struct TimerOnce(Arc<AtomicU64>);
    impl Node for TimerOnce {
        fn on_start(&mut self, ctx: &mut dyn NetCtx) {
            ctx.set_timer(Nanos::from_millis(20), 7);
        }
        fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {}
        fn on_timer(&mut self, _: &mut dyn NetCtx, token: u64) {
            assert_eq!(token, 7);
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn threads_exchange_messages() {
        let mut net = LiveNet::new();
        let count = Arc::new(AtomicU64::new(0));
        let echo = net.add_node(Box::new(Echo));
        let sink = net.add_node(Box::new(Counter(count.clone())));
        net.start();
        for _ in 0..100 {
            net.inject(
                sink,
                echo,
                ClientMsg::Open { path: "/f".into(), write: false, refresh: false, avoid: None }
                    .into(),
            );
        }
        assert_poll(Duration::from_secs(5), "all 100 replies land", || {
            count.load(Ordering::SeqCst) == 100
        });
        net.shutdown();
    }

    #[test]
    fn timers_fire_in_real_time() {
        let mut net = LiveNet::new();
        let fired = Arc::new(AtomicU64::new(0));
        net.add_node(Box::new(TimerOnce(fired.clone())));
        net.start();
        assert_poll(Duration::from_secs(5), "timer fires", || fired.load(Ordering::SeqCst) == 1);
        net.shutdown();
    }

    #[test]
    fn mailbox_overflow_is_counted() {
        let mut net = LiveNet::new();
        let a = net.add_node(Box::new(Echo));
        // Not started: nothing drains the mailbox, so the bound is reached
        // and the overflow past it is counted, not silently discarded.
        for _ in 0..65_537 {
            net.inject(Addr(99), a, ServerMsg::CloseOk.into());
        }
        assert_eq!(net.counters().mailbox_drops[a.0 as usize], 1);
        assert_eq!(net.counters().total_mailbox_drops(), 1);
        net.start();
        net.shutdown();
    }

    #[test]
    fn shutdown_returns_nodes() {
        let mut net = LiveNet::new();
        net.add_node(Box::new(Echo));
        net.add_node(Box::new(Counter(Arc::new(AtomicU64::new(0)))));
        net.start();
        let nodes = net.shutdown();
        assert_eq!(nodes.len(), 2);
    }

    /// Mints a trace, opens against a peer, and records the trace id the
    /// reply arrives under.
    struct TraceMinter {
        peer: Addr,
        reply_trace: Arc<AtomicU64>,
    }
    impl Node for TraceMinter {
        fn on_start(&mut self, ctx: &mut dyn NetCtx) {
            ctx.set_trace(0xABCD);
            ctx.send(
                self.peer,
                ClientMsg::Open { path: "/f".into(), write: false, refresh: false, avoid: None }
                    .into(),
            );
        }
        fn on_message(&mut self, ctx: &mut dyn NetCtx, _: Addr, _: Msg) {
            self.reply_trace.store(ctx.trace(), Ordering::SeqCst);
        }
    }

    #[test]
    fn traces_propagate_across_hops() {
        // Echo never touches set_trace, yet its reply carries the minted
        // id: sends inherit the handling context's trace, so the id rides
        // the causal chain minter -> echo -> minter untouched.
        let mut net = LiveNet::new();
        let seen = Arc::new(AtomicU64::new(0));
        let echo = net.add_node(Box::new(Echo));
        net.add_node(Box::new(TraceMinter { peer: echo, reply_trace: seen.clone() }));
        net.start();
        assert_poll(Duration::from_secs(5), "minted trace rides the reply", || {
            seen.load(Ordering::SeqCst) == 0xABCD
        });
        net.shutdown();
    }

    #[test]
    fn killed_node_is_deaf_until_revive_restarts_it() {
        // A started node that replies to everything; kill gates it off,
        // revive re-runs on_start (observable as a fresh timer arming).
        let mut net = LiveNet::new();
        let count = Arc::new(AtomicU64::new(0));
        let starts = Arc::new(AtomicU64::new(0));
        struct Startful(Arc<AtomicU64>, Arc<AtomicU64>);
        impl Node for Startful {
            fn on_start(&mut self, _: &mut dyn NetCtx) {
                self.1.fetch_add(1, Ordering::SeqCst);
            }
            fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let a = net.add_node(Box::new(Startful(count.clone(), starts.clone())));
        net.start();
        assert_poll(Duration::from_secs(5), "initial on_start ran", || {
            starts.load(Ordering::SeqCst) == 1
        });
        net.kill(a);
        net.inject(Addr(99), a, ServerMsg::CloseOk.into());
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(count.load(Ordering::SeqCst), 0, "down node hears nothing");
        net.revive(a);
        assert_poll(Duration::from_secs(5), "revive re-runs on_start", || {
            starts.load(Ordering::SeqCst) == 2
        });
        net.inject(Addr(99), a, ServerMsg::CloseOk.into());
        assert_poll(Duration::from_secs(5), "revived node hears again", || {
            count.load(Ordering::SeqCst) == 1
        });
        net.shutdown();
    }

    #[test]
    fn admin_endpoint_serves_runtime_counters() {
        let mut net = LiveNet::new();
        net.add_node(Box::new(Echo));
        let obs = Obs::enabled();
        let addr = net.serve_admin(obs).unwrap();
        net.start();
        let metrics = crate::admin::scrape(addr, "/metrics").unwrap();
        assert!(metrics.contains("scalla_mailbox_drops_total 0"), "{metrics}");
        net.shutdown();
        assert!(crate::admin::scrape(addr, "/metrics").is_err(), "admin stops with the net");
    }
}
