//! Aggregation of client records into experiment-grade summaries.

use scalla_client::{OpOutcome, OpResult};
use scalla_util::{Histogram, Nanos};

/// A latency distribution plus outcome counts.
pub struct LatencySummary {
    /// Latency histogram over successful operations.
    pub hist: Histogram,
    /// Completed OK.
    pub ok: u64,
    /// NotFound verdicts.
    pub not_found: u64,
    /// Errors and give-ups.
    pub failed: u64,
    /// Total redirects across OK operations.
    pub redirects: u64,
    /// Total waits across OK operations.
    pub waits: u64,
    /// Total refresh recoveries.
    pub refreshes: u64,
}

impl LatencySummary {
    /// Mean latency of successful operations.
    pub fn mean(&self) -> Nanos {
        self.hist.mean()
    }

    /// Mean redirects per successful operation.
    pub fn mean_redirects(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.redirects as f64 / self.ok as f64
        }
    }

    /// One-line table row.
    pub fn row(&self) -> String {
        format!(
            "ok={} nf={} fail={} mean={} p50={} p99={} hops/op={:.2} waits={} refreshes={}",
            self.ok,
            self.not_found,
            self.failed,
            self.hist.mean(),
            self.hist.median(),
            self.hist.p99(),
            self.mean_redirects(),
            self.waits,
            self.refreshes,
        )
    }
}

/// Summarizes a set of operation records, skipping `<sleep>` entries.
pub fn summarize<'a>(results: impl IntoIterator<Item = &'a OpResult>) -> LatencySummary {
    let mut s = LatencySummary {
        hist: Histogram::new(),
        ok: 0,
        not_found: 0,
        failed: 0,
        redirects: 0,
        waits: 0,
        refreshes: 0,
    };
    for r in results {
        if r.path == "<sleep>" {
            continue;
        }
        match r.outcome {
            OpOutcome::Ok => {
                s.ok += 1;
                s.hist.record(r.latency());
                s.redirects += u64::from(r.redirects);
                s.waits += u64::from(r.waits);
            }
            OpOutcome::NotFound => s.not_found += 1,
            OpOutcome::Error(_) | OpOutcome::GaveUp => s.failed += 1,
        }
        s.refreshes += u64::from(r.refreshes);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(outcome: OpOutcome, us: u64, redirects: u32) -> OpResult {
        OpResult {
            op_index: 0,
            path: "/f".into(),
            start: Nanos::ZERO,
            end: Nanos::from_micros(us),
            outcome,
            redirects,
            waits: 0,
            refreshes: 0,
            server: None,
            entries: Vec::new(),
            data: None,
        }
    }

    #[test]
    fn summary_counts_and_means() {
        let rs = vec![
            result(OpOutcome::Ok, 100, 1),
            result(OpOutcome::Ok, 300, 3),
            result(OpOutcome::NotFound, 5_000_000, 0),
            result(OpOutcome::GaveUp, 0, 0),
        ];
        let s = summarize(&rs);
        assert_eq!(s.ok, 2);
        assert_eq!(s.not_found, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.mean(), Nanos::from_micros(200));
        assert!((s.mean_redirects() - 2.0).abs() < 1e-9);
        assert!(s.row().contains("ok=2"));
    }

    #[test]
    fn sleeps_are_excluded() {
        let mut r = result(OpOutcome::Ok, 1_000_000, 0);
        r.path = "<sleep>".into();
        let s = summarize(&[r]);
        assert_eq!(s.ok, 0);
        assert_eq!(s.hist.count(), 0);
    }
}
