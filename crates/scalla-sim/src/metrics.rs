//! Aggregation of client records into experiment-grade summaries, plus
//! runtime wire/queue counters for the live and TCP tiers.

use scalla_client::{OpOutcome, OpResult};
use scalla_util::{Histogram, Nanos};

/// Egress-pipeline counters for a real-socket runtime.
///
/// `frames / writes` is the coalescing ratio: how many frames the writer
/// threads shipped per vectored-write syscall. Drops are explicit — the
/// runtime never blocks a protocol thread to avoid them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EgressCounters {
    /// Frames fully written to a socket.
    pub frames: u64,
    /// Vectored write syscalls issued.
    pub writes: u64,
    /// Frames dropped because a peer's outbound queue was full.
    pub queue_drops: u64,
    /// Frames dropped because the peer was unreachable or stalled past
    /// the write budget.
    pub conn_drops: u64,
    /// Encode buffers served from the reuse pool.
    pub pool_hits: u64,
    /// Encode buffers that had to be freshly allocated.
    pub pool_misses: u64,
    /// Alive→dead peer transitions detected by writer threads.
    pub peer_deaths: u64,
    /// Dead→alive peer transitions (successful backoff probes).
    pub peer_reconnects: u64,
}

impl EgressCounters {
    /// Frames shipped per write syscall (0 when nothing was written).
    pub fn frames_per_write(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.frames as f64 / self.writes as f64
        }
    }

    /// All frames dropped by the egress pipeline.
    pub fn total_drops(&self) -> u64 {
        self.queue_drops + self.conn_drops
    }

    /// Fraction of encode buffers served from the reuse pool
    /// (0 when no buffer was ever requested).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

/// Per-runtime delivery counters: inbound mailbox overflow per node plus
/// the egress pipeline totals (zero for runtimes without a wire).
#[derive(Clone, Debug, Default)]
pub struct NetCounters {
    /// Frames dropped at each node's inbound mailbox, indexed by address.
    pub mailbox_drops: Vec<u64>,
    /// Outbound pipeline counters (all nodes aggregated).
    pub egress: EgressCounters,
}

impl NetCounters {
    /// Total inbound mailbox drops across all nodes.
    pub fn total_mailbox_drops(&self) -> u64 {
        self.mailbox_drops.iter().sum()
    }

    /// One-line diagnostics row.
    pub fn row(&self) -> String {
        format!(
            "frames={} writes={} frames/write={:.2} queue_drops={} conn_drops={} \
             mailbox_drops={} pool_hit_rate={:.2} peer_deaths={} peer_reconnects={}",
            self.egress.frames,
            self.egress.writes,
            self.egress.frames_per_write(),
            self.egress.queue_drops,
            self.egress.conn_drops,
            self.total_mailbox_drops(),
            self.egress.pool_hit_rate(),
            self.egress.peer_deaths,
            self.egress.peer_reconnects,
        )
    }

    /// Mirrors these counters into an observability [`Registry`]: absolute
    /// values go through `Counter::set`, so re-exporting a fresh snapshot
    /// at every scrape stays idempotent.
    pub fn export_into(&self, reg: &scalla_obs::Registry) {
        let e = &self.egress;
        for (name, value) in [
            ("scalla_egress_frames_total", e.frames),
            ("scalla_egress_writes_total", e.writes),
            ("scalla_egress_queue_drops_total", e.queue_drops),
            ("scalla_egress_conn_drops_total", e.conn_drops),
            ("scalla_egress_pool_hits_total", e.pool_hits),
            ("scalla_egress_pool_misses_total", e.pool_misses),
            ("scalla_egress_peer_deaths_total", e.peer_deaths),
            ("scalla_egress_peer_reconnects_total", e.peer_reconnects),
            ("scalla_mailbox_drops_total", self.total_mailbox_drops()),
        ] {
            reg.counter(name, &[]).set(value);
        }
        reg.gauge("scalla_egress_pool_hit_rate_permille", &[])
            .set((e.pool_hit_rate() * 1000.0) as u64);
    }
}

/// A latency distribution plus outcome counts.
pub struct LatencySummary {
    /// Latency histogram over successful operations.
    pub hist: Histogram,
    /// Completed OK.
    pub ok: u64,
    /// NotFound verdicts.
    pub not_found: u64,
    /// Errors and give-ups.
    pub failed: u64,
    /// Total redirects across OK operations.
    pub redirects: u64,
    /// Total waits across OK operations.
    pub waits: u64,
    /// Total refresh recoveries.
    pub refreshes: u64,
}

impl LatencySummary {
    /// Mean latency of successful operations.
    pub fn mean(&self) -> Nanos {
        self.hist.mean()
    }

    /// Mean redirects per successful operation.
    pub fn mean_redirects(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.redirects as f64 / self.ok as f64
        }
    }

    /// One-line table row.
    pub fn row(&self) -> String {
        format!(
            "ok={} nf={} fail={} mean={} p50={} p99={} hops/op={:.2} waits={} refreshes={}",
            self.ok,
            self.not_found,
            self.failed,
            self.hist.mean(),
            self.hist.median(),
            self.hist.p99(),
            self.mean_redirects(),
            self.waits,
            self.refreshes,
        )
    }
}

/// Summarizes a set of operation records, skipping `<sleep>` entries.
pub fn summarize<'a>(results: impl IntoIterator<Item = &'a OpResult>) -> LatencySummary {
    let mut s = LatencySummary {
        hist: Histogram::new(),
        ok: 0,
        not_found: 0,
        failed: 0,
        redirects: 0,
        waits: 0,
        refreshes: 0,
    };
    for r in results {
        if r.path == "<sleep>" {
            continue;
        }
        match r.outcome {
            OpOutcome::Ok => {
                s.ok += 1;
                s.hist.record(r.latency());
                s.redirects += u64::from(r.redirects);
                s.waits += u64::from(r.waits);
            }
            OpOutcome::NotFound => s.not_found += 1,
            OpOutcome::Error(_) | OpOutcome::GaveUp => s.failed += 1,
        }
        s.refreshes += u64::from(r.refreshes);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(outcome: OpOutcome, us: u64, redirects: u32) -> OpResult {
        OpResult {
            op_index: 0,
            path: "/f".into(),
            start: Nanos::ZERO,
            end: Nanos::from_micros(us),
            outcome,
            redirects,
            waits: 0,
            refreshes: 0,
            server: None,
            trace_id: 0,
            entries: Vec::new(),
            data: None,
        }
    }

    #[test]
    fn summary_counts_and_means() {
        let rs = vec![
            result(OpOutcome::Ok, 100, 1),
            result(OpOutcome::Ok, 300, 3),
            result(OpOutcome::NotFound, 5_000_000, 0),
            result(OpOutcome::GaveUp, 0, 0),
        ];
        let s = summarize(&rs);
        assert_eq!(s.ok, 2);
        assert_eq!(s.not_found, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.mean(), Nanos::from_micros(200));
        assert!((s.mean_redirects() - 2.0).abs() < 1e-9);
        assert!(s.row().contains("ok=2"));
    }

    #[test]
    fn net_counters_summarize_ratio_and_drops() {
        let c = NetCounters {
            mailbox_drops: vec![0, 3, 1],
            egress: EgressCounters {
                frames: 120,
                writes: 30,
                queue_drops: 2,
                conn_drops: 5,
                pool_hits: 90,
                pool_misses: 10,
                peer_deaths: 2,
                peer_reconnects: 2,
            },
        };
        assert_eq!(c.total_mailbox_drops(), 4);
        assert_eq!(c.egress.total_drops(), 7);
        assert!((c.egress.frames_per_write() - 4.0).abs() < 1e-9);
        let row = c.row();
        assert!(row.contains("frames/write=4.00"), "{row}");
        assert!(row.contains("mailbox_drops=4"), "{row}");
        assert!((c.egress.pool_hit_rate() - 0.9).abs() < 1e-9);
        // Degenerate case: nothing written yet.
        assert_eq!(EgressCounters::default().frames_per_write(), 0.0);
    }

    #[test]
    fn row_survives_all_zero_pool_counters() {
        // Frames moved but the buffer pool was never touched: the hit-rate
        // denominator is zero and must not divide.
        let c = NetCounters {
            mailbox_drops: vec![0, 0],
            egress: EgressCounters { frames: 10, writes: 10, ..Default::default() },
        };
        assert_eq!(c.egress.pool_hit_rate(), 0.0);
        let row = c.row();
        assert!(row.contains("pool_hit_rate=0.00"), "{row}");
        assert!(row.contains("frames=10"), "{row}");
    }

    #[test]
    fn export_into_mirrors_and_is_idempotent() {
        let reg = scalla_obs::Registry::new();
        let mut c = NetCounters {
            mailbox_drops: vec![1, 2],
            egress: EgressCounters {
                frames: 40,
                writes: 10,
                pool_hits: 3,
                pool_misses: 1,
                ..Default::default()
            },
        };
        c.export_into(&reg);
        c.egress.frames = 50;
        c.export_into(&reg); // set() semantics: latest snapshot wins
        let text = reg.prometheus_text();
        assert!(text.contains("scalla_egress_frames_total 50"), "{text}");
        assert!(text.contains("scalla_mailbox_drops_total 3"), "{text}");
        assert!(text.contains("scalla_egress_pool_hit_rate_permille 750"), "{text}");
    }

    #[test]
    fn sleeps_are_excluded() {
        let mut r = result(OpOutcome::Ok, 1_000_000, 0);
        r.path = "<sleep>".into();
        let s = summarize(&[r]);
        assert_eq!(s.ok, 0);
        assert_eq!(s.hist.count(), 0);
    }
}
