//! Whole-cluster harness.
//!
//! This crate assembles complete Scalla clusters — manager(s), supervisor
//! levels, data servers, clients — over either runtime:
//!
//! * [`cluster`] — builds a 64-ary (or any-fanout) tree from a
//!   [`TreeSpec`](scalla_cluster::TreeSpec) on the deterministic simulated
//!   network, seeds files, attaches scripted clients, and harvests their
//!   latency records.
//! * [`live`] — the live threaded runtime: one OS thread per node,
//!   crossbeam channels as links, real wall-clock timers. The very same
//!   [`Node`](scalla_simnet::Node) state machines run here, exercising the
//!   real locking and queueing code paths under true concurrency.
//! * [`tcp`] — the real-socket runtime: the same nodes again, but every
//!   message crosses a localhost `TcpStream` through the binary wire
//!   codec and frame decoder. Sends never block the protocol thread:
//!   each peer gets a bounded egress queue drained by a writer thread
//!   that coalesces bursts into single vectored writes (see DESIGN.md
//!   §4, "Runtime tiers"); drops at any layer are counted and surfaced
//!   via [`NetCounters`](metrics::NetCounters).
//! * [`workload`] — synthetic workload generators shaped like the paper's
//!   motivating load: BaBar/ROOT analysis jobs performing "several
//!   meta-data operations on dozens of files per job" (§II-A), bulk
//!   transfers, and create-heavy production.
//! * [`metrics`] — aggregation of client records into latency
//!   distributions for the experiment tables.
//! * [`admin`] — a per-net admin endpoint (one listener thread) serving
//!   `/metrics`, `/stats`, and `/flight` over a line protocol, backed by
//!   the shared [`Obs`](scalla_obs::Obs) registry and flight recorder.

pub mod admin;
pub mod chaos;
pub mod cluster;
mod egress;
pub mod live;
pub mod metrics;
pub mod tcp;
pub mod trace;
pub mod workload;

pub use admin::scrape;
pub use chaos::{
    assert_poll, poll_until, ChaosProfile, ChaosScheduler, Fault, FaultEvent, FaultGates,
    FaultPlan, GateVerdict,
};
pub use cluster::{ClusterConfig, SimCluster};
pub use egress::EgressTuning;
pub use live::LiveNet;
pub use metrics::{summarize, EgressCounters, LatencySummary, NetCounters};
pub use tcp::TcpNet;
pub use workload::{analysis_job, make_catalog, WorkloadConfig, ZipfSampler};
