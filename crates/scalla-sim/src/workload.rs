//! Synthetic workloads shaped like the paper's motivating load.
//!
//! §II-A: the BaBar/ROOT framework "would perform several meta-data
//! operations on dozens of files per job prior to commencing analysis",
//! with "a thousand or more simultaneous analysis jobs" driving "thousands
//! of transactions per second". The generators here produce client scripts
//! with that shape; the catalog and placement helpers distribute the files
//! across servers with configurable replication.

use bytes::Bytes;
use scalla_client::ClientOp;
use scalla_util::{Nanos, SplitMix64};

/// Parameters for an analysis-job script.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Files touched per job ("dozens", §II-A).
    pub files_per_job: usize,
    /// Meta-data operations (stats) per file before the open.
    pub metadata_ops_per_file: usize,
    /// Pause between operations.
    pub think: Nanos,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig { files_per_job: 24, metadata_ops_per_file: 2, think: Nanos::ZERO, seed: 1 }
    }
}

/// Builds a file catalog of `n` paths shaped like HEP run data:
/// `/{prefix}/run{r}/events-{k}.root`.
pub fn make_catalog(n: usize, prefix: &str) -> Vec<String> {
    (0..n).map(|i| format!("/{prefix}/run{:04}/events-{:06}.root", i / 100, i % 100)).collect()
}

/// Generates one analysis job: for each of `files_per_job` files drawn from
/// the catalog, a few stats followed by an open-read.
pub fn analysis_job(catalog: &[String], cfg: &WorkloadConfig) -> Vec<ClientOp> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut ops = Vec::new();
    for _ in 0..cfg.files_per_job {
        let path = catalog[rng.next_below(catalog.len() as u64) as usize].clone();
        for _ in 0..cfg.metadata_ops_per_file {
            ops.push(ClientOp::Stat { path: path.clone() });
            if cfg.think.0 > 0 {
                ops.push(ClientOp::Sleep { duration: cfg.think });
            }
        }
        ops.push(ClientOp::OpenRead { path, len: 4096 });
        if cfg.think.0 > 0 {
            ops.push(ClientOp::Sleep { duration: cfg.think });
        }
    }
    ops
}

/// Generates a bulk-transfer job: prepare the whole list up front (§III-B2)
/// then read each file.
pub fn bulk_transfer_job(paths: &[String]) -> Vec<ClientOp> {
    let mut ops = vec![ClientOp::Prepare { paths: paths.to_vec() }];
    for p in paths {
        ops.push(ClientOp::OpenRead { path: p.clone(), len: 1 << 16 });
    }
    ops
}

/// Generates a production job creating `n` output files.
pub fn production_job(prefix: &str, n: usize, payload: usize) -> Vec<ClientOp> {
    (0..n)
        .map(|i| ClientOp::Create {
            path: format!("{prefix}/output-{i:05}.root"),
            data: Bytes::from(vec![7u8; payload]),
        })
        .collect()
}

/// Placement plan: which server(s) host each catalog file.
///
/// Returns `(file index, server indices)` pairs: each file lands on
/// `replication` distinct servers chosen deterministically from `seed`.
pub fn place_catalog(
    n_files: usize,
    n_servers: usize,
    replication: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let mut rng = SplitMix64::new(seed);
    let r = replication.clamp(1, n_servers.max(1));
    (0..n_files)
        .map(|_| {
            let mut homes = Vec::with_capacity(r);
            while homes.len() < r {
                let s = rng.next_below(n_servers as u64) as usize;
                if !homes.contains(&s) {
                    homes.push(s);
                }
            }
            homes
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_paths_are_distinct_and_shaped() {
        let c = make_catalog(250, "babar");
        assert_eq!(c.len(), 250);
        assert!(c[0].starts_with("/babar/run0000/"));
        assert!(c[249].contains("run0002"));
        let mut d = c.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 250);
    }

    #[test]
    fn analysis_job_shape() {
        let c = make_catalog(100, "x");
        let cfg =
            WorkloadConfig { files_per_job: 5, metadata_ops_per_file: 3, ..Default::default() };
        let ops = analysis_job(&c, &cfg);
        // Per file: 3 stats + 1 open-read.
        assert_eq!(ops.len(), 5 * 4);
        assert!(matches!(ops[0], ClientOp::Stat { .. }));
        assert!(matches!(ops[3], ClientOp::OpenRead { .. }));
    }

    #[test]
    fn analysis_job_deterministic_per_seed() {
        let c = make_catalog(100, "x");
        let cfg = WorkloadConfig::default();
        let a = analysis_job(&c, &cfg);
        let b = analysis_job(&c, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn placement_respects_replication() {
        let plan = place_catalog(500, 16, 3, 9);
        assert_eq!(plan.len(), 500);
        for homes in &plan {
            assert_eq!(homes.len(), 3);
            let mut h = homes.clone();
            h.sort_unstable();
            h.dedup();
            assert_eq!(h.len(), 3, "replicas on distinct servers");
            assert!(h.iter().all(|&s| s < 16));
        }
    }

    #[test]
    fn bulk_job_prepares_first() {
        let paths = vec!["/a".to_string(), "/b".to_string()];
        let ops = bulk_transfer_job(&paths);
        assert!(matches!(&ops[0], ClientOp::Prepare { paths } if paths.len() == 2));
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn production_job_creates_n() {
        let ops = production_job("/out", 4, 128);
        assert_eq!(ops.len(), 4);
        assert!(matches!(&ops[0], ClientOp::Create { path, data }
            if path == "/out/output-00000.root" && data.len() == 128));
    }
}

/// A Zipf-like popularity sampler over `n` items: rank-`k` popularity
/// ∝ 1/(k+1)^alpha. Used to model the "currently popular files" access
/// pattern of §V — a small hot set inside an enormous namespace.
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    rng: SplitMix64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `alpha` (`0.0` =
    /// uniform; `~1.0` = classic web/file popularity).
    pub fn new(n: usize, alpha: f64, seed: u64) -> ZipfSampler {
        assert!(n > 0, "need at least one item");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(alpha);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative, rng: SplitMix64::new(seed) }
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&mut self) -> usize {
        let u = self.rng.next_f64();
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut z = ZipfSampler::new(1000, 1.0, 7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample()] += 1;
        }
        assert!(counts[0] > counts[99] * 10, "rank 0 must dominate rank 99");
        // All mass within range and head-heavy: top 10% gets most of it.
        let head: u32 = counts[..100].iter().sum();
        assert!(head > 60_000, "head mass {head}");
    }

    #[test]
    fn zipf_alpha_zero_is_roughly_uniform() {
        let mut z = ZipfSampler::new(10, 0.0, 9);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample()] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
