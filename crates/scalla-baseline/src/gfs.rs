//! GFS/AFS-style central master (§V baseline).
//!
//! "Cluster masters in the Google File System maintain locations of all
//! files in a cluster regardless of use. … In GFS, node registration is
//! more expensive since the incoming server must transmit its entire
//! manifest to the master."
//!
//! [`GfsMasterNode`] keeps a complete `file → servers` map. Joining servers
//! upload their full manifest ([`CmsMsg::Manifest`]); the master models the
//! ingest cost — network transfer of the manifest bytes plus per-file data
//! structure updates — by deferring the server's availability until the
//! modeled delay elapses. Once ingested, look-ups are a single round trip
//! and negative answers are immediate (the map is authoritative), which is
//! the trade the paper declines: total state for expensive joins.
//!
//! [`CmsMsg::Manifest`]: scalla_proto::CmsMsg::Manifest

use scalla_proto::{Addr, ClientMsg, CmsMsg, ErrCode, Msg, ServerMsg};
use scalla_simnet::{NetCtx, Node};
use scalla_util::Nanos;
use std::collections::{HashMap, HashSet};

/// Ingest-cost model for manifest uploads.
#[derive(Clone, Debug)]
pub struct GfsMasterConfig {
    /// Per-file processing cost during manifest ingest (map insertion,
    /// lease bookkeeping). The paper's "minutes for a single server"
    /// corresponds to ~1 ms/file at 10^5–10^6 files.
    pub per_file_ingest: Nanos,
    /// Modeled network bandwidth for manifest transfer, bytes/second.
    pub manifest_bandwidth: u64,
    /// Assumed bytes per manifest entry (path + metadata).
    pub bytes_per_entry: u64,
}

impl Default for GfsMasterConfig {
    fn default() -> GfsMasterConfig {
        GfsMasterConfig {
            per_file_ingest: Nanos::from_micros(20),
            manifest_bandwidth: 125_000_000, // 1 Gb/s
            bytes_per_entry: 128,
        }
    }
}

/// The central master node.
pub struct GfsMasterNode {
    cfg: GfsMasterConfig,
    /// file path -> server names that host it.
    map: HashMap<String, Vec<String>>,
    /// Servers whose ingest completed.
    ready: HashSet<String>,
    /// Pending ingests keyed by timer token.
    pending: HashMap<u64, (String, Vec<String>)>,
    next_token: u64,
    /// Total manifest entries ever ingested (statistics).
    pub entries_ingested: u64,
    /// Total modeled manifest bytes received.
    pub bytes_received: u64,
    rr: usize,
}

impl GfsMasterNode {
    /// Creates an empty master.
    pub fn new(cfg: GfsMasterConfig) -> GfsMasterNode {
        GfsMasterNode {
            cfg,
            map: HashMap::new(),
            ready: HashSet::new(),
            pending: HashMap::new(),
            next_token: 0,
            entries_ingested: 0,
            bytes_received: 0,
            rr: 0,
        }
    }

    /// Modeled delay to ingest a manifest of `n` files.
    pub fn ingest_delay(&self, n: usize) -> Nanos {
        let transfer = Nanos(
            (n as u64 * self.cfg.bytes_per_entry).saturating_mul(1_000_000_000)
                / self.cfg.manifest_bandwidth.max(1),
        );
        self.cfg.per_file_ingest.mul(n as u64) + transfer
    }

    /// Number of distinct files known.
    pub fn files_known(&self) -> usize {
        self.map.len()
    }

    /// Whether `server` has completed ingest.
    pub fn is_ready(&self, server: &str) -> bool {
        self.ready.contains(server)
    }
}

impl Node for GfsMasterNode {
    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        match msg {
            Msg::Cms(CmsMsg::Manifest { name, files }) => {
                // Model transfer + ingest cost before the server is usable.
                let delay = self.ingest_delay(files.len());
                self.bytes_received += files.len() as u64 * self.cfg.bytes_per_entry;
                let token = self.next_token;
                self.next_token += 1;
                self.pending.insert(token, (name, files));
                ctx.set_timer(delay, token);
            }
            Msg::Client(ClientMsg::Open { path, write, .. }) => {
                // Authoritative map: immediate positive AND negative
                // answers, no flooding, no deadline.
                let holders: Vec<&String> = self
                    .map
                    .get(&path)
                    .map(|v| v.iter().filter(|s| self.ready.contains(*s)).collect())
                    .unwrap_or_default();
                if holders.is_empty() {
                    if write {
                        // Allocate round-robin among ready servers.
                        let ready: Vec<&String> = self.ready.iter().collect();
                        if ready.is_empty() {
                            ctx.send(
                                from,
                                ServerMsg::Error {
                                    code: ErrCode::NoEligibleServer,
                                    detail: "no ingested server".into(),
                                }
                                .into(),
                            );
                            return;
                        }
                        let mut names: Vec<&String> = ready;
                        names.sort();
                        let pick = names[self.rr % names.len()].clone();
                        self.rr += 1;
                        self.map.entry(path).or_default().push(pick.clone());
                        ctx.send(from, ServerMsg::Redirect { host: pick }.into());
                    } else {
                        ctx.send(
                            from,
                            ServerMsg::Error {
                                code: ErrCode::NotFound,
                                detail: format!("{path} unknown to master"),
                            }
                            .into(),
                        );
                    }
                } else {
                    let pick = holders[self.rr % holders.len()].clone();
                    self.rr += 1;
                    ctx.send(from, ServerMsg::Redirect { host: pick }.into());
                }
            }
            Msg::Client(ClientMsg::Prepare { .. }) => {
                // The master already knows everything; prepare is a no-op.
                ctx.send(from, ServerMsg::PrepareOk.into());
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
        if let Some((name, files)) = self.pending.remove(&token) {
            self.entries_ingested += files.len() as u64;
            for f in files {
                self.map.entry(f).or_default().push(name.clone());
            }
            self.ready.insert(name.clone());
            let _ = ctx; // acknowledgement modelled as instantaneous
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_node::{JoinStyle, ServerConfig, ServerNode};
    use scalla_simnet::{LatencyModel, SimNet};

    fn manifest(name: &str, files: &[&str]) -> Msg {
        CmsMsg::Manifest { name: name.into(), files: files.iter().map(|s| s.to_string()).collect() }
            .into()
    }

    fn open(path: &str, write: bool) -> Msg {
        ClientMsg::Open { path: path.into(), write, refresh: false, avoid: None }.into()
    }

    #[test]
    fn ingest_delay_scales_with_manifest_size() {
        let m = GfsMasterNode::new(GfsMasterConfig::default());
        let d1 = m.ingest_delay(1_000);
        let d2 = m.ingest_delay(100_000);
        assert!(d2.0 > d1.0 * 50, "ingest must scale ~linearly with files");
        // 100k files at 20 µs/file = 2 s of pure processing: the "minutes
        // for a single server" regime at production manifest sizes.
        assert!(d2 >= Nanos::from_secs(2));
    }

    #[test]
    fn lookups_blocked_until_ingest_completes() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(10)), 1);
        let master = net.add_node(Box::new(GfsMasterNode::new(GfsMasterConfig::default())));
        net.start();
        net.inject(Addr(99), master, manifest("srv-a", &["/data/f1"]));
        // Immediately after the manifest lands, lookup must miss: the
        // master is still ingesting.
        net.run_for(Nanos::from_micros(50));
        net.inject(Addr(99), master, open("/data/f1", false));
        net.run_for(Nanos::from_micros(50));
        // After the ingest delay the same lookup redirects.
        net.run_for(Nanos::from_secs(1));
        net.inject(Addr(99), master, open("/data/f1", false));
        net.run_for(Nanos::from_secs(1));
        let m = net.node_mut(master).as_any_mut().unwrap().downcast_ref::<GfsMasterNode>().unwrap();
        assert!(m.is_ready("srv-a"));
        assert_eq!(m.files_known(), 1);
        assert_eq!(m.entries_ingested, 1);
    }

    #[test]
    fn server_node_joins_with_manifest_style() {
        // A ServerNode configured with FullManifest drives the baseline
        // end-to-end: join, lookup, redirect, open.
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(10)), 1);
        let master = net.add_node(Box::new(GfsMasterNode::new(GfsMasterConfig::default())));
        let mut scfg = ServerConfig::new("srv-a", master);
        scfg.join = JoinStyle::FullManifest;
        let mut srv = ServerNode::new(scfg);
        srv.fs_mut().put_online("/data/f1", 64);
        net.add_node(Box::new(srv));
        net.start();
        net.run_for(Nanos::from_secs(2)); // covers ingest
        net.inject(Addr(99), master, open("/data/f1", false));
        net.run_for(Nanos::from_millis(1));
        let m = net.node_mut(master).as_any_mut().unwrap().downcast_ref::<GfsMasterNode>().unwrap();
        assert_eq!(m.files_known(), 1);
        assert!(m.is_ready("srv-a"));
    }

    #[test]
    fn negative_answers_are_immediate() {
        // The structural contrast with Scalla: the master's full map means
        // "not found" needs no 5 s deadline.
        let mut master = GfsMasterNode::new(GfsMasterConfig::default());
        struct Cap(Vec<(Addr, Msg)>);
        impl NetCtx for Cap {
            fn now(&self) -> Nanos {
                Nanos::ZERO
            }
            fn me(&self) -> Addr {
                Addr(0)
            }
            fn send(&mut self, to: Addr, msg: Msg) {
                self.0.push((to, msg));
            }
            fn set_timer(&mut self, _: Nanos, _: u64) {}
            fn rand_u64(&mut self) -> u64 {
                0
            }
        }
        let mut ctx = Cap(Vec::new());
        master.on_message(&mut ctx, Addr(5), open("/ghost", false));
        assert!(matches!(
            &ctx.0[0].1,
            Msg::Server(ServerMsg::Error { code: ErrCode::NotFound, .. })
        ));
    }

    #[test]
    fn write_allocation_round_robins_ready_servers() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(10)), 1);
        let cfg = GfsMasterConfig { per_file_ingest: Nanos::from_micros(1), ..Default::default() };
        let master = net.add_node(Box::new(GfsMasterNode::new(cfg)));
        net.start();
        net.inject(Addr(99), master, manifest("srv-a", &[]));
        net.inject(Addr(99), master, manifest("srv-b", &[]));
        net.run_for(Nanos::from_secs(1));
        net.inject(Addr(99), master, open("/new1", true));
        net.inject(Addr(99), master, open("/new2", true));
        net.run_for(Nanos::from_secs(1));
        let m = net.node_mut(master).as_any_mut().unwrap().downcast_ref::<GfsMasterNode>().unwrap();
        assert_eq!(m.files_known(), 2, "allocations recorded in the map");
    }
}
