//! Baseline comparators the paper measures Scalla against (§V).
//!
//! * [`gfs`] — a GFS/AFS-style **central master** that ingests each
//!   server's *complete file manifest* at join time and answers look-ups
//!   from its global map. Look-ups are one RTT (it knows everything), but
//!   registration costs O(#files) in bytes and ingest time — the paper
//!   reports early Scalla prototypes doing this saw "long delays (minutes
//!   for a single server)". Experiments E9 and E10 compare the two join
//!   protocols.
//! * [`EagerWindowRing`] — an **eager re-chaining** window ring that moves a
//!   refreshed object between window chains immediately (requiring a chain
//!   walk to unlink), the behaviour §III-C1's deferred strategy replaces.
//!   Experiment E8 shows the linear-vs-quadratic gap.
//! * No-fast-queue resolution (E6) needs no code here: constructing a
//!   [`NameCache`](scalla_cache::NameCache) with `response_anchors == 0`
//!   makes every enqueue fail and imposes the full 5 s delay, which is
//!   exactly the protocol without §III-B's fast response queue. See
//!   [`no_fast_queue_config`].

pub mod gfs;

pub use gfs::{GfsMasterConfig, GfsMasterNode};
/// Eager re-chaining ring (lives in `scalla-cache` for field access; it is
/// a baseline, re-exported here where comparators are catalogued).
pub use scalla_cache::eager::EagerWindowRing;

use scalla_cache::CacheConfig;

/// A cache configuration with the fast response queue disabled: every
/// would-be waiter is told to wait the full period and retry, reproducing
/// the protocol before §III-B's optimization.
pub fn no_fast_queue_config(mut base: CacheConfig) -> CacheConfig {
    base.response_anchors = 0;
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_cache::{AccessMode, NameCache, Resolution, Waiter};
    use scalla_util::{Nanos, ServerSet, VirtualClock};
    use std::sync::Arc;

    #[test]
    fn no_fast_queue_imposes_full_delay() {
        let clock = Arc::new(VirtualClock::new());
        let cfg = no_fast_queue_config(CacheConfig::for_tests());
        let cache = NameCache::new(cfg, clock);
        let out = cache.resolve("/f", ServerSet::first_n(2), AccessMode::Read, Waiter::new(1, 0));
        assert_eq!(
            out.resolution,
            Resolution::WaitRetry { delay: Nanos::from_secs(5) },
            "without anchors the client always eats the full period"
        );
        // Queries are still issued, so the location gets cached for the
        // retry — the pre-fast-queue protocol still converges.
        assert_eq!(out.query, ServerSet::first_n(2));
    }
}
