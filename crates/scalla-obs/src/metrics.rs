//! Lock-free metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms with labels, exposable as Prometheus text or a JSON snapshot.
//!
//! Registration (name → handle) takes a mutex once; recording through a
//! handle is a relaxed atomic op. Histograms reuse the bucket layout of
//! [`scalla_util::Histogram`] (`NBUCKETS` log-spaced buckets, ~12 %
//! relative resolution) so sim-side and live-side distributions are
//! directly comparable.
//!
//! Counter islands that predate the registry (`CacheStats`,
//! `EgressCounters`, `NetCounters`) are absorbed at scrape time: they
//! register a *collector* callback which mirrors their atomics into plain
//! registry counters right before every exposition.

use scalla_util::{bucket_value, NBUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value — used by collectors mirroring an external
    /// atomic counter into the registry.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero under concurrent underflow.
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free histogram sharing `scalla_util::Histogram`'s bucket layout.
///
/// Recording is two relaxed `fetch_add`s plus two monotone CAS loops for
/// min/max; no locks, no allocation.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

/// A consistent-enough point-in-time copy of an [`AtomicHistogram`].
pub struct HistSnapshot {
    buckets: Box<[u64; NBUCKETS]>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample, 0 if empty.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[scalla_util::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy (relaxed; buckets may lag `count` by
    /// in-flight records, which exposition tolerates).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Box::new([0u64; NBUCKETS]);
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl HistSnapshot {
    /// Approximate quantile `q` in `[0, 1]` (bucket lower-bound estimate,
    /// clamped to the observed min/max like `Histogram::quantile`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean, 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Cumulative `(upper_bound, count)` points over non-empty buckets, for
    /// Prometheus-style `le` exposition.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut acc = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n != 0 {
                acc += n;
                out.push((bucket_value(i), acc));
            }
        }
        out
    }
}

/// A collector mirrors an external counter island into the registry; all
/// collectors run right before every exposition.
pub type Collector = Box<dyn Fn(&Registry) + Send + Sync>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

struct Entry {
    name: &'static str,
    /// Rendered label set, `{k="v",...}` or empty.
    labels: String,
    metric: Metric,
}

/// The metrics registry: named handles, scraped as one page.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
    collectors: Mutex<Vec<Collector>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect::<Vec<_>>().join(",");
    format!("{{{body}}}")
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T, F: FnOnce() -> Metric, P: Fn(&Metric) -> Option<Arc<T>>>(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
        make: F,
        pick: P,
    ) -> Arc<T> {
        let rendered = render_labels(labels);
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name && e.labels == rendered {
                return pick(&e.metric)
                    .unwrap_or_else(|| panic!("metric {name} re-registered with another type"));
            }
        }
        let metric = make();
        let handle = pick(&metric).expect("freshly made metric has the right type");
        entries.push(Entry { name, labels: rendered, metric });
        handle
    }

    /// Gets or creates a counter.
    pub fn counter(&self, name: &'static str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &'static str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates a histogram.
    pub fn histogram(&self, name: &'static str, labels: &[(&str, &str)]) -> Arc<AtomicHistogram> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Histogram(Arc::new(AtomicHistogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Registers a collector to run before every exposition.
    pub fn add_collector(&self, c: Collector) {
        self.collectors.lock().unwrap().push(c);
    }

    fn run_collectors(&self) {
        // Clone the boxes out? They're not cloneable — run under the lock;
        // collectors only touch atomics and the entries mutex (not the
        // collectors mutex), so this cannot deadlock.
        let collectors = self.collectors.lock().unwrap();
        for c in collectors.iter() {
            c(self);
        }
    }

    /// Prometheus text exposition. Histograms are exported in summary form
    /// (`quantile` labels + `_sum`/`_count`) plus explicit non-empty
    /// cumulative buckets, keeping the page compact while remaining
    /// parseable by standard exposition-format parsers.
    pub fn prometheus_text(&self) -> String {
        self.run_collectors();
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        let mut typed: Vec<&'static str> = Vec::new();
        for e in entries.iter() {
            match &e.metric {
                Metric::Counter(c) => {
                    if !typed.contains(&e.name) {
                        typed.push(e.name);
                        out.push_str(&format!("# TYPE {} counter\n", e.name));
                    }
                    out.push_str(&format!("{}{} {}\n", e.name, e.labels, c.get()));
                }
                Metric::Gauge(g) => {
                    if !typed.contains(&e.name) {
                        typed.push(e.name);
                        out.push_str(&format!("# TYPE {} gauge\n", e.name));
                    }
                    out.push_str(&format!("{}{} {}\n", e.name, e.labels, g.get()));
                }
                Metric::Histogram(h) => {
                    if !typed.contains(&e.name) {
                        typed.push(e.name);
                        out.push_str(&format!("# TYPE {} histogram\n", e.name));
                    }
                    let snap = h.snapshot();
                    let base = e.labels.trim_start_matches('{').trim_end_matches('}');
                    let with = |extra: String| {
                        if base.is_empty() {
                            format!("{{{extra}}}")
                        } else {
                            format!("{{{base},{extra}}}")
                        }
                    };
                    for (le, cum) in snap.cumulative() {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            e.name,
                            with(format!("le=\"{le}\"")),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        with("le=\"+Inf\"".to_string()),
                        snap.count
                    ));
                    out.push_str(&format!("{}_sum{} {}\n", e.name, e.labels, snap.sum));
                    out.push_str(&format!("{}_count{} {}\n", e.name, e.labels, snap.count));
                }
            }
        }
        out
    }

    /// JSON snapshot (hand-rolled; the vendored serde shim is a no-op).
    pub fn json_snapshot(&self) -> String {
        self.run_collectors();
        let entries = self.entries.lock().unwrap();
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for e in entries.iter() {
            let key = esc(&format!("{}{}", e.name, e.labels));
            match &e.metric {
                Metric::Counter(c) => counters.push(format!("\"{key}\": {}", c.get())),
                Metric::Gauge(g) => gauges.push(format!("\"{key}\": {}", g.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    hists.push(format!(
                        "\"{key}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                         \"mean\": {}, \"p50\": {}, \"p99\": {}}}",
                        s.count,
                        s.sum,
                        s.min,
                        s.max,
                        s.mean(),
                        s.quantile(0.5),
                        s.quantile(0.99),
                    ))
                }
            }
        }
        format!(
            "{{\"counters\": {{{}}}, \"gauges\": {{{}}}, \"histograms\": {{{}}}}}",
            counters.join(", "),
            gauges.join(", "),
            hists.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("scalla_test_total", &[("kind", "a")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) returns the same handle.
        assert_eq!(reg.counter("scalla_test_total", &[("kind", "a")]).get(), 5);
        let g = reg.gauge("scalla_test_gauge", &[]);
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge saturates at zero");
    }

    #[test]
    fn atomic_histogram_matches_scalar_quantiles() {
        let ah = AtomicHistogram::new();
        let mut sh = scalla_util::Histogram::new();
        for i in 1..=10_000u64 {
            ah.record(i * 137);
            sh.record(scalla_util::Nanos(i * 137));
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count, 10_000);
        assert_eq!(snap.quantile(0.5), sh.median().0, "same buckets, same estimate");
        assert_eq!(snap.quantile(0.99), sh.p99().0);
        assert_eq!(snap.max, sh.max().0);
        assert_eq!(snap.min, sh.min().0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroes() {
        let snap = AtomicHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.quantile(0.99), 0);
        assert!(snap.cumulative().is_empty());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("scalla_ops_total", &[("op", "open")]).add(3);
        reg.gauge("scalla_queue_depth", &[]).set(7);
        reg.histogram("scalla_lat_ns", &[("stage", "resolve")]).record(100);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE scalla_ops_total counter"), "{text}");
        assert!(text.contains("scalla_ops_total{op=\"open\"} 3"), "{text}");
        assert!(text.contains("scalla_queue_depth 7"), "{text}");
        assert!(text.contains("# TYPE scalla_lat_ns histogram"), "{text}");
        assert!(text.contains("scalla_lat_ns_count{stage=\"resolve\"} 1"), "{text}");
        assert!(text.contains("le=\"+Inf\""), "{text}");
        // Every non-comment line is `name_or_name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "bad line: {line}");
        }
    }

    #[test]
    fn collectors_run_at_scrape_time() {
        let reg = Registry::new();
        let src = Arc::new(AtomicU64::new(41));
        let src2 = src.clone();
        reg.add_collector(Box::new(move |r| {
            r.counter("scalla_mirrored_total", &[]).set(src2.load(Ordering::Relaxed));
        }));
        src.store(42, Ordering::Relaxed);
        assert!(reg.prometheus_text().contains("scalla_mirrored_total 42"));
        assert!(reg.json_snapshot().contains("\"scalla_mirrored_total\": 42"));
    }

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let reg = Registry::new();
        reg.counter("a_total", &[]).inc();
        reg.histogram("h_ns", &[]).record(5);
        let json = reg.json_snapshot();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert!(json.contains("\"a_total\": 1"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("scalla_concurrent_total", &[]);
        let h = reg.histogram("scalla_concurrent_ns", &[]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
    }
}
