//! Unified observability layer for the Scalla reproduction.
//!
//! The paper's headline claims are latency *distributions* through the cmsd
//! resolution path — cache-hit redirects, fast-response-queue early
//! releases, correction-vector costs (§III-A1–A4). Before this crate the
//! repro could only observe them post-hoc by aggregating client records;
//! counters lived in disconnected islands (`CacheStats`, `EgressCounters`,
//! `NetCounters`) with no per-request attribution and no way to scrape a
//! running node. This crate provides the three missing pieces:
//!
//! * [`metrics`] — a lock-free [`Registry`] of atomic counters, gauges, and
//!   fixed-bucket histograms (sharing the bucket layout of
//!   [`scalla_util::Histogram`]), exposable as Prometheus text or a JSON
//!   snapshot. Counter islands elsewhere in the workspace mirror themselves
//!   into the registry via collector callbacks at scrape time.
//! * [`trace`] — request-scoped tracing: a compact [`TraceId`] minted at
//!   the client, carried through the wire protocol across
//!   cmsd→supervisor→server hops, with per-hop [`SpanEvent`]s recorded into
//!   a bounded per-node [`FlightRecorder`] ring buffer that can be dumped
//!   on demand or snapshotted automatically when a drop/timeout/stale-ref
//!   incident fires.
//! * [`Obs`] — the cheap cloneable handle nodes carry. A disabled handle
//!   (`Obs::disabled()`, the default everywhere) is a single branch on the
//!   hot path; stage timers additionally sample 1-in-N (N = 64 by default)
//!   so the two clock reads per timed section amortise below the <5 %
//!   overhead budget proven by the `obs_overhead` bench.

pub mod metrics;
pub mod trace;

pub use metrics::{AtomicHistogram, Counter, Gauge, HistSnapshot, Registry};
pub use trace::{FlightRecorder, SpanEvent, TraceId};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The per-stage latency histograms threaded through the stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// One full `NameCache::resolve` pass (lookup, correction, selection).
    Resolve,
    /// Client-observed redirect hop: request sent → `Redirect` received.
    RedirectHop,
    /// Fast-response-queue wait: enqueue → early release by a `Have`.
    FastqWait,
    /// One location-cache window tick (`L_t/64` eviction scan).
    WindowTick,
    /// One correction-vector application on the hit path.
    CorrectionApply,
}

impl Stage {
    /// All stages, in histogram-slot order.
    pub const ALL: [Stage; 5] = [
        Stage::Resolve,
        Stage::RedirectHop,
        Stage::FastqWait,
        Stage::WindowTick,
        Stage::CorrectionApply,
    ];

    /// The Prometheus `stage` label value.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Resolve => "resolve",
            Stage::RedirectHop => "redirect_hop",
            Stage::FastqWait => "fastq_wait",
            Stage::WindowTick => "window_tick",
            Stage::CorrectionApply => "correction_apply",
        }
    }
}

struct ObsInner {
    registry: Arc<Registry>,
    flight: Arc<FlightRecorder>,
    /// Per-stage histograms, resolved once so the hot path never touches
    /// the registry's name table.
    stage_hists: [Arc<AtomicHistogram>; 5],
    /// Per-stage sampling counters; an event is timed when
    /// `ctr & sample_mask == 0`, so the *first* event of every stage is
    /// always recorded.
    stage_ctrs: [AtomicU64; 5],
    sample_mask: u64,
}

/// A cheap cloneable observability handle.
///
/// `Obs::disabled()` (the default for every node) is a `None` — each probe
/// is one branch. An enabled handle shares one [`Registry`] and one
/// [`FlightRecorder`] among every clone, so a whole in-process cluster can
/// be scraped through a single admin endpoint.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

/// Default stage-timer sampling: 1 in 64 events pay the two clock reads.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Default flight-recorder capacity (spans retained per process).
pub const DEFAULT_FLIGHT_CAP: usize = 1024;

impl Obs {
    /// A no-op handle: every probe is a single branch, nothing is recorded.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle with default sampling and flight capacity.
    pub fn enabled() -> Obs {
        Obs::with_config(DEFAULT_SAMPLE_EVERY, DEFAULT_FLIGHT_CAP)
    }

    /// An enabled handle recording stage timings for 1 in `sample_every`
    /// events (rounded down to a power of two; 0 or 1 = every event) into a
    /// flight ring of `flight_cap` spans.
    pub fn with_config(sample_every: u64, flight_cap: usize) -> Obs {
        let registry = Arc::new(Registry::new());
        let stage_hists =
            Stage::ALL.map(|s| registry.histogram("scalla_stage_ns", &[("stage", s.label())]));
        let mask = if sample_every <= 1 { 0 } else { sample_every.next_power_of_two() - 1 };
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry,
                flight: Arc::new(FlightRecorder::new(flight_cap)),
                stage_hists,
                stage_ctrs: std::array::from_fn(|_| AtomicU64::new(0)),
                sample_mask: mask,
            })),
        }
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared metrics registry. Panics if disabled.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.as_ref().expect("Obs::registry on a disabled handle").registry
    }

    /// The shared flight recorder. Panics if disabled.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.inner.as_ref().expect("Obs::flight on a disabled handle").flight
    }

    /// Decides whether the caller should time the next `stage` event.
    ///
    /// Returns `false` on a disabled handle, and for all but 1-in-N events
    /// on an enabled one — the caller then skips its two clock reads
    /// entirely. The first event of each stage is always sampled.
    #[inline]
    pub fn stage_sample(&self, stage: Stage) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                // Deliberately racy load+store instead of fetch_add: a lost
                // increment under contention only shifts *which* events get
                // sampled, never correctness, and a plain store keeps this
                // probe off the lock-prefixed path (the whole layer budgets
                // <5% overhead on the resolve hot loop).
                let ctr = &inner.stage_ctrs[stage as usize];
                let n = ctr.load(Ordering::Relaxed);
                ctr.store(n.wrapping_add(1), Ordering::Relaxed);
                n & inner.sample_mask == 0
            }
        }
    }

    /// Records one sampled stage latency in nanoseconds.
    #[inline]
    pub fn record_stage(&self, stage: Stage, elapsed_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.stage_hists[stage as usize].record(elapsed_ns);
        }
    }

    /// Records a span event into the flight ring (no-op when disabled).
    #[inline]
    pub fn span(&self, ev: SpanEvent) {
        if let Some(inner) = &self.inner {
            inner.flight.record(ev);
        }
    }

    /// Snapshots the flight ring under an incident label (drop, timeout,
    /// stale-ref). The most recent snapshot is kept alongside the live
    /// ring and shows up in `/flight` dumps.
    #[inline]
    pub fn incident(&self, reason: &'static str) {
        if let Some(inner) = &self.inner {
            inner.flight.mark_incident(reason);
        }
    }

    /// Bumps a named counter (registered on first use; the handle is not
    /// cached, so keep this off per-request hot paths).
    pub fn count(&self, name: &'static str, labels: &[(&str, &str)], n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, labels).add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.stage_sample(Stage::Resolve));
        obs.record_stage(Stage::Resolve, 123);
        obs.span(SpanEvent::new(TraceId(1), 0, "x"));
        obs.incident("drop");
        obs.count("c", &[], 1);
    }

    #[test]
    fn first_event_of_each_stage_is_sampled() {
        let obs = Obs::with_config(64, 16);
        for s in Stage::ALL {
            assert!(obs.stage_sample(s), "first {s:?} event must sample");
            assert!(!obs.stage_sample(s), "second {s:?} event must not (1/64)");
        }
    }

    #[test]
    fn sample_every_one_samples_everything() {
        let obs = Obs::with_config(1, 16);
        for _ in 0..10 {
            assert!(obs.stage_sample(Stage::FastqWait));
        }
    }

    #[test]
    fn stage_records_land_in_registry_exposition() {
        let obs = Obs::with_config(1, 16);
        obs.record_stage(Stage::Resolve, 1_000);
        obs.record_stage(Stage::Resolve, 2_000);
        let text = obs.registry().prometheus_text();
        assert!(text.contains("scalla_stage_ns_count{stage=\"resolve\"} 2"), "{text}");
        let json = obs.registry().json_snapshot();
        assert!(json.contains("\"scalla_stage_ns{stage=\\\"resolve\\\"}\""), "{json}");
    }

    #[test]
    fn clones_share_registry_and_flight() {
        let a = Obs::enabled();
        let b = a.clone();
        b.record_stage(Stage::WindowTick, 5);
        b.span(SpanEvent::new(TraceId(7), 3, "tick"));
        assert!(a.registry().prometheus_text().contains("window_tick"));
        assert_eq!(a.flight().dump().len(), 1);
    }
}
