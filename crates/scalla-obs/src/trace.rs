//! Request-scoped tracing and the flight recorder.
//!
//! A [`TraceId`] is minted by the client when an operation starts and rides
//! the wire protocol (a version-negotiated frame envelope in
//! `scalla-proto`) across every cmsd→supervisor→server hop the resolution
//! takes. Each hop records a [`SpanEvent`] — node, stage, cache verdict,
//! queue depth, elapsed time — into a bounded per-process
//! [`FlightRecorder`] ring. The ring can be dumped on demand through the
//! admin endpoint (`/flight`), and is snapshotted automatically when an
//! incident (drop, timeout, stale-ref) fires so the spans leading up to
//! the failure survive subsequent traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A compact request-scoped trace identifier. Zero means "untraced".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The absent trace id.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this id traces anything.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One hop-level event on a traced request's path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanEvent {
    /// The request's trace id (may be `NONE` for untraced activity).
    pub trace: TraceId,
    /// The recording node's address (`Addr.0`).
    pub node: u64,
    /// Which stage of the path this is (`cms_resolve`, `srv_open`, ...).
    pub stage: &'static str,
    /// Stage-specific verdict (`redirect`, `queued`, `hit`, `miss`, ...).
    pub verdict: &'static str,
    /// Queue depth or another stage-specific magnitude.
    pub depth: u64,
    /// Timestamp (node-local nanoseconds) when the event was recorded.
    pub t_ns: u64,
    /// Time spent in the stage, nanoseconds (0 when not timed).
    pub elapsed_ns: u64,
}

impl SpanEvent {
    /// A minimal event; fill the rest with the builder-style setters.
    pub fn new(trace: TraceId, node: u64, stage: &'static str) -> SpanEvent {
        SpanEvent { trace, node, stage, verdict: "", depth: 0, t_ns: 0, elapsed_ns: 0 }
    }

    /// Sets the verdict label.
    #[must_use]
    pub fn verdict(mut self, v: &'static str) -> SpanEvent {
        self.verdict = v;
        self
    }

    /// Sets the depth/magnitude field.
    #[must_use]
    pub fn depth(mut self, d: u64) -> SpanEvent {
        self.depth = d;
        self
    }

    /// Sets the timestamp.
    #[must_use]
    pub fn at(mut self, t_ns: u64) -> SpanEvent {
        self.t_ns = t_ns;
        self
    }

    /// Sets the elapsed time.
    #[must_use]
    pub fn took(mut self, elapsed_ns: u64) -> SpanEvent {
        self.elapsed_ns = elapsed_ns;
        self
    }

    /// The `/flight` dump line for this event.
    pub fn render(&self) -> String {
        format!(
            "trace={} node={} stage={} verdict={} depth={} t={} elapsed={}",
            self.trace,
            self.node,
            self.stage,
            if self.verdict.is_empty() { "-" } else { self.verdict },
            self.depth,
            self.t_ns,
            self.elapsed_ns,
        )
    }
}

struct Ring {
    /// Slot `i` holds the `(seq / cap)`-th overwrite of position `i`.
    slots: Vec<Option<SpanEvent>>,
    /// Next write position.
    head: usize,
}

/// A bounded ring of recent [`SpanEvent`]s plus the last incident snapshot.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    cap: usize,
    recorded: AtomicU64,
    incident: Mutex<Option<(&'static str, Vec<SpanEvent>)>>,
    incidents: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder retaining the most recent `cap` spans (min 1).
    pub fn new(cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            ring: Mutex::new(Ring { slots: vec![None; cap], head: 0 }),
            cap,
            recorded: AtomicU64::new(0),
            incident: Mutex::new(None),
            incidents: AtomicU64::new(0),
        }
    }

    /// Appends a span, overwriting the oldest once full.
    pub fn record(&self, ev: SpanEvent) {
        let mut ring = self.ring.lock().unwrap();
        let head = ring.head;
        ring.slots[head] = Some(ev);
        ring.head = (head + 1) % self.cap;
        drop(ring);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Total incidents marked.
    pub fn incidents(&self) -> u64 {
        self.incidents.load(Ordering::Relaxed)
    }

    /// The retained spans, oldest first.
    pub fn dump(&self) -> Vec<SpanEvent> {
        let ring = self.ring.lock().unwrap();
        let mut out = Vec::new();
        for i in 0..self.cap {
            let idx = (ring.head + i) % self.cap;
            if let Some(ev) = &ring.slots[idx] {
                out.push(ev.clone());
            }
        }
        out
    }

    /// Freezes the current ring contents under an incident label. Only the
    /// most recent incident snapshot is retained.
    pub fn mark_incident(&self, reason: &'static str) {
        let snapshot = self.dump();
        *self.incident.lock().unwrap() = Some((reason, snapshot));
        self.incidents.fetch_add(1, Ordering::Relaxed);
    }

    /// The most recent incident snapshot, if any.
    pub fn last_incident(&self) -> Option<(&'static str, Vec<SpanEvent>)> {
        self.incident.lock().unwrap().clone()
    }

    /// The `/flight` text dump: live ring, then the last incident section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# flight: {} recorded, {} retained (cap {}), {} incidents\n",
            self.recorded(),
            self.dump().len(),
            self.cap,
            self.incidents(),
        ));
        for ev in self.dump() {
            out.push_str(&ev.render());
            out.push('\n');
        }
        if let Some((reason, spans)) = self.last_incident() {
            out.push_str(&format!("# incident: {reason} ({} spans)\n", spans.len()));
            for ev in spans {
                out.push_str(&format!("incident {}\n", ev.render()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, stage: &'static str) -> SpanEvent {
        SpanEvent::new(TraceId(trace), 1, stage)
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let fr = FlightRecorder::new(3);
        for i in 1..=5u64 {
            fr.record(ev(i, "s"));
        }
        let got: Vec<u64> = fr.dump().iter().map(|e| e.trace.0).collect();
        assert_eq!(got, vec![3, 4, 5]);
        assert_eq!(fr.recorded(), 5);
    }

    #[test]
    fn partial_ring_dumps_only_recorded() {
        let fr = FlightRecorder::new(8);
        fr.record(ev(1, "a"));
        fr.record(ev(2, "b"));
        let got: Vec<u64> = fr.dump().iter().map(|e| e.trace.0).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn incident_snapshot_survives_later_traffic() {
        let fr = FlightRecorder::new(2);
        fr.record(ev(1, "pre"));
        fr.mark_incident("timeout");
        fr.record(ev(2, "post"));
        fr.record(ev(3, "post"));
        fr.record(ev(4, "post"));
        let (reason, spans) = fr.last_incident().expect("incident kept");
        assert_eq!(reason, "timeout");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, TraceId(1));
        assert_eq!(fr.incidents(), 1);
        let text = fr.render();
        assert!(text.contains("# incident: timeout"), "{text}");
    }

    #[test]
    fn render_lines_are_parseable() {
        let fr = FlightRecorder::new(4);
        fr.record(ev(0xabc, "cms_resolve").verdict("redirect").depth(2).at(10).took(5));
        let text = fr.render();
        let line = text.lines().nth(1).unwrap();
        assert!(line.starts_with("trace=0000000000000abc "), "{line}");
        for field in ["node=1", "stage=cms_resolve", "verdict=redirect", "depth=2", "elapsed=5"] {
            assert!(line.contains(field), "{line}");
        }
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let fr = FlightRecorder::new(0);
        fr.record(ev(1, "s"));
        assert_eq!(fr.dump().len(), 1);
    }
}
