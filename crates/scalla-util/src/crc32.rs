//! Table-driven CRC-32 (IEEE 802.3 / zlib polynomial).
//!
//! The paper keys its file-location hash table with "a CRC32 encoding of the
//! file name" (§III-A1). We implement the standard reflected CRC-32 with
//! polynomial `0xEDB88320`, which is the variant used by zlib and by the
//! production XRootD code base. The implementation is a classic one-byte
//! lookup table built at compile time; throughput is far beyond what the
//! cache needs (a file name is hashed once per request).

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data` in one shot.
///
/// ```
/// assert_eq!(scalla_util::crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[inline]
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Feeds `data` into a running (already-inverted) CRC state.
///
/// Callers wanting incremental hashing should start from `0xFFFF_FFFF`,
/// call [`update`] for each chunk, and invert the final value — exactly what
/// [`crc32`] does for the single-chunk case.
#[inline]
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        state = (state >> 8) ^ TABLE[((state ^ byte as u32) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"/store/user/babar/run1234/events-0042.root";
        let oneshot = crc32(data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn distinct_names_distinct_hashes() {
        // Not a guarantee in general, but these representative file names
        // must not collide (they don't under correct CRC-32).
        let names = [
            "/atlas/data/run1/f1.root",
            "/atlas/data/run1/f2.root",
            "/atlas/data/run2/f1.root",
            "/cms/data/run1/f1.root",
        ];
        let mut hashes: Vec<u32> = names.iter().map(|n| crc32(n.as_bytes())).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), names.len());
    }
}
