//! Time abstraction shared by every Scalla component.
//!
//! All paper constants are time-based — the 8 h location-object lifetime
//! `L_t`, the `L_t/64` window tick, the 5 s processing deadline, and the
//! 133 ms fast-response sweep. To reproduce latency-shape experiments
//! deterministically, the cache and protocol code never read the system
//! clock directly; they are handed a [`Clock`]. The discrete-event runtime
//! supplies a [`VirtualClock`] advanced by the event loop, the live threaded
//! runtime a [`SystemClock`].

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A point in time, in nanoseconds since an arbitrary epoch.
///
/// `Nanos` is also used for durations; the arithmetic saturates rather than
/// wraps so that deadline math near the epoch cannot panic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero time — the virtual epoch.
    pub const ZERO: Nanos = Nanos(0);

    /// Constructs from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Constructs from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Constructs from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Nanos {
        Nanos::from_secs(m * 60)
    }

    /// Constructs from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Nanos {
        Nanos::from_secs(h * 3600)
    }

    /// Value in microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in seconds as a float — for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference, `self - earlier`.
    #[inline]
    #[must_use]
    pub fn since(self, earlier: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }

    /// Integer division of durations (e.g. `L_t / 64` for the window size).
    #[inline]
    #[must_use]
    pub fn div(self, n: u64) -> Nanos {
        Nanos(self.0 / n)
    }

    /// Scalar multiplication of a duration.
    #[inline]
    #[must_use]
    pub fn mul(self, n: u64) -> Nanos {
        Nanos(self.0.saturating_mul(n))
    }
}

impl std::ops::Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        self.since(rhs)
    }
}

impl std::fmt::Debug for Nanos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self)
    }
}

impl std::fmt::Display for Nanos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A source of the current time.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Nanos;
}

/// A shared, thread-safe clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Deterministic clock advanced explicitly by a driver (the discrete-event
/// loop, or a test).
#[derive(Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Creates a clock at `start`.
    pub fn starting_at(start: Nanos) -> VirtualClock {
        VirtualClock { now: AtomicU64::new(start.0) }
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&self, delta: Nanos) {
        self.now.fetch_add(delta.0, Ordering::SeqCst);
    }

    /// Jumps the clock to `t`. `t` must not be earlier than the current
    /// time; time never moves backwards.
    pub fn set(&self, t: Nanos) {
        let prev = self.now.swap(t.0, Ordering::SeqCst);
        debug_assert!(prev <= t.0, "virtual clock moved backwards: {prev} -> {}", t.0);
    }
}

impl Clock for VirtualClock {
    #[inline]
    fn now(&self) -> Nanos {
        Nanos(self.now.load(Ordering::SeqCst))
    }
}

/// Monotonic wall-clock time for the live threaded runtime.
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> SystemClock {
        SystemClock { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    #[inline]
    fn now(&self) -> Nanos {
        Nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors() {
        assert_eq!(Nanos::from_micros(1).0, 1_000);
        assert_eq!(Nanos::from_millis(1).0, 1_000_000);
        assert_eq!(Nanos::from_secs(1).0, 1_000_000_000);
        assert_eq!(Nanos::from_hours(8), Nanos::from_secs(8 * 3600));
        assert_eq!(Nanos::from_hours(8).div(64), Nanos::from_secs(450));
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(Nanos(5) - Nanos(10), Nanos::ZERO);
        assert_eq!(Nanos(u64::MAX) + Nanos(1), Nanos(u64::MAX));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_micros(50)), "50.000us");
        assert_eq!(format!("{}", Nanos::from_millis(133)), "133.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(5)), "5.000s");
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Nanos::ZERO);
        c.advance(Nanos::from_millis(7));
        assert_eq!(c.now(), Nanos::from_millis(7));
        c.set(Nanos::from_secs(1));
        assert_eq!(c.now(), Nanos::from_secs(1));
    }

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
