//! Minimal deterministic pseudo-random stream.
//!
//! Core crates (cache, cluster, simnet) need cheap jitter and tie-breaking
//! without pulling a full RNG dependency into their hot paths. SplitMix64 is
//! tiny, passes BigCrush for this use, and is trivially seedable, which keeps
//! every experiment reproducible bit-for-bit.

/// SplitMix64 generator (Steele, Lea & Flood 2014).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    #[inline]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection-free mapping; bias is < 2^-64
        // per draw, irrelevant at experiment scales.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random member of a 64-bit set, if non-empty.
    /// Used by the "random" server-selection policy.
    #[inline]
    pub fn pick_bit(&mut self, set: u64) -> Option<u8> {
        let n = set.count_ones();
        if n == 0 {
            return None;
        }
        let mut k = self.next_below(n as u64) as u32;
        let mut s = set;
        loop {
            let bit = s.trailing_zeros();
            if k == 0 {
                return Some(bit as u8);
            }
            s &= s - 1;
            k -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value for seed 0 from the SplitMix64 reference code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn pick_bit_uniformish() {
        let mut r = SplitMix64::new(9);
        let set = 0b1011_0001u64;
        let mut counts = [0u32; 8];
        for _ in 0..8_000 {
            let b = r.pick_bit(set).unwrap();
            assert!(set & (1 << b) != 0);
            counts[b as usize] += 1;
        }
        for b in [0usize, 4, 5, 7] {
            // 4 members, 8000 draws -> expect ~2000 each.
            assert!(counts[b] > 1_500, "bit {b}: {}", counts[b]);
        }
        assert_eq!(r.pick_bit(0), None);
    }
}
