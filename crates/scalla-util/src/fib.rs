//! Fibonacci table sizing (§III-A1).
//!
//! The paper sizes the location hash table "to be a Fibonacci number of
//! entries" and, when 80 % full, rebuilds it at "the subsequent Fibonacci
//! number". Footnote 4 reports that CRC-32 modulo a Fibonacci number
//! disperses file names much more uniformly than modulo a power of two;
//! experiment E4 reproduces that comparison.

/// All Fibonacci numbers that fit in a `u64`, starting at F(3) = 2.
///
/// Sizes 0 and 1 are useless as table sizes, so the ladder starts at 2.
/// The sequence is precomputed so that size selection is a binary search
/// over a constant table rather than runtime iteration.
pub const FIBONACCI: [u64; 91] = build_fibs();

const fn build_fibs() -> [u64; 91] {
    let mut out = [0u64; 91];
    let (mut a, mut b) = (1u64, 2u64); // F(2), F(3)
    let mut i = 0;
    while i < 91 {
        out[i] = b;
        i += 1;
        if i < 91 {
            // Guarded so the final iteration does not compute F(94), which
            // would overflow u64 during const evaluation.
            let next = a + b;
            a = b;
            b = next;
        }
    }
    out
}

/// Returns the smallest Fibonacci number `>= n` (minimum 2).
///
/// ```
/// assert_eq!(scalla_util::fib_at_least(1), 2);
/// assert_eq!(scalla_util::fib_at_least(13), 13);
/// assert_eq!(scalla_util::fib_at_least(14), 21);
/// ```
#[inline]
pub fn fib_at_least(n: u64) -> u64 {
    match FIBONACCI.binary_search(&n) {
        Ok(i) => FIBONACCI[i],
        Err(i) => FIBONACCI[i.min(FIBONACCI.len() - 1)],
    }
}

/// Returns the Fibonacci number following `n`, or `n` itself if `n` is not
/// in the sequence (in which case the caller should have used
/// [`fib_at_least`] first). Saturates at the largest `u64` Fibonacci number.
#[inline]
pub fn next_fib(n: u64) -> u64 {
    match FIBONACCI.binary_search(&n) {
        Ok(i) => FIBONACCI[(i + 1).min(FIBONACCI.len() - 1)],
        Err(i) => FIBONACCI[i.min(FIBONACCI.len() - 1)],
    }
}

/// Tests whether `n` is one of the table-size Fibonacci numbers (>= 2).
#[inline]
pub fn is_fibonacci(n: u64) -> bool {
    FIBONACCI.binary_search(&n).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_starts_correctly() {
        assert_eq!(&FIBONACCI[..8], &[2, 3, 5, 8, 13, 21, 34, 55]);
    }

    #[test]
    fn ladder_is_strictly_increasing_and_fibonacci() {
        for w in FIBONACCI.windows(3) {
            assert!(w[0] < w[1]);
            assert_eq!(w[0] + w[1], w[2]);
        }
    }

    #[test]
    fn at_least_behaviour() {
        assert_eq!(fib_at_least(0), 2);
        assert_eq!(fib_at_least(2), 2);
        assert_eq!(fib_at_least(4), 5);
        assert_eq!(fib_at_least(100), 144);
        assert_eq!(fib_at_least(u64::MAX), *FIBONACCI.last().unwrap());
    }

    #[test]
    fn next_behaviour() {
        assert_eq!(next_fib(2), 3);
        assert_eq!(next_fib(13), 21);
        assert_eq!(next_fib(*FIBONACCI.last().unwrap()), *FIBONACCI.last().unwrap());
    }

    #[test]
    fn membership() {
        assert!(is_fibonacci(2));
        assert!(is_fibonacci(6765));
        assert!(!is_fibonacci(6766));
        assert!(!is_fibonacci(1024));
    }
}
