//! 64-bit server-set vectors (§III-A1).
//!
//! Scalla clusters nodes "in sets of 64" and describes location state with
//! three 64-bit vectors: `V_h` (servers that have the file), `V_p` (servers
//! preparing it), and `V_q` (servers still to be queried). Server *i*
//! corresponds to bit `1 << i`. This module provides the [`ServerSet`]
//! newtype with the set algebra those vectors need, plus the [`ServerId`]
//! slot index type.

use serde::{Deserialize, Serialize};

/// Maximum number of directly addressable servers under one manager or
/// supervisor — the defining constant of Scalla's 64-ary tree.
pub const MAX_SERVERS: usize = 64;

/// A slot number in `0..64` identifying a server within its parent's set.
pub type ServerId = u8;

/// A set of up to 64 servers, one bit per slot.
///
/// This is the concrete representation of every vector in the paper:
/// `V_h`, `V_p`, `V_q` (location state), `V_m` (path eligibility), and
/// `V_c`/`V_wc` (connect corrections).
///
/// ```
/// use scalla_util::ServerSet;
///
/// let vh = ServerSet::single(3) | ServerSet::single(7);
/// let vm = ServerSet::first_n(8);
/// assert!(vh.is_subset(vm));
/// assert_eq!((vh & vm).iter().collect::<Vec<_>>(), vec![3, 7]);
/// assert_eq!((vm - vh).len(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct ServerSet(pub u64);

impl ServerSet {
    /// The empty set.
    pub const EMPTY: ServerSet = ServerSet(0);
    /// The full set of 64 slots.
    pub const ALL: ServerSet = ServerSet(u64::MAX);

    /// Builds a set containing exactly `id`.
    ///
    /// # Panics
    /// Panics if `id >= 64`.
    #[inline]
    pub fn single(id: ServerId) -> ServerSet {
        assert!((id as usize) < MAX_SERVERS, "server id {id} out of range");
        ServerSet(1u64 << id)
    }

    /// Builds a set containing slots `0..n`.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn first_n(n: usize) -> ServerSet {
        assert!(n <= MAX_SERVERS, "set size {n} out of range");
        if n == MAX_SERVERS {
            ServerSet::ALL
        } else {
            ServerSet((1u64 << n) - 1)
        }
    }

    /// Whether the set is empty. The resolution protocol branches on the
    /// emptiness of `V_h`, `V_p`, and `V_q` (§III-B1, steps 2–4).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of servers in the set.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, id: ServerId) -> bool {
        (id as usize) < MAX_SERVERS && self.0 & (1u64 << id) != 0
    }

    /// Inserts `id`, returning the new set.
    #[inline]
    #[must_use]
    pub fn with(self, id: ServerId) -> ServerSet {
        self | ServerSet::single(id)
    }

    /// Removes `id`, returning the new set.
    #[inline]
    #[must_use]
    pub fn without(self, id: ServerId) -> ServerSet {
        ServerSet(self.0 & !(1u64 << id))
    }

    /// Inserts `id` in place.
    #[inline]
    pub fn insert(&mut self, id: ServerId) {
        *self = self.with(id);
    }

    /// Removes `id` in place.
    #[inline]
    pub fn remove(&mut self, id: ServerId) {
        *self = self.without(id);
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: ServerSet) -> ServerSet {
        ServerSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: ServerSet) -> ServerSet {
        ServerSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    #[must_use]
    pub fn minus(self, other: ServerSet) -> ServerSet {
        ServerSet(self.0 & !other.0)
    }

    /// Complement within the 64-slot universe.
    #[inline]
    #[must_use]
    pub fn complement(self) -> ServerSet {
        ServerSet(!self.0)
    }

    /// Whether the two sets share no members.
    #[inline]
    pub fn is_disjoint(self, other: ServerSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether every member of `self` is in `other`.
    #[inline]
    pub fn is_subset(self, other: ServerSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The lowest-numbered member, if any. Used as a cheap deterministic
    /// pick when a selection policy does not apply.
    #[inline]
    pub fn first(self) -> Option<ServerId> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as ServerId)
        }
    }

    /// Iterates members in increasing slot order.
    #[inline]
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }
}

impl std::ops::BitOr for ServerSet {
    type Output = ServerSet;
    #[inline]
    fn bitor(self, rhs: ServerSet) -> ServerSet {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for ServerSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: ServerSet) {
        *self = self.union(rhs);
    }
}

impl std::ops::BitAnd for ServerSet {
    type Output = ServerSet;
    #[inline]
    fn bitand(self, rhs: ServerSet) -> ServerSet {
        self.intersect(rhs)
    }
}

impl std::ops::BitAndAssign for ServerSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: ServerSet) {
        *self = self.intersect(rhs);
    }
}

impl std::ops::Sub for ServerSet {
    type Output = ServerSet;
    #[inline]
    fn sub(self, rhs: ServerSet) -> ServerSet {
        self.minus(rhs)
    }
}

impl std::ops::Not for ServerSet {
    type Output = ServerSet;
    #[inline]
    fn not(self) -> ServerSet {
        self.complement()
    }
}

impl FromIterator<ServerId> for ServerSet {
    fn from_iter<T: IntoIterator<Item = ServerId>>(iter: T) -> ServerSet {
        let mut set = ServerSet::EMPTY;
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl IntoIterator for ServerSet {
    type Item = ServerId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over set members in increasing slot order.
#[derive(Clone)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = ServerId;

    #[inline]
    fn next(&mut self) -> Option<ServerId> {
        if self.0 == 0 {
            None
        } else {
            let id = self.0.trailing_zeros() as ServerId;
            self.0 &= self.0 - 1;
            Some(id)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl std::fmt::Debug for ServerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basics() {
        let mut s = ServerSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(63) && !s.contains(32));
        s.remove(0);
        assert_eq!(s.first(), Some(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn first_n() {
        assert_eq!(ServerSet::first_n(0), ServerSet::EMPTY);
        assert_eq!(ServerSet::first_n(64), ServerSet::ALL);
        assert_eq!(ServerSet::first_n(3).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        ServerSet::single(64);
    }

    #[test]
    fn debug_format() {
        let s: ServerSet = [1u8, 5, 9].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1,5,9}");
    }

    proptest! {
        #[test]
        fn union_intersect_laws(a: u64, b: u64) {
            let (sa, sb) = (ServerSet(a), ServerSet(b));
            // De Morgan.
            prop_assert_eq!(!(sa | sb), !sa & !sb);
            prop_assert_eq!(!(sa & sb), !sa | !sb);
            // Difference definition.
            prop_assert_eq!(sa - sb, sa & !sb);
            // Disjointness and subset coherence.
            prop_assert_eq!(sa.is_disjoint(sb), (sa & sb).is_empty());
            prop_assert!((sa & sb).is_subset(sa));
        }

        #[test]
        fn iter_roundtrip(a: u64) {
            let s = ServerSet(a);
            let rebuilt: ServerSet = s.iter().collect();
            prop_assert_eq!(rebuilt, s);
            prop_assert_eq!(s.iter().len() as u32, s.len());
        }

        #[test]
        fn insert_remove_inverse(a: u64, id in 0u8..64) {
            let s = ServerSet(a);
            prop_assert_eq!(s.with(id).without(id), s.without(id));
            prop_assert!(s.with(id).contains(id));
            prop_assert!(!s.without(id).contains(id));
        }
    }
}
