//! Foundation utilities for the Scalla reproduction.
//!
//! This crate contains the small, dependency-light building blocks the rest
//! of the workspace is built on:
//!
//! * [`crc32`](mod@crc32) — the CRC-32 file-name hash used as the location-cache key
//!   (§III-A1 of the paper).
//! * [`fib`] — Fibonacci table sizing. The paper sizes its hash table to a
//!   Fibonacci number of entries and grows to the *next* Fibonacci number at
//!   80 % load (§III-A1, footnote 4).
//! * [`server_set`] — the 64-bit server vectors (`V_h`, `V_p`, `V_q`, `V_m`,
//!   `V_c`) that encode sets of servers as one bit per cluster slot
//!   (§III-A1).
//! * [`clock`] — a time abstraction so the same cache and protocol code runs
//!   under a deterministic virtual clock (discrete-event experiments) or the
//!   real system clock (live threaded runtime).
//! * [`hist`] — a log-bucketed latency histogram used by the experiment
//!   harness.
//! * [`rng`] — a tiny deterministic SplitMix64 generator for places where a
//!   seeded, allocation-free stream is wanted without pulling `rand` into a
//!   core crate.

// `Nanos::div`/`Nanos::mul` and `Iter::next` are deliberate, simple names
// for saturating duration arithmetic and the set iterator; implementing the
// std operator traits for mixed Nanos/u64 operands would be noisier.
#![allow(clippy::should_implement_trait)]

pub mod clock;
pub mod crc32;
pub mod fib;
pub mod hist;
pub mod rng;
pub mod server_set;

pub use clock::{Clock, Nanos, SystemClock, VirtualClock};
pub use crc32::crc32;
pub use fib::{fib_at_least, is_fibonacci, FIBONACCI};
pub use hist::{bucket_of, bucket_value, Histogram, NBUCKETS};
pub use rng::SplitMix64;
pub use server_set::{ServerId, ServerSet, MAX_SERVERS};
