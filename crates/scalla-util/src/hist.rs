//! Log-bucketed latency histogram for the experiment harness.
//!
//! The experiments report latency distributions (mean, median, P99) across
//! many samples. A fixed array of power-of-two-ish buckets keeps recording
//! allocation-free and O(1), which matters because the harness records a
//! sample per simulated request.

use crate::clock::Nanos;

/// Number of sub-buckets per power of two (higher = finer resolution).
pub const SUBBUCKETS: usize = 8;
/// Covers values up to 2^40 ns (~18 minutes), far beyond any latency here.
pub const MAX_EXP: usize = 40;
/// Total bucket count shared by [`Histogram`] and external consumers (the
/// lock-free observability histogram mirrors this layout atomically).
pub const NBUCKETS: usize = MAX_EXP * SUBBUCKETS;

/// Bucket index for a raw sample value.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    // Index = exponent * SUBBUCKETS + top mantissa bits.
    let v = value.max(1);
    let exp = 63 - v.leading_zeros() as usize;
    let sub = if exp == 0 {
        0
    } else {
        ((v >> exp.saturating_sub(3)) & (SUBBUCKETS as u64 - 1)) as usize
    };
    (exp * SUBBUCKETS + sub).min(NBUCKETS - 1)
}

/// Lower-bound sample value represented by bucket `index`.
#[inline]
pub fn bucket_value(index: usize) -> u64 {
    let exp = index / SUBBUCKETS;
    let sub = (index % SUBBUCKETS) as u64;
    if exp == 0 {
        1
    } else {
        (1u64 << exp) + (sub << exp.saturating_sub(3))
    }
}

/// A histogram of `Nanos` samples with ~12 % relative bucket resolution.
///
/// ```
/// use scalla_util::{Histogram, Nanos};
///
/// let mut h = Histogram::new();
/// for us in [100u64, 150, 150, 5_000_000] {
///     h.record(Nanos::from_micros(us));
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.median() < Nanos::from_micros(200));
/// assert_eq!(h.max(), Nanos::from_micros(5_000_000));
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; NBUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: Box::new([0; NBUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: Nanos) {
        let v = sample.0;
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos((self.sum / self.count as u128) as u64)
        }
    }

    /// Smallest recorded sample, or zero if empty.
    pub fn min(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos(self.min)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Nanos {
        Nanos(self.max)
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket lower-bound estimate).
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return Nanos(bucket_value(i).clamp(self.min, self.max));
            }
        }
        self.max()
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Nanos {
        self.quantile(0.5)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Nanos {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.median(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.median(), Nanos::ZERO);
    }

    #[test]
    fn mean_exact() {
        let mut h = Histogram::new();
        h.record(Nanos(100));
        h.record(Nanos(300));
        assert_eq!(h.mean(), Nanos(200));
        assert_eq!(h.min(), Nanos(100));
        assert_eq!(h.max(), Nanos(300));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(Nanos(i * 137));
        }
        let p50 = h.median();
        let p90 = h.quantile(0.9);
        let p99 = h.p99();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max());
        assert!(h.min() <= p50);
        // Median within bucket resolution (~12 %) of the true median.
        let true_median = 5_000 * 137;
        let err = (p50.0 as f64 - true_median as f64).abs() / true_median as f64;
        assert!(err < 0.15, "median error {err}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Nanos(10));
        b.record(Nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Nanos(10));
        assert_eq!(a.max(), Nanos(1_000_000));
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(Nanos(0));
        h.record(Nanos(u64::MAX));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) <= h.max());
    }
}
