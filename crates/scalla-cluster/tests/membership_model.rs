//! Model-based test of the membership state machine (§III-A4 cases 1–4):
//! arbitrary login/disconnect/drop-check sequences against a simple model
//! tracking per-name status.

use proptest::prelude::*;
use scalla_cluster::{LoginOutcome, Membership, MembershipConfig};
use scalla_util::Nanos;
use std::collections::HashMap;

const NAMES: u8 = 12;

#[derive(Debug, Clone)]
enum Op {
    Login { name: u8, exports_variant: bool },
    Disconnect { name: u8 },
    Advance { secs: u16 },
    CheckDrops,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..NAMES, any::<bool>())
            .prop_map(|(name, exports_variant)| Op::Login { name, exports_variant }),
        2 => (0..NAMES).prop_map(|name| Op::Disconnect { name }),
        3 => (1u16..90).prop_map(|secs| Op::Advance { secs }),
        2 => Just(Op::CheckDrops),
    ]
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum ModelState {
    Active { variant: bool },
    Offline { since: Nanos, variant: bool },
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn membership_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let drop_after = Nanos::from_secs(60);
        let mut m = Membership::new(MembershipConfig { drop_after });
        let mut now = Nanos::ZERO;
        let mut model: HashMap<u8, ModelState> = HashMap::new();

        for op in ops {
            match op {
                Op::Login { name, exports_variant } => {
                    let exports = if exports_variant {
                        vec!["/a".to_string(), "/b".to_string()]
                    } else {
                        vec!["/a".to_string()]
                    };
                    let out = m.login(&format!("srv-{name}"), &exports, now);
                    match model.get(&name).copied() {
                        None => {
                            // New member (or ClusterFull, impossible here:
                            // <= 12 names <= 64 slots).
                            prop_assert!(matches!(out, LoginOutcome::New(_)), "{out:?}");
                            model.insert(name, ModelState::Active { variant: exports_variant });
                        }
                        Some(ModelState::Active { variant })
                        | Some(ModelState::Offline { variant, .. }) => {
                            if variant == exports_variant {
                                prop_assert!(
                                    matches!(out, LoginOutcome::Reconnected(_)),
                                    "same exports must be case 3: {out:?}"
                                );
                            } else {
                                prop_assert!(
                                    matches!(out, LoginOutcome::ReconnectedNewPaths(_)),
                                    "changed exports are a new connection: {out:?}"
                                );
                            }
                            model.insert(name, ModelState::Active { variant: exports_variant });
                        }
                    }
                }
                Op::Disconnect { name } => {
                    if let Some(ModelState::Active { variant }) = model.get(&name).copied() {
                        // Find the slot by probing active set membership.
                        let before = m.active();
                        // Disconnect every slot whose meta name matches.
                        for slot in before {
                            if m.meta(slot).map(|x| x.name == format!("srv-{name}")) == Some(true) {
                                m.disconnect(slot, now);
                            }
                        }
                        model.insert(name, ModelState::Offline { since: now, variant });
                    }
                }
                Op::Advance { secs } => {
                    now += Nanos::from_secs(u64::from(secs));
                }
                Op::CheckDrops => {
                    let dropped = m.check_drops(now);
                    // Model: offline entries past the limit disappear.
                    let mut expected = 0;
                    model.retain(|_, s| match *s {
                        ModelState::Offline { since, .. }
                            if now.since(since) > drop_after =>
                        {
                            expected += 1;
                            false
                        }
                        _ => true,
                    });
                    prop_assert_eq!(dropped.len() as usize, expected);
                }
            }
            // Set cardinalities always agree with the model.
            let model_active =
                model.values().filter(|s| matches!(s, ModelState::Active { .. })).count();
            let model_offline =
                model.values().filter(|s| matches!(s, ModelState::Offline { .. })).count();
            prop_assert_eq!(m.active().len() as usize, model_active);
            prop_assert_eq!(m.offline().len() as usize, model_offline);
            // V_m only ever contains members.
            let members = m.active() | m.offline();
            prop_assert!(m.vm_for("/a/x").is_subset(members));
            prop_assert!(m.vm_for("/b/x").is_subset(members));
        }
    }
}
