//! Cluster management for the Scalla reproduction (§II-B, §III-A4).
//!
//! A cmsd tracks up to 64 direct subordinates. This crate provides the
//! state around the location cache:
//!
//! * [`paths`] — the export-prefix table mapping a requested file path to
//!   the eligibility vector `V_m` ("Each exported path is associated with a
//!   `V_m` that defines the servers eligible for that path", §III-A4).
//! * [`member`] — the server lifecycle: login, disconnect, reconnect-
//!   within-drop-window, and drop (§III-A4 cases 1–4). Registration is
//!   deliberately light: a server declares only its path prefixes, never a
//!   file manifest (§V).
//! * [`select`] — server selection "based on configuration defined criteria
//!   (e.g., load, selection frequency, space, etc.)" (§II-B3).
//! * [`topology`] — the 64-ary tree layout: sets of 64 nodes, supervisors
//!   above them, a manager at the root; `O(log64 N)` levels (§II-B1).

pub mod member;
pub mod paths;
pub mod select;
pub mod topology;

pub use member::{LoginOutcome, Membership, MembershipConfig, ServerMeta};
pub use paths::ExportTable;
pub use select::{SelectionPolicy, Selector};
pub use topology::{NodeId, NodeRole, TreeSpec};
