//! 64-ary tree topology (§II-B1).
//!
//! "Nodes are clustered in sets of 64 and the sets are arranged in a 64-ary
//! tree. As long as linear algorithms are employed, it takes only O(1) time
//! per set or tree node to locate a file. It follows that the upper time
//! limit in any sized cluster is O(log64(number of servers))."
//!
//! [`TreeSpec`] computes the layout — which data servers sit under which
//! supervisor, and supervisors under the manager (or higher supervisors) —
//! for any server count. The runtimes (simnet and live threads) instantiate
//! nodes from this spec.

/// Global node identifier within one cluster layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

/// Role of a node in the tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeRole {
    /// The logical head node clients contact first ("which can be one of
    /// many" — replication handled at the runtime layer).
    Manager,
    /// An interior cmsd aggregating up to 64 subordinates.
    Supervisor,
    /// A leaf data server (xrootd + cmsd pair).
    Server,
}

/// One node in the layout.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// This node's id.
    pub id: NodeId,
    /// Role in the tree.
    pub role: NodeRole,
    /// Parent node (`None` for the manager).
    pub parent: Option<NodeId>,
    /// Slot number (0–63) this node occupies in its parent's set.
    pub slot: u8,
    /// Children, at most `fanout`.
    pub children: Vec<NodeId>,
}

/// A complete cluster layout.
pub struct TreeSpec {
    /// All nodes; index == `NodeId.0`.
    pub nodes: Vec<NodeSpec>,
    /// Ids of the leaf data servers, in creation order.
    pub servers: Vec<NodeId>,
    /// The manager node id (always `NodeId(0)`).
    pub manager: NodeId,
    fanout: usize,
}

impl TreeSpec {
    /// Builds the minimal-depth layout for `n_servers` leaves with the
    /// given fanout (64 in Scalla; smaller values are useful in tests).
    ///
    /// The manager is the root. If `n_servers <= fanout` the servers attach
    /// directly to the manager; otherwise layers of supervisors are
    /// inserted so no node exceeds `fanout` children.
    ///
    /// ```
    /// use scalla_cluster::TreeSpec;
    /// // 200 servers at the paper's fanout: one supervisor level.
    /// let spec = TreeSpec::build(200, 64);
    /// assert_eq!(spec.depth(), 2);
    /// assert_eq!(spec.servers.len(), 200);
    /// // 64^2 = 4096 servers still fit in two levels.
    /// assert_eq!(TreeSpec::build(4096, 64).depth(), 2);
    /// ```
    ///
    /// # Panics
    /// Panics if `n_servers == 0` or `fanout < 2`.
    pub fn build(n_servers: usize, fanout: usize) -> TreeSpec {
        assert!(n_servers > 0, "cluster needs at least one server");
        assert!(fanout >= 2, "fanout must be at least 2");

        let mut spec = TreeSpec {
            nodes: vec![NodeSpec {
                id: NodeId(0),
                role: NodeRole::Manager,
                parent: None,
                slot: 0,
                children: Vec::new(),
            }],
            servers: Vec::new(),
            manager: NodeId(0),
            fanout,
        };

        // Number of supervisor levels below the manager so that
        // fanout^(levels+1) >= n_servers.
        let mut levels = 0usize;
        let mut capacity = fanout;
        while capacity < n_servers {
            levels += 1;
            capacity *= fanout;
        }

        // Breadth-first construction of interior levels.
        let mut frontier = vec![NodeId(0)];
        for level in 0..levels {
            // Leaves each frontier node must eventually cover.
            let per_parent_capacity = fanout.pow((levels - level) as u32);
            let mut next = Vec::new();
            let mut remaining = n_servers;
            'outer: for &parent in &frontier {
                for _ in 0..fanout {
                    if remaining == 0 {
                        break 'outer;
                    }
                    let sup = spec.add_node(NodeRole::Supervisor, parent);
                    next.push(sup);
                    remaining = remaining.saturating_sub(per_parent_capacity);
                }
            }
            frontier = next;
        }

        // Attach servers to the frontier round-robin-by-capacity.
        let mut frontier_iter = frontier.iter().copied();
        let mut current = frontier_iter.next().expect("frontier never empty");
        for _ in 0..n_servers {
            if spec.nodes[current.0 as usize].children.len() == fanout {
                current = frontier_iter.next().expect("capacity computed above");
            }
            let server = spec.add_node(NodeRole::Server, current);
            spec.servers.push(server);
        }
        spec
    }

    fn add_node(&mut self, role: NodeRole, parent: NodeId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let slot = self.nodes[parent.0 as usize].children.len() as u8;
        self.nodes[parent.0 as usize].children.push(id);
        self.nodes.push(NodeSpec { id, role, parent: Some(parent), slot, children: Vec::new() });
        id
    }

    /// The configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.0 as usize]
    }

    /// Number of tree levels below the manager (1 when servers attach
    /// directly). This is the number of redirect hops a client performs.
    pub fn depth(&self) -> usize {
        let mut depth = 0;
        let mut id = self.servers[0];
        while let Some(parent) = self.node(id).parent {
            depth += 1;
            id = parent;
        }
        depth
    }

    /// Total interior (manager + supervisor) nodes.
    pub fn interior_count(&self) -> usize {
        self.nodes.len() - self.servers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_cluster_attaches_to_manager() {
        let t = TreeSpec::build(10, 64);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.servers.len(), 10);
        assert_eq!(t.node(t.manager).children.len(), 10);
        assert_eq!(t.interior_count(), 1);
    }

    #[test]
    fn exactly_fanout_still_flat() {
        let t = TreeSpec::build(64, 64);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.interior_count(), 1);
    }

    #[test]
    fn one_level_of_supervisors() {
        let t = TreeSpec::build(65, 64);
        assert_eq!(t.depth(), 2);
        // Two supervisors needed: 64 + 1 servers.
        assert_eq!(t.interior_count(), 1 + 2);
        for node in &t.nodes {
            assert!(node.children.len() <= 64, "fanout violated");
        }
    }

    #[test]
    fn depth_is_log_fanout() {
        // The paper's O(log64 N) claim in miniature with fanout 4.
        assert_eq!(TreeSpec::build(4, 4).depth(), 1);
        assert_eq!(TreeSpec::build(5, 4).depth(), 2);
        assert_eq!(TreeSpec::build(16, 4).depth(), 2);
        assert_eq!(TreeSpec::build(17, 4).depth(), 3);
        assert_eq!(TreeSpec::build(64, 4).depth(), 3);
    }

    #[test]
    fn all_servers_reachable_and_slots_unique() {
        let t = TreeSpec::build(300, 8);
        assert_eq!(t.servers.len(), 300);
        for node in &t.nodes {
            // Slots within a parent are distinct and dense.
            let slots: Vec<u8> = node.children.iter().map(|c| t.node(*c).slot).collect();
            for (i, &s) in slots.iter().enumerate() {
                assert_eq!(s as usize, i);
            }
            // Children point back at the parent.
            for &c in &node.children {
                assert_eq!(t.node(c).parent, Some(node.id));
            }
        }
        // Every server walks up to the manager.
        for &s in &t.servers {
            let mut id = s;
            let mut hops = 0;
            while let Some(p) = t.node(id).parent {
                id = p;
                hops += 1;
                assert!(hops <= 10, "cycle or runaway depth");
            }
            assert_eq!(id, t.manager);
        }
    }

    #[test]
    fn large_cluster_depth_matches_paper() {
        // 262144 = 64^3 servers: depth 3, the O(log64 N) growth.
        let t = TreeSpec::build(64 * 64, 64);
        assert_eq!(t.depth(), 2);
        let t = TreeSpec::build(64 * 64 + 1, 64);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_servers_rejected() {
        TreeSpec::build(0, 64);
    }
}
