//! Server selection (§II-B3).
//!
//! "If more than one node has the file, a selection is made based on
//! configuration defined criteria (e.g., load, selection frequency, space,
//! etc.)." The policy operates on the candidate `ServerSet` a resolution
//! produced, consulting the membership metadata, and is deliberately cheap:
//! one pass over at most 64 candidates.

use crate::member::Membership;
use scalla_util::{ServerId, ServerSet, SplitMix64};

/// The selection criterion in force.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Rotate through candidates (stateful round-robin).
    #[default]
    RoundRobin,
    /// Uniformly random candidate.
    Random,
    /// Candidate with the lowest reported load.
    LeastLoad,
    /// Candidate selected the fewest times so far (selection frequency).
    LeastSelected,
    /// Candidate with the most free space.
    MostFreeSpace,
}

/// A stateful selector. One per cmsd node.
pub struct Selector {
    policy: SelectionPolicy,
    rng: SplitMix64,
    rr_cursor: u8,
}

impl Selector {
    /// Creates a selector with a deterministic seed.
    pub fn new(policy: SelectionPolicy, seed: u64) -> Selector {
        Selector { policy, rng: SplitMix64::new(seed), rr_cursor: 0 }
    }

    /// The policy in force.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Picks one of `candidates` (must be non-empty to return `Some`),
    /// recording the selection in `members` for frequency accounting.
    pub fn select(&mut self, candidates: ServerSet, members: &mut Membership) -> Option<ServerId> {
        let pick = self.pick(candidates, members)?;
        members.note_selected(pick);
        Some(pick)
    }

    fn pick(&mut self, candidates: ServerSet, members: &Membership) -> Option<ServerId> {
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            SelectionPolicy::Random => self.rng.pick_bit(candidates.0),
            SelectionPolicy::RoundRobin => {
                // First candidate at or after the cursor, wrapping.
                let rotated = candidates.0.rotate_right(self.rr_cursor as u32);
                let off = rotated.trailing_zeros() as u8;
                let id = (self.rr_cursor + off) % 64;
                self.rr_cursor = (id + 1) % 64;
                Some(id)
            }
            SelectionPolicy::LeastLoad => candidates
                .iter()
                .min_by_key(|&id| members.meta(id).map(|m| m.load).unwrap_or(u32::MAX)),
            SelectionPolicy::LeastSelected => candidates
                .iter()
                .min_by_key(|&id| members.meta(id).map(|m| m.selections).unwrap_or(u64::MAX)),
            SelectionPolicy::MostFreeSpace => candidates
                .iter()
                .max_by_key(|&id| members.meta(id).map(|m| m.free_bytes).unwrap_or(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MembershipConfig;
    use scalla_util::Nanos;

    fn members(n: usize) -> Membership {
        let mut m = Membership::new(MembershipConfig::default());
        for i in 0..n {
            m.login(&format!("srv-{i}"), &["/d".to_string()], Nanos::ZERO);
        }
        m
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut m = members(2);
        let mut s = Selector::new(SelectionPolicy::Random, 1);
        assert_eq!(s.select(ServerSet::EMPTY, &mut m), None);
    }

    #[test]
    fn round_robin_cycles_through_all() {
        let mut m = members(4);
        let mut s = Selector::new(SelectionPolicy::RoundRobin, 0);
        let candidates = ServerSet::first_n(4);
        let picks: Vec<ServerId> = (0..8).map(|_| s.select(candidates, &mut m).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_non_candidates() {
        let mut m = members(8);
        let mut s = Selector::new(SelectionPolicy::RoundRobin, 0);
        let candidates = ServerSet(0b1010_0010); // {1, 5, 7}
        let picks: Vec<ServerId> = (0..6).map(|_| s.select(candidates, &mut m).unwrap()).collect();
        assert_eq!(picks, vec![1, 5, 7, 1, 5, 7]);
    }

    #[test]
    fn least_load_picks_minimum() {
        let mut m = members(3);
        m.report_load(0, 90, 0);
        m.report_load(1, 10, 0);
        m.report_load(2, 50, 0);
        let mut s = Selector::new(SelectionPolicy::LeastLoad, 0);
        assert_eq!(s.select(ServerSet::first_n(3), &mut m), Some(1));
    }

    #[test]
    fn least_selected_balances() {
        let mut m = members(3);
        let mut s = Selector::new(SelectionPolicy::LeastSelected, 0);
        let candidates = ServerSet::first_n(3);
        let mut counts = [0u32; 3];
        for _ in 0..30 {
            counts[s.select(candidates, &mut m).unwrap() as usize] += 1;
        }
        assert_eq!(counts, [10, 10, 10], "selection frequency must equalize");
    }

    #[test]
    fn most_free_space_picks_maximum() {
        let mut m = members(3);
        m.report_load(0, 0, 100);
        m.report_load(1, 0, 900);
        m.report_load(2, 0, 500);
        let mut s = Selector::new(SelectionPolicy::MostFreeSpace, 0);
        assert_eq!(s.select(ServerSet::first_n(3), &mut m), Some(1));
    }

    #[test]
    fn random_only_picks_candidates() {
        let mut m = members(8);
        let mut s = Selector::new(SelectionPolicy::Random, 7);
        let candidates = ServerSet(0b0101_0101);
        for _ in 0..100 {
            let pick = s.select(candidates, &mut m).unwrap();
            assert!(candidates.contains(pick));
        }
    }
}
