//! Server membership lifecycle (§III-A4).
//!
//! The paper enumerates four occurrences after location information is
//! cached:
//!
//! 1. a server **disconnects** — it is "simply marked as being offline",
//!    still part of the cluster, in the hope it reconnects;
//! 2. a server is **dropped** — it stayed offline past the drop time limit
//!    (or reconnected with different exports); its cached information is
//!    invalid and it is removed from every `V_m`;
//! 3. an un-dropped server **reconnects** — existing cached information
//!    remains valid, information cached since the disconnect is incomplete
//!    (the connect log handles the correction);
//! 4. a **new server connects** — older cached objects are incomplete until
//!    corrected.
//!
//! Every (re)connect must be recorded in the cache's `ConnectLog`; the
//! [`LoginOutcome`] tells the caller exactly which side effects to apply so
//! this crate stays independent of the cache crate.

use crate::paths::ExportTable;
use scalla_util::{Nanos, ServerId, ServerSet, MAX_SERVERS};

/// Membership tuning.
#[derive(Clone, Debug)]
pub struct MembershipConfig {
    /// How long a disconnected server is kept (offline) before being
    /// dropped from the cluster.
    pub drop_after: Nanos,
}

impl Default for MembershipConfig {
    fn default() -> MembershipConfig {
        // XRootD's production default drop delay is 10 minutes.
        MembershipConfig { drop_after: Nanos::from_mins(10) }
    }
}

/// Per-server dynamic metadata used by selection policies.
#[derive(Clone, Debug, Default)]
pub struct ServerMeta {
    /// Stable server name (host identity across reconnects).
    pub name: String,
    /// Load figure reported by the server (lower is better).
    pub load: u32,
    /// Free space in bytes (higher is better).
    pub free_bytes: u64,
    /// How many times selection has picked this server.
    pub selections: u64,
}

#[derive(Clone, Debug)]
enum SlotState {
    Empty,
    Active,
    Offline { since: Nanos },
}

#[derive(Clone, Debug)]
struct Slot {
    state: SlotState,
    meta: ServerMeta,
    exports: Vec<String>,
}

impl Slot {
    fn empty() -> Slot {
        Slot { state: SlotState::Empty, meta: ServerMeta::default(), exports: Vec::new() }
    }
}

/// What a login did, so the caller can apply the right cache side effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoginOutcome {
    /// A brand-new cluster member (§III-A4 case 4).
    New(ServerId),
    /// An un-dropped server reconnected with unchanged exports (case 3).
    Reconnected(ServerId),
    /// The server reconnected with *different* exports and was therefore
    /// treated as a new connection (its old cached info was invalidated by
    /// re-registering the exports).
    ReconnectedNewPaths(ServerId),
    /// No free slot: the 64-subordinate set is full and the caller should
    /// redirect the server to another supervisor.
    ClusterFull,
}

impl LoginOutcome {
    /// The assigned slot, if any.
    pub fn id(&self) -> Option<ServerId> {
        match *self {
            LoginOutcome::New(id)
            | LoginOutcome::Reconnected(id)
            | LoginOutcome::ReconnectedNewPaths(id) => Some(id),
            LoginOutcome::ClusterFull => None,
        }
    }
}

/// The 64-slot membership table of one cmsd.
pub struct Membership {
    slots: Vec<Slot>,
    config: MembershipConfig,
    exports: ExportTable,
}

impl Membership {
    /// Creates an empty membership table.
    pub fn new(config: MembershipConfig) -> Membership {
        Membership {
            slots: (0..MAX_SERVERS).map(|_| Slot::empty()).collect(),
            config,
            exports: ExportTable::new(),
        }
    }

    /// The export table (for `V_m` lookups).
    pub fn exports(&self) -> &ExportTable {
        &self.exports
    }

    /// `V_m` for a path — convenience passthrough.
    pub fn vm_for(&self, path: &str) -> ServerSet {
        self.exports.vm_for(path)
    }

    /// Servers currently active (connected).
    pub fn active(&self) -> ServerSet {
        self.collect(|s| matches!(s.state, SlotState::Active))
    }

    /// Servers disconnected but not yet dropped.
    pub fn offline(&self) -> ServerSet {
        self.collect(|s| matches!(s.state, SlotState::Offline { .. }))
    }

    fn collect(&self, f: impl Fn(&Slot) -> bool) -> ServerSet {
        let mut set = ServerSet::EMPTY;
        for (i, s) in self.slots.iter().enumerate() {
            if f(s) {
                set.insert(i as ServerId);
            }
        }
        set
    }

    fn find_by_name(&self, name: &str) -> Option<ServerId> {
        self.slots
            .iter()
            .position(|s| !matches!(s.state, SlotState::Empty) && s.meta.name == name)
            .map(|i| i as ServerId)
    }

    fn free_slot(&self) -> Option<ServerId> {
        self.slots.iter().position(|s| matches!(s.state, SlotState::Empty)).map(|i| i as ServerId)
    }

    /// Handles a server login. The caller must afterwards call
    /// `ConnectLog::note_connect(id)` (via the cache) for any outcome that
    /// yields an id — "Login is also the time that the server is added to
    /// `V_c`" (§III-A4).
    pub fn login(&mut self, name: &str, exports: &[String], _now: Nanos) -> LoginOutcome {
        if let Some(id) = self.find_by_name(name) {
            let same_exports = {
                let slot = &self.slots[id as usize];
                let mut a = slot.exports.clone();
                let mut b = exports.to_vec();
                a.sort();
                b.sort();
                a == b
            };
            if same_exports {
                self.slots[id as usize].state = SlotState::Active;
                return LoginOutcome::Reconnected(id);
            }
            // "If the server reconnects within the drop time limit but has
            // a new set of exported paths the reconnection is also treated
            // as a new connection."
            self.exports.remove_server(id);
            let slot = &mut self.slots[id as usize];
            slot.state = SlotState::Active;
            slot.exports = exports.to_vec();
            self.exports.login(id, exports);
            return LoginOutcome::ReconnectedNewPaths(id);
        }
        let Some(id) = self.free_slot() else {
            return LoginOutcome::ClusterFull;
        };
        let slot = &mut self.slots[id as usize];
        slot.state = SlotState::Active;
        slot.meta = ServerMeta { name: name.to_string(), ..ServerMeta::default() };
        slot.exports = exports.to_vec();
        self.exports.login(id, exports);
        LoginOutcome::New(id)
    }

    /// Marks a server offline (case 1). It remains a cluster member.
    pub fn disconnect(&mut self, id: ServerId, now: Nanos) {
        let slot = &mut self.slots[id as usize];
        if matches!(slot.state, SlotState::Active) {
            slot.state = SlotState::Offline { since: now };
        }
    }

    /// Marks an offline server active again without a full login (case 3,
    /// observed implicitly: traffic from the server proves it is alive
    /// before its Login arrives). Returns `true` when the slot actually
    /// transitioned Offline→Active, so the caller can count the recovery.
    pub fn revive(&mut self, id: ServerId) -> bool {
        let slot = &mut self.slots[id as usize];
        if matches!(slot.state, SlotState::Offline { .. }) {
            slot.state = SlotState::Active;
            true
        } else {
            false
        }
    }

    /// Drops every server that has been offline longer than the configured
    /// limit (case 2). Returns the dropped set; their bits are removed from
    /// every `V_m` here, and the caller should purge selection state.
    pub fn check_drops(&mut self, now: Nanos) -> ServerSet {
        let mut dropped = ServerSet::EMPTY;
        for i in 0..self.slots.len() {
            if let SlotState::Offline { since } = self.slots[i].state {
                if now.since(since) > self.config.drop_after {
                    dropped.insert(i as ServerId);
                    self.exports.remove_server(i as ServerId);
                    self.slots[i] = Slot::empty();
                }
            }
        }
        dropped
    }

    /// Updates a server's selection metrics (load report / heartbeat).
    pub fn report_load(&mut self, id: ServerId, load: u32, free_bytes: u64) {
        let slot = &mut self.slots[id as usize];
        slot.meta.load = load;
        slot.meta.free_bytes = free_bytes;
    }

    /// Counts a selection against `id` (selection-frequency policy input).
    pub fn note_selected(&mut self, id: ServerId) {
        self.slots[id as usize].meta.selections += 1;
    }

    /// Read access to a server's metadata; `None` for empty slots.
    pub fn meta(&self, id: ServerId) -> Option<&ServerMeta> {
        let slot = &self.slots[id as usize];
        if matches!(slot.state, SlotState::Empty) {
            None
        } else {
            Some(&slot.meta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MembershipConfig {
        MembershipConfig { drop_after: Nanos::from_secs(60) }
    }

    fn exports(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn login_assigns_slots_and_exports() {
        let mut m = Membership::new(cfg());
        let a = m.login("srv-a", &exports(&["/data"]), Nanos::ZERO);
        let b = m.login("srv-b", &exports(&["/data", "/mc"]), Nanos::ZERO);
        assert_eq!(a, LoginOutcome::New(0));
        assert_eq!(b, LoginOutcome::New(1));
        assert_eq!(m.vm_for("/data/f"), ServerSet(0b11));
        assert_eq!(m.vm_for("/mc/f"), ServerSet(0b10));
        assert_eq!(m.active(), ServerSet(0b11));
    }

    #[test]
    fn disconnect_keeps_membership_until_drop() {
        let mut m = Membership::new(cfg());
        m.login("srv-a", &exports(&["/data"]), Nanos::ZERO);
        m.disconnect(0, Nanos::from_secs(10));
        assert_eq!(m.offline(), ServerSet::single(0));
        // Still a member: V_m keeps the bit.
        assert_eq!(m.vm_for("/data/f"), ServerSet::single(0));
        // Within the limit: not dropped.
        assert_eq!(m.check_drops(Nanos::from_secs(50)), ServerSet::EMPTY);
        // Past the limit: dropped, V_m cleared.
        assert_eq!(m.check_drops(Nanos::from_secs(80)), ServerSet::single(0));
        assert_eq!(m.vm_for("/data/f"), ServerSet::EMPTY);
        assert!(m.meta(0).is_none());
    }

    #[test]
    fn reconnect_same_exports_is_case_3() {
        let mut m = Membership::new(cfg());
        m.login("srv-a", &exports(&["/data"]), Nanos::ZERO);
        m.disconnect(0, Nanos::from_secs(1));
        let out = m.login("srv-a", &exports(&["/data"]), Nanos::from_secs(5));
        assert_eq!(out, LoginOutcome::Reconnected(0));
        assert_eq!(m.active(), ServerSet::single(0));
        assert_eq!(m.offline(), ServerSet::EMPTY);
    }

    #[test]
    fn reconnect_with_new_exports_is_new_connection() {
        let mut m = Membership::new(cfg());
        m.login("srv-a", &exports(&["/data"]), Nanos::ZERO);
        m.disconnect(0, Nanos::from_secs(1));
        let out = m.login("srv-a", &exports(&["/other"]), Nanos::from_secs(5));
        assert_eq!(out, LoginOutcome::ReconnectedNewPaths(0));
        assert_eq!(m.vm_for("/data/f"), ServerSet::EMPTY);
        assert_eq!(m.vm_for("/other/f"), ServerSet::single(0));
    }

    #[test]
    fn dropped_server_rejoins_as_new() {
        let mut m = Membership::new(cfg());
        m.login("srv-a", &exports(&["/data"]), Nanos::ZERO);
        m.disconnect(0, Nanos::ZERO);
        m.check_drops(Nanos::from_secs(120));
        let out = m.login("srv-a", &exports(&["/data"]), Nanos::from_secs(130));
        assert_eq!(out, LoginOutcome::New(0), "dropped => treated as new");
    }

    #[test]
    fn cluster_full_after_64_servers() {
        let mut m = Membership::new(cfg());
        for i in 0..64 {
            assert!(matches!(
                m.login(&format!("srv-{i}"), &exports(&["/d"]), Nanos::ZERO),
                LoginOutcome::New(_)
            ));
        }
        assert_eq!(
            m.login("srv-overflow", &exports(&["/d"]), Nanos::ZERO),
            LoginOutcome::ClusterFull
        );
        assert_eq!(m.active().len(), 64);
    }

    #[test]
    fn slot_reuse_after_drop() {
        let mut m = Membership::new(cfg());
        m.login("srv-a", &exports(&["/a"]), Nanos::ZERO);
        m.login("srv-b", &exports(&["/b"]), Nanos::ZERO);
        m.disconnect(0, Nanos::ZERO);
        m.check_drops(Nanos::from_secs(120));
        let out = m.login("srv-c", &exports(&["/c"]), Nanos::from_secs(121));
        assert_eq!(out, LoginOutcome::New(0), "freed slot is reused");
    }

    #[test]
    fn revive_restores_offline_members_only() {
        let mut m = Membership::new(cfg());
        m.login("srv-a", &exports(&["/a"]), Nanos::ZERO);
        m.login("srv-b", &exports(&["/b"]), Nanos::ZERO);
        m.disconnect(0, Nanos::from_secs(1));
        assert!(m.revive(0), "offline -> active counts as a recovery");
        assert_eq!(m.active(), ServerSet(0b11));
        assert_eq!(m.offline(), ServerSet::EMPTY);
        // Already-active and empty slots are not "revived".
        assert!(!m.revive(1));
        assert!(!m.revive(7));
        // Exports survived the round trip.
        assert_eq!(m.vm_for("/a/f"), ServerSet::single(0));
    }

    #[test]
    fn load_reports_update_meta() {
        let mut m = Membership::new(cfg());
        m.login("srv-a", &exports(&["/a"]), Nanos::ZERO);
        m.report_load(0, 42, 1 << 30);
        m.note_selected(0);
        let meta = m.meta(0).unwrap();
        assert_eq!(meta.load, 42);
        assert_eq!(meta.free_bytes, 1 << 30);
        assert_eq!(meta.selections, 1);
    }
}
