//! The export-prefix table: path → `V_m` (§III-A4).
//!
//! At login a server "declares the paths it exports". Paths at the manager
//! and supervisor level are "treated as simple prefixes to a file name;
//! essentially providing a flat namespace" (§II-B4). A server is eligible
//! for a file when it exports some prefix of the file's path; `V_m` for a
//! path is the union of all matching prefixes' server sets. Registration
//! and deregistration are O(#prefixes), never O(#files) — the property §V
//! contrasts with GFS-style manifest uploads.

use scalla_util::{ServerId, ServerSet};
use std::collections::HashMap;

/// Prefix → eligible-server table.
///
/// ```
/// use scalla_cluster::ExportTable;
/// use scalla_util::ServerSet;
///
/// let mut t = ExportTable::new();
/// t.add_export(0, "/atlas");
/// t.add_export(1, "/atlas/data");
/// // V_m for a path is the union over matching component prefixes.
/// assert_eq!(t.vm_for("/atlas/data/run1/f.root"), ServerSet(0b11));
/// assert_eq!(t.vm_for("/atlas/mc/f.root"), ServerSet(0b01));
/// assert_eq!(t.vm_for("/cms/f.root"), ServerSet::EMPTY);
/// ```
#[derive(Default, Debug, Clone)]
pub struct ExportTable {
    prefixes: HashMap<String, ServerSet>,
}

/// Normalizes a prefix: guarantees a leading `/` and strips a trailing one
/// (except for the root itself).
fn normalize(prefix: &str) -> String {
    let mut p = String::with_capacity(prefix.len() + 1);
    if !prefix.starts_with('/') {
        p.push('/');
    }
    p.push_str(prefix);
    while p.len() > 1 && p.ends_with('/') {
        p.pop();
    }
    p
}

impl ExportTable {
    /// Creates an empty table.
    pub fn new() -> ExportTable {
        ExportTable::default()
    }

    /// Registers `server` as exporting `prefix`.
    pub fn add_export(&mut self, server: ServerId, prefix: &str) {
        self.prefixes.entry(normalize(prefix)).or_default().insert(server);
    }

    /// Registers a server's full export list (login).
    pub fn login(&mut self, server: ServerId, prefixes: &[String]) {
        for p in prefixes {
            self.add_export(server, p);
        }
    }

    /// Removes `server` from every prefix (drop, §III-A4 case 2). Empty
    /// prefixes are discarded.
    pub fn remove_server(&mut self, server: ServerId) {
        self.prefixes.retain(|_, set| {
            set.remove(server);
            !set.is_empty()
        });
    }

    /// Computes `V_m` for a file path: the union of server sets over every
    /// registered prefix that is a path-component prefix of `path`.
    ///
    /// This walks the path's components (O(path depth), independent of the
    /// number of files or prefixes), preserving the paper's "extremely
    /// light" lookup property.
    pub fn vm_for(&self, path: &str) -> ServerSet {
        let path = normalize(path);
        let mut vm = ServerSet::EMPTY;
        if let Some(&set) = self.prefixes.get("/") {
            vm |= set;
        }
        // Check every component boundary: /a, /a/b, /a/b/c ...
        let bytes = path.as_bytes();
        for i in 1..=bytes.len() {
            if i == bytes.len() || bytes[i] == b'/' {
                if let Some(&set) = self.prefixes.get(&path[..i]) {
                    vm |= set;
                }
            }
        }
        vm
    }

    /// All distinct prefixes currently exported (diagnostics).
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    /// The set of servers exporting at least one prefix.
    pub fn all_servers(&self) -> ServerSet {
        self.prefixes.values().fold(ServerSet::EMPTY, |acc, &s| acc | s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_by_component() {
        let mut t = ExportTable::new();
        t.add_export(0, "/atlas");
        t.add_export(1, "/atlas/data");
        t.add_export(2, "/cms");
        assert_eq!(t.vm_for("/atlas/data/run1/f.root"), ServerSet(0b011));
        assert_eq!(t.vm_for("/atlas/mc/f.root"), ServerSet(0b001));
        assert_eq!(t.vm_for("/cms/f.root"), ServerSet(0b100));
        assert_eq!(t.vm_for("/alice/f.root"), ServerSet::EMPTY);
        // "/atlasx" must NOT match the "/atlas" prefix: component boundary.
        assert_eq!(t.vm_for("/atlasx/f.root"), ServerSet::EMPTY);
    }

    #[test]
    fn root_export_matches_everything() {
        let mut t = ExportTable::new();
        t.add_export(5, "/");
        assert_eq!(t.vm_for("/any/thing"), ServerSet::single(5));
        assert_eq!(t.vm_for("/"), ServerSet::single(5));
    }

    #[test]
    fn normalization() {
        let mut t = ExportTable::new();
        t.add_export(1, "atlas/");
        assert_eq!(t.vm_for("/atlas/f"), ServerSet::single(1));
        t.add_export(2, "/atlas");
        assert_eq!(t.prefix_count(), 1, "equivalent prefixes must merge");
    }

    #[test]
    fn remove_server_clears_all_prefixes() {
        let mut t = ExportTable::new();
        t.login(3, &["/a".into(), "/b".into()]);
        t.login(4, &["/a".into()]);
        t.remove_server(3);
        assert_eq!(t.vm_for("/a/f"), ServerSet::single(4));
        assert_eq!(t.vm_for("/b/f"), ServerSet::EMPTY);
        assert_eq!(t.prefix_count(), 1, "empty prefixes are discarded");
        assert_eq!(t.all_servers(), ServerSet::single(4));
    }

    #[test]
    fn registration_cost_independent_of_file_count() {
        // The structural point of §V: joining costs O(#prefixes), so a
        // server "hosting" a million files registers with two entries.
        let mut t = ExportTable::new();
        t.login(0, &["/store/data".into(), "/store/mc".into()]);
        assert_eq!(t.prefix_count(), 2);
    }
}
