//! Location-object storage with reference authenticators (§III-B1).
//!
//! "Once a location object is created it is never deleted though its storage
//! area can be reused for some other location object." The slab hands out
//! stable slot indices; *removing* an object bumps its authenticator counter
//! and pushes the slot onto a free list for reuse. A [`LocRef`] — slot plus
//! the authenticator observed at look-up time — can therefore always be
//! dereferenced safely: it points at valid storage, and comparing
//! authenticators tells the caller whether it is still *the same* object.

use crate::loc::LocState;
use scalla_util::Nanos;

/// Sentinel for "no slot" in intrusive chains.
pub const NIL: u32 = u32::MAX;

/// A loosely-coupled pointer from a location object to a fast-response-queue
/// anchor: anchor index plus the association id current when the link was
/// made. Either side may sever the association unilaterally; users validate
/// before acting (§III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RespRef {
    /// Index into the response-queue anchor array; [`NIL`] means "no
    /// association" (a sentinel keeps `LocEntry` niche-free and compact).
    pub anchor: u32,
    /// Association id the anchor carried when this link was created.
    pub assoc: u64,
}

impl RespRef {
    /// The empty association.
    pub const NONE: RespRef = RespRef { anchor: NIL, assoc: 0 };

    /// Whether an association is present.
    #[inline]
    pub fn is_some(self) -> bool {
        self.anchor != NIL
    }

    /// Whether no association is present.
    #[inline]
    pub fn is_none(self) -> bool {
        self.anchor == NIL
    }
}

/// One location object plus its intrusive chain links.
///
/// Field names follow the paper: `ta` is the add-time window `T_a`, `cn`
/// the connect-counter stamp `C_n`.
#[derive(Debug)]
pub struct LocEntry {
    /// The file name (hash-table key text). Retained across hiding so the
    /// storage is reused, as in the paper.
    pub(crate) name: String,
    /// Significant length of `name`. Zero means *hidden*: the entry can no
    /// longer be found in the hash table (§III-A3's hiding trick).
    pub(crate) key_len: u32,
    /// CRC-32 of the name, kept so chain walks compare 4 bytes first and
    /// responses can carry the hash along (§III-B1).
    pub(crate) hash: u32,
    /// The three-vector location state.
    pub state: LocState,
    /// `C_n` — value of the master connect counter when this object was
    /// cached or last corrected (§III-A4).
    pub(crate) cn: u64,
    /// `T_a` — the window in which the object was (logically) added. May
    /// disagree with `chained_in` after a refresh until the deferred
    /// re-chaining sweep (§III-C1).
    pub(crate) ta: u8,
    /// The window chain this entry physically sits in.
    pub(crate) chained_in: u8,
    /// Processing deadline for query synchronization (§III-C2).
    pub(crate) deadline: Nanos,
    /// Authenticator counter, "increased by one when a location object is
    /// removed from the cache" (§III-B1).
    pub(crate) auth: u64,
    /// Hash-bucket chain link.
    pub(crate) next: u32,
    /// Window chain link.
    pub(crate) wnext: u32,
    /// Fast-response anchor for readers (`R_r`); `RespRef::NONE` if unset.
    pub(crate) rref: RespRef,
    /// Fast-response anchor for writers (`R_w`); `RespRef::NONE` if unset.
    pub(crate) wref: RespRef,
    /// Whether the slot currently holds a live (possibly hidden) object.
    pub(crate) in_use: bool,
}

impl LocEntry {
    fn vacant() -> LocEntry {
        LocEntry {
            name: String::new(),
            key_len: 0,
            hash: 0,
            state: LocState::default(),
            cn: 0,
            ta: 0,
            chained_in: 0,
            deadline: Nanos::ZERO,
            auth: 0,
            next: NIL,
            wnext: NIL,
            rref: RespRef::NONE,
            wref: RespRef::NONE,
            in_use: false,
        }
    }

    /// Whether the entry is findable in the hash table.
    #[inline]
    pub fn is_visible(&self) -> bool {
        self.in_use && self.key_len > 0
    }

    /// The visible key bytes, empty when hidden.
    #[inline]
    pub fn key(&self) -> &str {
        &self.name[..self.key_len as usize]
    }

    /// Hides the entry: zero key length, exactly the paper's trick. The
    /// name storage is retained for reuse.
    #[inline]
    pub fn hide(&mut self) {
        self.key_len = 0;
    }

    /// Approximate heap + inline footprint in bytes, for the E12 memory
    /// experiment.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<LocEntry>() + self.name.capacity()
    }
}

/// A validated-on-use reference to a location object: shard index, slot
/// index within that shard's slab, plus the authenticator observed when the
/// reference was created. Carrying the shard keeps the authenticator fast
/// path O(1) in a sharded cache — the holder goes straight to the owning
/// shard without re-hashing the name. Still 16 bytes (the shard index
/// occupies what used to be padding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocRef {
    /// Slab slot of the object.
    pub slot: u32,
    /// Index of the shard whose slab issued this reference.
    pub shard: u16,
    /// Authenticator value at reference-creation time.
    pub auth: u64,
}

/// The never-shrinking object store.
pub struct LocSlab {
    entries: Vec<LocEntry>,
    free_head: u32,
    live: usize,
    /// Stamped into every [`LocRef`] this slab issues; references carrying
    /// a different shard index never validate here.
    shard: u16,
}

impl LocSlab {
    /// Creates an empty slab for shard 0 (the unsharded layout).
    pub fn new() -> LocSlab {
        LocSlab::for_shard(0)
    }

    /// Creates an empty slab issuing references stamped with `shard`.
    pub fn for_shard(shard: u16) -> LocSlab {
        LocSlab { entries: Vec::new(), free_head: NIL, live: 0, shard }
    }

    /// Number of live (in-use) objects.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created (the paper's "never deleted" high-water
    /// mark).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Allocates a slot for a new object, reusing a removed slot if one is
    /// available. The entry comes back blank except for its preserved
    /// authenticator; the caller fills it in.
    pub fn alloc(&mut self, name: &str, hash: u32) -> u32 {
        self.live += 1;
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            self.free_head = self.entries[slot as usize].next;
            slot
        } else {
            assert!(self.entries.len() < NIL as usize, "slab exhausted");
            self.entries.push(LocEntry::vacant());
            (self.entries.len() - 1) as u32
        };
        let e = &mut self.entries[slot as usize];
        e.name.clear();
        e.name.push_str(name);
        e.key_len = name.len() as u32;
        e.hash = hash;
        e.state = LocState::default();
        e.cn = 0;
        e.ta = 0;
        e.chained_in = 0;
        e.deadline = Nanos::ZERO;
        e.next = NIL;
        e.wnext = NIL;
        e.rref = RespRef::NONE;
        e.wref = RespRef::NONE;
        e.in_use = true;
        slot
    }

    /// Removes the object in `slot`: bumps the authenticator (invalidating
    /// every outstanding [`LocRef`]) and recycles the storage.
    pub fn release(&mut self, slot: u32) {
        let e = &mut self.entries[slot as usize];
        debug_assert!(e.in_use, "double release of slot {slot}");
        e.in_use = false;
        e.key_len = 0;
        e.auth = e.auth.wrapping_add(1);
        e.rref = RespRef::NONE;
        e.wref = RespRef::NONE;
        e.next = self.free_head;
        self.free_head = slot;
        self.live -= 1;
    }

    /// Immutable access to a slot. Slots are never out of bounds for any
    /// `LocRef` this slab issued, because storage is never freed.
    #[inline]
    pub fn get(&self, slot: u32) -> &LocEntry {
        &self.entries[slot as usize]
    }

    /// Mutable access to a slot.
    #[inline]
    pub fn get_mut(&mut self, slot: u32) -> &mut LocEntry {
        &mut self.entries[slot as usize]
    }

    /// Creates a reference for the object currently in `slot`.
    #[inline]
    pub fn make_ref(&self, slot: u32) -> LocRef {
        LocRef { slot, shard: self.shard, auth: self.entries[slot as usize].auth }
    }

    /// The paper's reference check: "a reference is valid if its
    /// authenticator equals the current counter value in the object it
    /// points to" — and the object must still be live. References from
    /// another shard's slab (or with a slot this slab never issued) are
    /// simply invalid, never a panic.
    #[inline]
    pub fn is_valid(&self, r: LocRef) -> bool {
        r.shard == self.shard
            && self.entries.get(r.slot as usize).is_some_and(|e| e.in_use && e.auth == r.auth)
    }

    /// Approximate total memory footprint for the E12 experiment.
    pub fn approx_bytes(&self) -> usize {
        self.entries.iter().map(LocEntry::approx_bytes).sum::<usize>()
            + std::mem::size_of::<LocSlab>()
    }
}

impl Default for LocSlab {
    fn default() -> LocSlab {
        LocSlab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read_back() {
        let mut s = LocSlab::new();
        let a = s.alloc("/x/a", 0xAAAA);
        let b = s.alloc("/x/b", 0xBBBB);
        assert_ne!(a, b);
        assert_eq!(s.get(a).key(), "/x/a");
        assert_eq!(s.get(b).hash, 0xBBBB);
        assert_eq!(s.live(), 2);
    }

    #[test]
    fn release_invalidates_reference_and_reuses_slot() {
        let mut s = LocSlab::new();
        let a = s.alloc("/x/a", 1);
        let r = s.make_ref(a);
        assert!(s.is_valid(r));
        s.release(a);
        assert!(!s.is_valid(r), "removal must invalidate outstanding refs");
        // Slot storage is reused for the next object.
        let b = s.alloc("/x/b", 2);
        assert_eq!(a, b, "free list should hand back the released slot");
        assert!(!s.is_valid(r), "old ref must not validate against new object");
        let r2 = s.make_ref(b);
        assert!(s.is_valid(r2));
        assert_eq!(s.capacity(), 1, "storage is never grown unnecessarily");
    }

    #[test]
    fn stale_ref_still_dereferences_safely() {
        // "references always point to a valid albeit incorrect location
        // object" — get() must not panic for a stale ref.
        let mut s = LocSlab::new();
        let a = s.alloc("/x/a", 1);
        let r = s.make_ref(a);
        s.release(a);
        let _ = s.get(r.slot); // must not panic
        assert!(!s.is_valid(r));
    }

    #[test]
    fn hide_keeps_storage() {
        let mut s = LocSlab::new();
        let a = s.alloc("/long/path/name", 7);
        s.get_mut(a).hide();
        let e = s.get(a);
        assert!(!e.is_visible());
        assert_eq!(e.key(), "");
        assert!(e.in_use);
        assert!(e.name.capacity() >= "/long/path/name".len());
    }

    #[test]
    fn refs_do_not_validate_across_shards() {
        let mut a = LocSlab::for_shard(0);
        let mut b = LocSlab::for_shard(1);
        let sa = a.alloc("/x", 1);
        let sb = b.alloc("/x", 1);
        let ra = a.make_ref(sa);
        let rb = b.make_ref(sb);
        assert_eq!(ra.shard, 0);
        assert_eq!(rb.shard, 1);
        assert!(a.is_valid(ra) && b.is_valid(rb));
        assert!(!a.is_valid(rb), "foreign shard ref must not validate");
        assert!(!b.is_valid(ra), "foreign shard ref must not validate");
        // Out-of-range slots are invalid, not a panic.
        let bogus = LocRef { slot: 999, shard: 0, auth: 0 };
        assert!(!a.is_valid(bogus));
    }

    #[test]
    fn many_alloc_release_cycles_bound_capacity() {
        let mut s = LocSlab::new();
        for round in 0..100 {
            let slots: Vec<u32> = (0..10).map(|i| s.alloc(&format!("/f{round}/{i}"), i)).collect();
            for slot in slots {
                s.release(slot);
            }
        }
        assert_eq!(s.live(), 0);
        assert_eq!(s.capacity(), 10, "slots must be recycled, not leaked");
    }
}

#[cfg(test)]
mod size_tests {
    use super::*;

    /// "using compact data structures to maximize the memory caching
    /// efficiency" (§VI). Guard the hot types against accidental growth;
    /// LocEntry staying within two cache lines keeps chain walks cheap and
    /// the 28.8M-object bound in the paper's memory envelope (§III-A2).
    #[test]
    fn hot_types_stay_compact() {
        assert!(
            std::mem::size_of::<LocEntry>() <= 128,
            "LocEntry grew to {} bytes (> 2 cache lines)",
            std::mem::size_of::<LocEntry>()
        );
        assert_eq!(std::mem::size_of::<LocRef>(), 16);
        assert_eq!(std::mem::size_of::<RespRef>(), 16);
        assert_eq!(std::mem::size_of::<crate::loc::LocState>(), 24);
    }
}
