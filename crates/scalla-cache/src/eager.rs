//! Eager re-chaining baseline (§III-C1 ablation).
//!
//! The paper defers moving a refreshed location object between window
//! chains: "a single linear-cost task can re-chain all objects whose `T_a`
//! has changed, where re-chaining each object individually results in a
//! more quadratic cost." This module implements that individual, eager
//! strategy: every refresh unlinks the object from its current singly-
//! linked chain (a walk proportional to the chain length) and pushes it
//! onto the current window's chain. Experiment E8 measures both.
//!
//! The public surface mirrors
//! [`WindowRing`](crate::window::WindowRing) so the experiment can
//! drive the two identically.

use crate::config::WINDOW_COUNT;
use crate::slab::{LocSlab, NIL};
use crate::window::TickOutcome;

/// A window ring that re-chains eagerly on refresh.
pub struct EagerWindowRing {
    heads: [u32; WINDOW_COUNT],
    tw: u8,
    /// Total chain-link steps performed by unlink walks (the cost the
    /// deferred strategy avoids).
    pub unlink_steps: u64,
}

impl EagerWindowRing {
    /// Creates a ring at window 0.
    pub fn new() -> EagerWindowRing {
        EagerWindowRing { heads: [NIL; WINDOW_COUNT], tw: 0, unlink_steps: 0 }
    }

    /// The current window index.
    pub fn current(&self) -> u8 {
        self.tw
    }

    /// Chains `slot` into the current window (same as the deferred ring).
    pub fn chain_now(&mut self, slab: &mut LocSlab, slot: u32) {
        let w = self.tw;
        let e = slab.get_mut(slot);
        e.ta = w;
        e.chained_in = w;
        e.wnext = self.heads[w as usize];
        self.heads[w as usize] = slot;
    }

    /// Eager refresh: unlink from the old chain *now* (walking it), then
    /// chain into the current window.
    pub fn refresh_stamp(&mut self, slab: &mut LocSlab, slot: u32) {
        let old = slab.get(slot).chained_in;
        // Unlink: singly-linked, so walk from the head.
        let mut cur = self.heads[old as usize];
        if cur == slot {
            self.heads[old as usize] = slab.get(slot).wnext;
        } else {
            while cur != NIL {
                self.unlink_steps += 1;
                let next = slab.get(cur).wnext;
                if next == slot {
                    let skip = slab.get(slot).wnext;
                    slab.get_mut(cur).wnext = skip;
                    break;
                }
                cur = next;
            }
        }
        self.chain_now(slab, slot);
    }

    /// Tick: identical expiry semantics to the deferred ring, but no
    /// re-chaining ever happens here (refreshes already moved).
    pub fn tick(&mut self, slab: &mut LocSlab) -> TickOutcome {
        self.tw = ((self.tw as usize + 1) % WINDOW_COUNT) as u8;
        let w = self.tw;
        let mut out = TickOutcome { new_window: w, ..TickOutcome::default() };
        let mut cur = std::mem::replace(&mut self.heads[w as usize], NIL);
        while cur != NIL {
            out.scanned += 1;
            let next = slab.get(cur).wnext;
            let e = slab.get_mut(cur);
            if e.in_use && e.ta == w {
                e.hide();
                out.expired.push(cur);
            } else if e.in_use {
                // Should not happen under eager re-chaining, but keep the
                // entry alive if it does.
                let ta = e.ta;
                e.chained_in = ta;
                e.wnext = self.heads[ta as usize];
                self.heads[ta as usize] = cur;
                out.rechained += 1;
            }
            cur = next;
        }
        out
    }
}

impl Default for EagerWindowRing {
    fn default() -> EagerWindowRing {
        EagerWindowRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(slab: &mut LocSlab, name: &str) -> u32 {
        slab.alloc(name, scalla_util::crc32(name.as_bytes()))
    }

    #[test]
    fn expiry_after_full_lifetime() {
        let mut slab = LocSlab::new();
        let mut ring = EagerWindowRing::new();
        let slot = alloc(&mut slab, "/f");
        ring.chain_now(&mut slab, slot);
        for _ in 0..63 {
            assert!(ring.tick(&mut slab).expired.is_empty());
        }
        assert_eq!(ring.tick(&mut slab).expired, vec![slot]);
    }

    #[test]
    fn refresh_moves_immediately_and_extends_life() {
        let mut slab = LocSlab::new();
        let mut ring = EagerWindowRing::new();
        let slot = alloc(&mut slab, "/f");
        ring.chain_now(&mut slab, slot);
        for _ in 0..32 {
            ring.tick(&mut slab);
        }
        ring.refresh_stamp(&mut slab, slot);
        assert_eq!(slab.get(slot).chained_in, ring.current(), "moved eagerly");
        for _ in 0..63 {
            let out = ring.tick(&mut slab);
            assert!(out.expired.is_empty());
            assert_eq!(out.rechained, 0, "eager ring never defers");
        }
        assert_eq!(ring.tick(&mut slab).expired, vec![slot]);
    }

    #[test]
    fn unlink_walk_cost_grows_with_chain_depth() {
        // N entries in one window; refreshing the oldest (deepest) repeatedly
        // forces long unlink walks — the quadratic regime.
        let mut slab = LocSlab::new();
        let mut ring = EagerWindowRing::new();
        let n = 1_000;
        let slots: Vec<u32> = (0..n)
            .map(|i| {
                let s = alloc(&mut slab, &format!("/f{i}"));
                ring.chain_now(&mut slab, s);
                s
            })
            .collect();
        ring.tick(&mut slab); // move off the build window
        let before = ring.unlink_steps;
        // Refresh the first-inserted entry: it sits at chain tail.
        ring.refresh_stamp(&mut slab, slots[0]);
        let cost_deep = ring.unlink_steps - before;
        assert!(cost_deep >= (n - 2) as u64, "tail unlink walks ~N links: {cost_deep}");
    }
}
