//! Location objects: the per-file state cached by managers and supervisors.
//!
//! Each file is associated with a location object holding three 64-bit
//! vectors (§III-A1):
//!
//! * `V_h` — servers that **h**ave the file online,
//! * `V_p` — servers **p**reparing the file (e.g. staging from a Mass
//!   Storage System),
//! * `V_q` — servers that still need to be **q**ueried.
//!
//! The paper's invariant — "Bits in `V_q` are never present in `V_h` or
//! `V_p`" — is enforced by every mutator here and checked by debug
//! assertions and property tests.

use scalla_util::{ServerId, ServerSet};

/// The access mode a client requested; selects the fast-response anchor
/// (`R_r` vs `R_w`, §III-B) and which servers are acceptable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessMode {
    /// Read access (`R_r`).
    Read,
    /// Write/update access (`R_w`).
    Write,
}

/// The three-vector location state of one file.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct LocState {
    /// Servers that have the file online.
    pub vh: ServerSet,
    /// Servers preparing (staging) the file.
    pub vp: ServerSet,
    /// Servers that still need to be queried about the file.
    pub vq: ServerSet,
}

impl LocState {
    /// A state in which every server in `vm` must be queried — the state of
    /// a freshly created location object.
    #[inline]
    pub fn all_unknown(vm: ServerSet) -> LocState {
        LocState { vh: ServerSet::EMPTY, vp: ServerSet::EMPTY, vq: vm }
    }

    /// True when nothing is known and nothing is pending — resolution step 2
    /// branches on this (§III-B1).
    #[inline]
    pub fn is_vacant(&self) -> bool {
        self.vh.is_empty() && self.vp.is_empty() && self.vq.is_empty()
    }

    /// The paper's structural invariant.
    #[inline]
    pub fn invariant_holds(&self) -> bool {
        self.vq.is_disjoint(self.vh | self.vp)
    }

    /// Records a server's positive response: it has the file (`staging ==
    /// false`) or is bringing it online (`staging == true`). The server
    /// leaves `V_q` — it has now been heard from.
    #[inline]
    pub fn record_have(&mut self, server: ServerId, staging: bool) {
        self.vq.remove(server);
        if staging {
            self.vh.remove(server);
            self.vp.insert(server);
        } else {
            self.vp.remove(server);
            self.vh.insert(server);
        }
        debug_assert!(self.invariant_holds());
    }

    /// A staging server finished: promote from `V_p` to `V_h`.
    #[inline]
    pub fn promote_staged(&mut self, server: ServerId) {
        if self.vp.contains(server) {
            self.vp.remove(server);
            self.vh.insert(server);
        }
        debug_assert!(self.invariant_holds());
    }

    /// Forget everything about `servers` (e.g. a server was dropped from
    /// the cluster); they are *not* re-queried.
    #[inline]
    pub fn purge(&mut self, servers: ServerSet) {
        self.vh = self.vh - servers;
        self.vp = self.vp - servers;
        self.vq = self.vq - servers;
        debug_assert!(self.invariant_holds());
    }

    /// Move `servers` into `V_q`: whatever was believed about them must be
    /// re-established by a query. Used for offline servers at fetch time
    /// (§III-A4) and for the connect correction.
    #[inline]
    pub fn requery(&mut self, servers: ServerSet) {
        self.vh = self.vh - servers;
        self.vp = self.vp - servers;
        self.vq |= servers;
        debug_assert!(self.invariant_holds());
    }

    /// Applies the Figure 3 correction given the connect set `V_c` (servers
    /// that joined after this object's `C_n`) and the eligibility vector
    /// `V_m`:
    ///
    /// ```text
    /// V_q = (V_q | V_c) & V_m
    /// V_h = V_h & !V_q & V_m
    /// V_p = V_p & !V_q & V_m
    /// ```
    ///
    /// (The paper's Figure 3 prints `V_h & V_q & V_m`; the text makes clear
    /// the new `V_q` bits are *removed* from `V_h`/`V_p`, i.e. the
    /// complement — see DESIGN.md.)
    #[inline]
    pub fn apply_correction(&mut self, vc: ServerSet, vm: ServerSet) {
        self.vq = (self.vq | vc) & vm;
        self.vh = self.vh & !self.vq & vm;
        self.vp = self.vp & !self.vq & vm;
        debug_assert!(self.invariant_holds());
    }

    /// Servers a reader could be sent to right now (prefer online holders,
    /// fall back to preparing ones), before selection policy.
    #[inline]
    pub fn read_candidates(&self) -> ServerSet {
        if !self.vh.is_empty() {
            self.vh
        } else {
            self.vp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_have_moves_bits() {
        let mut s = LocState::all_unknown(ServerSet::first_n(4));
        s.record_have(1, false);
        assert!(s.vh.contains(1) && !s.vq.contains(1));
        s.record_have(2, true);
        assert!(s.vp.contains(2) && !s.vq.contains(2));
        // A staging server later reports online.
        s.record_have(2, false);
        assert!(s.vh.contains(2) && !s.vp.contains(2));
        assert!(s.invariant_holds());
    }

    #[test]
    fn promote_staged_only_moves_preparing() {
        let mut s = LocState::default();
        s.record_have(3, true);
        s.promote_staged(3);
        assert!(s.vh.contains(3) && !s.vp.contains(3));
        // Promoting a server that was not staging is a no-op.
        s.promote_staged(5);
        assert!(!s.vh.contains(5));
    }

    #[test]
    fn correction_removes_new_servers_from_known() {
        // Object cached when servers {0,1} were known to have the file.
        let mut s =
            LocState { vh: ServerSet::first_n(2), vp: ServerSet::EMPTY, vq: ServerSet::EMPTY };
        // Server 2 connected since; all three export the path.
        let vc = ServerSet::single(2);
        let vm = ServerSet::first_n(3);
        s.apply_correction(vc, vm);
        assert_eq!(s.vq, ServerSet::single(2));
        assert_eq!(s.vh, ServerSet::first_n(2));
        assert!(s.invariant_holds());
    }

    #[test]
    fn correction_limits_to_vm() {
        // Server 1 was dropped: it no longer appears in V_m.
        let mut s =
            LocState { vh: ServerSet::first_n(2), vp: ServerSet::EMPTY, vq: ServerSet::EMPTY };
        let vm = ServerSet::single(0);
        s.apply_correction(ServerSet::EMPTY, vm);
        assert_eq!(s.vh, ServerSet::single(0));
        assert!(s.invariant_holds());
    }

    #[test]
    fn vacancy() {
        assert!(LocState::default().is_vacant());
        assert!(!LocState::all_unknown(ServerSet::single(9)).is_vacant());
    }

    proptest! {
        #[test]
        fn invariant_preserved_by_all_ops(
            vh0: u64, vp0: u64, vq0: u64, vc: u64, vm: u64,
            server in 0u8..64, staging: bool,
        ) {
            // Start from a state forced to satisfy the invariant.
            let vq = ServerSet(vq0);
            let vh = ServerSet(vh0) - vq;
            let vp = (ServerSet(vp0) - vq) - vh;
            let mut s = LocState { vh, vp, vq };
            prop_assert!(s.invariant_holds());

            s.record_have(server, staging);
            prop_assert!(s.invariant_holds());
            s.apply_correction(ServerSet(vc), ServerSet(vm));
            prop_assert!(s.invariant_holds());
            // Everything is inside V_m after a correction.
            prop_assert!((s.vh | s.vp | s.vq).is_subset(ServerSet(vm)));
            s.requery(ServerSet(vc));
            prop_assert!(s.invariant_holds());
            s.purge(ServerSet(vm));
            prop_assert!(s.invariant_holds());
        }

        #[test]
        fn correction_is_idempotent(vh0: u64, vq0: u64, vc: u64, vm: u64) {
            let vq = ServerSet(vq0);
            let vh = ServerSet(vh0) - vq;
            let mut s = LocState { vh, vp: ServerSet::EMPTY, vq };
            s.apply_correction(ServerSet(vc), ServerSet(vm));
            let once = s;
            s.apply_correction(ServerSet(vc), ServerSet(vm));
            prop_assert_eq!(once, s);
        }
    }
}
