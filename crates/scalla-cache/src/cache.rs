//! The [`NameCache`] facade: the cmsd's name-resolution engine.
//!
//! This module composes the slab, hash table, window ring, connect log, and
//! fast response queue into the resolution protocol of §III-B1:
//!
//! 1. look the entry up (creating it on a miss, with a 5 s processing
//!    deadline),
//! 2. if `V_h`, `V_p`, `V_q` are all empty: *file does not exist* once the
//!    deadline has passed, otherwise wait on the fast response queue,
//! 3. if `V_h` or `V_p` is non-empty: redirect the client,
//! 4. if only `V_q` is non-empty (or every holder is offline): wait on the
//!    fast response queue,
//! 5. the caller queries each server in `V_q` (the cache cannot send
//!    messages; it returns the set to ask),
//! 6. `V_q` is cleared optimistically; servers that could not be queried
//!    are put back via [`NameCache::requeue`].
//!
//! Deadline-based synchronization (§III-C2) ensures only one thread floods
//! queries per object; everyone else parks on the fast response queue.
//!
//! # Locking
//!
//! The cache interior is split into [`CacheConfig::shards`] independently
//! locked shards. Each shard owns a complete interior — slab, hash table,
//! window ring, correction memo, and pending-removal list — and a look-up
//! locks exactly one shard, selected from the high bits of the name's
//! CRC-32 key, so resolutions for different shards never contend. Two
//! structures are shared across shards:
//!
//! * the connect log (`C[]`, `N_c`) sits behind a read-mostly `RwLock` —
//!   corrections take the read side; only `note_connect` (login time)
//!   writes. The per-window correction memo lives *per shard*, mutated
//!   under the shard lock, and self-validates against the log's `N_c`.
//! * the fast response queue keeps its own independent lock, exactly as in
//!   the paper's loose coupling; the lock order is always *shard →
//!   response queue*, and every cross-reference is validated on use so
//!   neither side ever needs the other's lock to make progress. No code
//!   path ever holds two shard locks at once.
//!
//! A [`LocRef`] carries its shard index, so authenticator-validated
//! follow-ups ([`NameCache::requeue`]) go straight to the owning shard in
//! O(1) without re-hashing the name. `shards = 1` reproduces the original
//! single-lock layout bit for bit.

use crate::config::{CacheConfig, MAX_SHARDS};
use crate::correct::{ConnectLog, CorrectionKind, CorrectionMemo};
use crate::loc::{AccessMode, LocState};
use crate::respq::{RespQueue, Waiter};
use crate::slab::{LocRef, LocSlab, RespRef};
use crate::stats::CacheStats;
use crate::table::HashTable;
use crate::window::{TickOutcome, WindowRing};
use parking_lot::{Mutex, RwLock};
use scalla_obs::{Obs, Stage};
use scalla_util::{crc32, Clock, Nanos, ServerId, ServerSet};
use std::sync::Arc;

/// Client-facing outcome of a resolution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Redirect the client to one of these servers (selection policy is the
    /// caller's concern). `online` holds `V_h` members, `preparing` `V_p`
    /// members; both already exclude offline and avoided servers.
    Redirect {
        /// Servers holding the file online.
        online: ServerSet,
        /// Servers still staging the file.
        preparing: ServerSet,
    },
    /// The client was parked on the fast response queue; an answer (or a
    /// timeout) will arrive via [`NameCache::update_have`] /
    /// [`NameCache::sweep`].
    Queued,
    /// The file does not exist anywhere in the cluster (deadline passed
    /// with no positive response).
    NotFound,
    /// Tell the client to wait `delay` (the full period) and retry — queue
    /// full or inconsistent reference state.
    WaitRetry {
        /// How long the client must wait before retrying.
        delay: Nanos,
    },
}

/// Everything `resolve` tells the caller: what to answer the client, which
/// servers to query *now*, and a validated reference for follow-up calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolveOutcome {
    /// Client-facing resolution.
    pub resolution: Resolution,
    /// Servers this caller must query about the file (step 5). Empty when
    /// another thread is already querying or no query is needed.
    pub query: ServerSet,
    /// Reference + authenticator for constant-time follow-up operations.
    pub locref: LocRef,
}

/// One independently locked slice of the cache interior.
struct Shard {
    slab: LocSlab,
    table: HashTable,
    windows: WindowRing,
    /// Per-shard window memo for fetch-time corrections; validates itself
    /// against the shared connect log's `N_c`.
    memo: CorrectionMemo,
    /// Hidden entries awaiting background physical removal.
    pending_removal: Vec<u32>,
}

/// The cmsd file-location cache.
pub struct NameCache {
    shards: Box<[Mutex<Shard>]>,
    /// Shared read-mostly connect log (`C[]`, `N_c`).
    connects: RwLock<ConnectLog>,
    respq: Mutex<RespQueue>,
    clock: Arc<dyn Clock>,
    config: CacheConfig,
    /// Shared so observability collectors can read the counters while the
    /// node owns the cache.
    stats: Arc<CacheStats>,
    /// Stage-latency probes; a disabled handle costs one branch per probe.
    obs: Obs,
}

impl NameCache {
    /// Creates a cache with the given configuration and time source.
    pub fn new(config: CacheConfig, clock: Arc<dyn Clock>) -> NameCache {
        let n = config.shards.clamp(1, MAX_SHARDS);
        let shards = (0..n)
            .map(|i| {
                Mutex::new(Shard {
                    slab: LocSlab::for_shard(i as u16),
                    table: HashTable::new(config.initial_table_size, config.max_load_percent),
                    windows: WindowRing::new(),
                    memo: CorrectionMemo::new(),
                    pending_removal: Vec::new(),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        NameCache {
            shards,
            connects: RwLock::new(ConnectLog::new()),
            respq: Mutex::new(RespQueue::new(config.response_anchors, config.fast_window)),
            clock,
            config,
            stats: Arc::new(CacheStats::default()),
            obs: Obs::disabled(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Shared handle to the statistics counters, for registry collectors
    /// that outlive the borrow of the cache.
    pub fn stats_arc(&self) -> Arc<CacheStats> {
        self.stats.clone()
    }

    /// Attaches an observability handle. Stage timings (resolve,
    /// correction apply, window tick, fast-queue wait) are sampled into its
    /// registry, and stale-reference detections snapshot its flight ring.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Number of shards actually in use (the configured value, clamped).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `path` maps to — the high bits of its CRC-32 key,
    /// generalized to any shard count by a multiply-shift. Diagnostics and
    /// tests; the resolution paths compute this inline.
    pub fn shard_of(&self, path: &str) -> usize {
        self.shard_for(crc32(path.as_bytes()))
    }

    #[inline]
    fn shard_for(&self, hash: u32) -> usize {
        // High-bits selection: for a power-of-two count n this is exactly
        // `hash >> (32 - log2 n)`; the multiply-shift form works for any n.
        // The hash table chains on the low bits (modulo a Fibonacci bucket
        // count), so shard and bucket selection stay uncorrelated.
        ((u64::from(hash) * self.shards.len() as u64) >> 32) as usize
    }

    /// Records a server (re)connect in the connect log (`N_c += 1`,
    /// `C[id] := N_c`). Membership calls this at login time.
    pub fn note_connect(&self, id: ServerId) -> u64 {
        self.connects.write().note_connect(id)
    }

    /// Current master connect counter `N_c`.
    pub fn nc(&self) -> u64 {
        self.connects.read().nc()
    }

    /// Resolves with default options: no offline servers, nothing avoided,
    /// not a refresh.
    pub fn resolve(
        &self,
        path: &str,
        vm: ServerSet,
        mode: AccessMode,
        waiter: Waiter,
    ) -> ResolveOutcome {
        self.resolve_full(path, vm, ServerSet::EMPTY, mode, waiter, ServerSet::EMPTY, false)
    }

    /// Full-control resolution.
    ///
    /// * `vm` — eligibility vector for the path, "looked up prior and
    ///   passed to the cache look-up method" (§III-A4).
    /// * `offline` — servers currently disconnected but not yet dropped;
    ///   holders among them are moved to `V_q` (§III-A4).
    /// * `avoid` — servers the client must not be vectored to (refresh
    ///   recovery, §III-C1).
    /// * `refresh` — treat as a new un-cached request without the re-add
    ///   overhead (§III-C1).
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_full(
        &self,
        path: &str,
        vm: ServerSet,
        offline: ServerSet,
        mode: AccessMode,
        waiter: Waiter,
        avoid: ServerSet,
        refresh: bool,
    ) -> ResolveOutcome {
        // Sampled stage timing: most resolutions skip both clock reads.
        if self.obs.stage_sample(Stage::Resolve) {
            let t0 = std::time::Instant::now();
            let out = self.resolve_full_inner(path, vm, offline, mode, waiter, avoid, refresh);
            self.obs.record_stage(Stage::Resolve, t0.elapsed().as_nanos() as u64);
            out
        } else {
            self.resolve_full_inner(path, vm, offline, mode, waiter, avoid, refresh)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_full_inner(
        &self,
        path: &str,
        vm: ServerSet,
        offline: ServerSet,
        mode: AccessMode,
        waiter: Waiter,
        avoid: ServerSet,
        refresh: bool,
    ) -> ResolveOutcome {
        let now = self.clock.now();
        let hash = crc32(path.as_bytes());
        CacheStats::bump(&self.stats.lookups);

        let mut shard = self.shards[self.shard_for(hash)].lock();
        let found = shard.table.lookup(&shard.slab, path, hash);

        let slot = match found {
            Some(slot) if refresh => {
                // §III-C1: logically a new un-cached request; fresh V_q,
                // updated T_a (re-chaining deferred), new deadline.
                CacheStats::bump(&self.stats.refreshes);
                let nc = self.connects.read().nc();
                let tw = shard.windows.current();
                let e = shard.slab.get_mut(slot);
                e.state = LocState::all_unknown(vm);
                e.cn = nc;
                e.ta = tw;
                e.deadline = now + self.config.full_delay;
                let locref = shard.slab.make_ref(slot);
                let query = vm - offline;
                shard.slab.get_mut(slot).state.vq = vm & offline; // unreachable now, ask next time
                let resolution = self.enqueue(&mut shard, slot, mode, waiter, now);
                return ResolveOutcome { resolution, query, locref };
            }
            Some(slot) => slot,
            None => {
                // Miss (or refresh of an expired entry): create.
                CacheStats::bump(&self.stats.misses);
                CacheStats::bump(&self.stats.creates);
                if refresh {
                    CacheStats::bump(&self.stats.refreshes);
                }
                let resizes_before = shard.table.resizes();
                let slot = shard.slab.alloc(path, hash);
                let nc = self.connects.read().nc();
                {
                    let e = shard.slab.get_mut(slot);
                    e.state = LocState::all_unknown(vm);
                    e.cn = nc;
                    e.deadline = now + self.config.full_delay;
                }
                let Shard { slab, windows, table, .. } = &mut *shard;
                windows.chain_now(slab, slot);
                table.insert(slab, slot);
                CacheStats::add(&self.stats.resizes, shard.table.resizes() - resizes_before);

                let locref = shard.slab.make_ref(slot);
                // Step 5/6: caller queries every reachable eligible server;
                // unreachable (offline) ones stay in V_q for next time.
                let query = vm - offline;
                shard.slab.get_mut(slot).state.vq = vm & offline;
                let resolution = self.enqueue(&mut shard, slot, mode, waiter, now);
                return ResolveOutcome { resolution, query, locref };
            }
        };

        // ---- Hit path ----
        let locref = shard.slab.make_ref(slot);
        let (mut state, mut cn, ta, old_deadline) = {
            let e = shard.slab.get(slot);
            (e.state, e.cn, e.ta, e.deadline)
        };

        // Fetch-time corrections (§III-A4): shared log read-locked, this
        // shard's memo mutated under the shard lock. Only a stale entry
        // (connects happened since it was cached) does correction work, so
        // only that case is probed — the steady-state hit path pays
        // nothing and the histogram measures real applications only.
        let correction = {
            let log = self.connects.read();
            let timer = (cn != log.nc() && self.obs.stage_sample(Stage::CorrectionApply))
                .then(std::time::Instant::now);
            let kind = log.correct(&mut shard.memo, &mut state, &mut cn, ta, vm);
            if let Some(t0) = timer {
                self.obs.record_stage(Stage::CorrectionApply, t0.elapsed().as_nanos() as u64);
            }
            kind
        };
        match correction {
            CorrectionKind::Clean => CacheStats::bump(&self.stats.corrections_clean),
            CorrectionKind::MemoHit => CacheStats::bump(&self.stats.corrections_memo),
            CorrectionKind::Computed => CacheStats::bump(&self.stats.corrections_computed),
        }

        // Offline holders are re-queried on a later look-up (§III-A4).
        let off_holders = (state.vh | state.vp) & offline;
        state.requery(off_holders);

        let online = (state.vh - avoid) - offline;
        let preparing = (state.vp - avoid) - offline;

        // Query flooding decision (deadline synchronization, §III-C2):
        // only the thread that finds an expired deadline issues queries.
        let mut query = ServerSet::EMPTY;
        let reachable_vq = state.vq - offline;
        let mut deadline = old_deadline;
        if !reachable_vq.is_empty() && now > old_deadline {
            query = reachable_vq;
            state.vq &= offline;
            deadline = now + self.config.full_delay;
        }

        let resolution = if !online.is_empty() || !preparing.is_empty() {
            CacheStats::bump(&self.stats.hits);
            Resolution::Redirect { online, preparing }
        } else if !state.vq.is_empty() || !query.is_empty() {
            // Step 4: queries outstanding (ours or another thread's).
            Resolution::Queued
        } else if now > old_deadline {
            // Step 2: nothing known, deadline passed -> does not exist.
            Resolution::NotFound
        } else {
            Resolution::Queued
        };

        // Write back the corrected state.
        {
            let e = shard.slab.get_mut(slot);
            e.state = state;
            e.cn = cn;
            e.deadline = deadline;
        }

        let resolution = match resolution {
            Resolution::Queued => self.enqueue(&mut shard, slot, mode, waiter, now),
            other => other,
        };
        ResolveOutcome { resolution, query, locref }
    }

    /// Parks `waiter` on the fast response queue for `slot` (§III-B step 4).
    /// Must be called with the owning shard's lock held; takes the
    /// response-queue lock (lock order: shard → respq).
    fn enqueue(
        &self,
        shard: &mut Shard,
        slot: u32,
        mode: AccessMode,
        waiter: Waiter,
        now: Nanos,
    ) -> Resolution {
        let existing = match mode {
            AccessMode::Read => shard.slab.get(slot).rref,
            AccessMode::Write => shard.slab.get(slot).wref,
        };
        let mut respq = self.respq.lock();
        // A severed association (swept anchor) falls through to a new one.
        if existing.is_some() && respq.append(existing, slot, waiter) {
            CacheStats::bump(&self.stats.queued_waiters);
            return Resolution::Queued;
        }
        match respq.open(slot, mode, waiter, now) {
            Ok(r) => {
                let e = shard.slab.get_mut(slot);
                match mode {
                    AccessMode::Read => e.rref = r,
                    AccessMode::Write => e.wref = r,
                }
                CacheStats::bump(&self.stats.queued_waiters);
                Resolution::Queued
            }
            Err(_) => {
                CacheStats::bump(&self.stats.queue_full);
                Resolution::WaitRetry { delay: self.config.full_delay }
            }
        }
    }

    /// Records a server's positive response ("I have the file", or "I am
    /// staging it" when `staging`), releasing any waiting clients.
    ///
    /// Returns the released waiters, each paired with the responding
    /// server, for the response thread to redirect (§III-B1). File names
    /// and hash keys are passed along responses in the paper; use
    /// [`NameCache::update_have_hashed`] when the hash is already known.
    pub fn update_have(
        &self,
        path: &str,
        server: ServerId,
        staging: bool,
    ) -> Vec<(Waiter, ServerId)> {
        self.update_have_hashed(path, crc32(path.as_bytes()), server, staging)
    }

    /// [`NameCache::update_have`] with a precomputed hash — "this
    /// eliminates the need to generate the hash key for each response".
    pub fn update_have_hashed(
        &self,
        path: &str,
        hash: u32,
        server: ServerId,
        staging: bool,
    ) -> Vec<(Waiter, ServerId)> {
        let mut shard = self.shards[self.shard_for(hash)].lock();
        let slot = match shard.table.lookup(&shard.slab, path, hash) {
            Some(slot) => slot,
            None => {
                // Entry expired between query and response: re-cache the
                // answer so the client's retry hits. The object is
                // *incomplete* — no query round backs it — so seed `V_q`
                // with every server that has ever connected (the connect
                // log knows) except the responder, forcing a fresh flood
                // before any negative verdict can be reached. Fetch-time
                // `V_m` clipping scopes the set to the path (§III-A4).
                CacheStats::bump(&self.stats.creates);
                let slot = shard.slab.alloc(path, hash);
                let (everyone, nc) = {
                    let log = self.connects.read();
                    (log.vc_since(0), log.nc())
                };
                {
                    let e = shard.slab.get_mut(slot);
                    e.state.vq = everyone;
                    e.cn = nc;
                }
                let Shard { slab, windows, table, .. } = &mut *shard;
                windows.chain_now(slab, slot);
                table.insert(slab, slot);
                slot
            }
        };
        shard.slab.get_mut(slot).state.record_have(server, staging);

        // Release waiters: both access modes are acceptable targets once a
        // server holds the file (selection among modes is the node's
        // concern). Writers are only released by an online holder.
        let mut released = Vec::new();
        let refs: Vec<(AccessMode, RespRef)> = {
            let e = shard.slab.get(slot);
            let mut v = Vec::with_capacity(2);
            if e.rref.is_some() {
                v.push((AccessMode::Read, e.rref));
            }
            if !staging && e.wref.is_some() {
                v.push((AccessMode::Write, e.wref));
            }
            v
        };
        if !refs.is_empty() {
            let mut respq = self.respq.lock();
            for (mode, r) in refs {
                if let Some((waiters, enqueued)) = respq.satisfy_timed(r, slot) {
                    // Fast-queue wait: how long the earliest waiter sat
                    // parked before this response released it.
                    if !waiters.is_empty() && self.obs.stage_sample(Stage::FastqWait) {
                        let waited = self.clock.now().since(enqueued);
                        self.obs.record_stage(Stage::FastqWait, waited.0);
                    }
                    released.extend(waiters.into_iter().map(|w| (w, server)));
                }
                let e = shard.slab.get_mut(slot);
                match mode {
                    AccessMode::Read => e.rref = RespRef::NONE,
                    AccessMode::Write => e.wref = RespRef::NONE,
                }
            }
        }
        CacheStats::add(&self.stats.fast_releases, released.len() as u64);
        released
    }

    /// Puts servers that could not be queried back into the object's `V_q`
    /// (§III-B1 step 6). The reference's shard index routes straight to the
    /// owning shard and the authenticator validates the object in O(1); a
    /// stale reference falls back to a full look-up, and a vanished entry
    /// is simply dropped (the client will retry).
    pub fn requeue(&self, path: &str, locref: LocRef, servers: ServerSet) {
        if servers.is_empty() {
            return;
        }
        if (locref.shard as usize) < self.shards.len() {
            let mut shard = self.shards[locref.shard as usize].lock();
            if shard.slab.is_valid(locref) && shard.slab.get(locref.slot).is_visible() {
                shard.slab.get_mut(locref.slot).state.requery(servers);
                return;
            }
        }
        // Stale (or foreign) reference: re-hash and look the name up in its
        // owning shard. The fast-path guard above is released by now, so
        // re-locking the same shard cannot deadlock.
        CacheStats::bump(&self.stats.stale_refs);
        self.obs.incident("stale_ref");
        let hash = crc32(path.as_bytes());
        let mut shard = self.shards[self.shard_for(hash)].lock();
        if let Some(slot) = shard.table.lookup(&shard.slab, path, hash) {
            shard.slab.get_mut(slot).state.requery(servers);
        }
    }

    /// Reacts to a server disconnect (§III-A4 case 1) by walking every
    /// cached object that lists the server as a holder: the dead holder is
    /// moved `V_h`/`V_p` → `V_q` (it will be re-asked if it returns), and
    /// any *other* reachable servers already parked in the object's `V_q`
    /// are handed back to the caller to re-query immediately — a supervisor
    /// going silent mid-resolution must not strand its waiters until the
    /// 5 s deadline. Returned tuples are `(path, ref, servers-to-ask-now)`;
    /// those servers are cleared from `V_q` optimistically (step 6
    /// semantics: put flood failures back via [`NameCache::requeue`] with
    /// the returned ref) and the deadline is renewed so concurrent resolves
    /// do not duplicate the flood. `offline` servers stay parked.
    pub fn requery_on_disconnect(
        &self,
        server: ServerId,
        offline: ServerSet,
    ) -> Vec<(String, LocRef, ServerSet)> {
        let now = self.clock.now();
        let dead = ServerSet::single(server);
        let unreachable = dead | offline;
        let mut refloods = Vec::new();
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            for slot in 0..shard.slab.capacity() as u32 {
                let e = shard.slab.get(slot);
                if !e.in_use || !e.is_visible() {
                    continue;
                }
                let held = (e.state.vh | e.state.vp).contains(server);
                if !held && !e.state.vq.contains(server) {
                    continue;
                }
                let path = e.key().to_string();
                let locref = shard.slab.make_ref(slot);
                let e = shard.slab.get_mut(slot);
                e.state.requery(dead);
                let ask = e.state.vq - unreachable;
                if held && !ask.is_empty() {
                    // The survivors are queried *now*; the dead server (and
                    // anything else offline) stays queued for a future
                    // look-up.
                    e.state.vq &= unreachable;
                    e.deadline = now + self.config.full_delay;
                    refloods.push((path, locref, ask));
                }
            }
        }
        refloods
    }

    /// Audits every visible cached object against the structural invariant
    /// `V_q ∩ (V_h ∪ V_p) = ∅` (a server cannot be both a known holder and
    /// an open question). Returns `(entries_checked, violations)`; chaos
    /// harnesses assert the second component is zero after every
    /// convergence window.
    pub fn invariant_violations(&self) -> (usize, usize) {
        let mut checked = 0;
        let mut violations = 0;
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for slot in 0..shard.slab.capacity() as u32 {
                let e = shard.slab.get(slot);
                if !e.in_use || !e.is_visible() {
                    continue;
                }
                checked += 1;
                if !e.state.invariant_holds() {
                    violations += 1;
                }
            }
        }
        (checked, violations)
    }

    /// Reads the current location state of `path`, if cached and visible.
    pub fn peek(&self, path: &str) -> Option<LocState> {
        let hash = crc32(path.as_bytes());
        let shard = self.shards[self.shard_for(hash)].lock();
        let slot = shard.table.lookup(&shard.slab, path, hash)?;
        Some(shard.slab.get(slot).state)
    }

    /// The fast-response sweep (the 133 ms thread body). Returns waiters
    /// whose fast window expired; each must be told to wait the full period
    /// and retry. Touches only the response-queue lock.
    pub fn sweep(&self) -> Vec<Waiter> {
        let now = self.clock.now();
        let timed_out = self.respq.lock().sweep(now);
        CacheStats::add(&self.stats.queue_timeouts, timed_out.len() as u64);
        timed_out
    }

    /// Advances the window clock (`L_t/64` tick thread body): hides the
    /// expiring window, performs deferred re-chaining, queues hidden
    /// entries for background collection. Every shard's ring is ticked,
    /// one shard lock at a time; the returned outcome aggregates all
    /// shards (`expired` slot indices are shard-local, so treat them as a
    /// count, not as addresses).
    pub fn tick(&self) -> TickOutcome {
        let tick_timer = self.obs.stage_sample(Stage::WindowTick).then(std::time::Instant::now);
        let mut merged = TickOutcome::default();
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            let Shard { slab, windows, pending_removal, .. } = &mut *shard;
            let out = windows.tick(slab);
            pending_removal.extend_from_slice(&out.expired);
            merged.expired.extend_from_slice(&out.expired);
            merged.rechained += out.rechained;
            merged.scanned += out.scanned;
            merged.new_window = out.new_window;
        }
        CacheStats::add(&self.stats.evictions, merged.expired.len() as u64);
        CacheStats::add(&self.stats.rechained, merged.rechained as u64);
        if let Some(t0) = tick_timer {
            self.obs.record_stage(Stage::WindowTick, t0.elapsed().as_nanos() as u64);
        }
        merged
    }

    /// Background physical removal: unlinks and releases up to `max`
    /// hidden entries across all shards. Returns how many were collected.
    pub fn collect(&self, max: usize) -> usize {
        let mut collected = 0;
        for shard in self.shards.iter() {
            if collected >= max {
                break;
            }
            let mut shard = shard.lock();
            let n = shard.pending_removal.len().min(max - collected);
            for _ in 0..n {
                let slot = shard.pending_removal.pop().expect("counted above");
                if shard.slab.get(slot).in_use {
                    let Shard { slab, table, .. } = &mut *shard;
                    table.remove(slab, slot);
                    slab.release(slot);
                }
            }
            collected += n;
        }
        CacheStats::add(&self.stats.collected, collected as u64);
        collected
    }

    /// Live location objects (visible + hidden-awaiting-collection).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().slab.live()).sum()
    }

    /// Whether the cache holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint (experiment E12).
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock();
                shard.slab.approx_bytes() + shard.table.bucket_count() * std::mem::size_of::<u32>()
            })
            .sum()
    }

    /// Total hash-table bucket count across shards (each shard's table is
    /// always Fibonacci-sized).
    pub fn bucket_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().table.bucket_count()).sum()
    }

    /// Per-bucket chain lengths, all shards concatenated (experiment E4).
    pub fn chain_lengths(&self) -> Vec<usize> {
        let mut lengths = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            lengths.extend(shard.table.chain_lengths(&shard.slab));
        }
        lengths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_util::VirtualClock;

    fn setup() -> (Arc<VirtualClock>, NameCache) {
        let clock = Arc::new(VirtualClock::new());
        let cache = NameCache::new(CacheConfig::for_tests(), clock.clone());
        (clock, cache)
    }

    const VM4: ServerSet = ServerSet(0b1111);

    #[test]
    fn miss_then_response_then_hit() {
        let (_clock, cache) = setup();
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        assert_eq!(out.resolution, Resolution::Queued);
        assert_eq!(out.query, VM4, "all eligible servers must be queried");

        let released = cache.update_have("/f", 2, false);
        assert_eq!(released, vec![(Waiter::new(1, 0), 2)]);

        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(2, 0));
        match out.resolution {
            Resolution::Redirect { online, preparing } => {
                assert_eq!(online, ServerSet::single(2));
                assert!(preparing.is_empty());
            }
            other => panic!("expected redirect, got {other:?}"),
        }
        assert_eq!(CacheStats::get(&cache.stats().hits), 1);
    }

    #[test]
    fn deadline_synchronizes_queries() {
        let (clock, cache) = setup();
        let out1 = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        assert_eq!(out1.query, VM4);
        // Second client within the deadline: queued, no duplicate flood.
        clock.advance(Nanos::from_millis(10));
        let out2 = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(2, 0));
        assert_eq!(out2.resolution, Resolution::Queued);
        assert!(out2.query.is_empty(), "deadline must suppress re-query");
        // Past the deadline with no responses: file does not exist.
        clock.advance(Nanos::from_secs(6));
        let out3 = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(3, 0));
        assert_eq!(out3.resolution, Resolution::NotFound);
    }

    #[test]
    fn staging_response_parks_writers_releases_readers() {
        let (_clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.resolve("/f", VM4, AccessMode::Write, Waiter::new(2, 0));
        let released = cache.update_have("/f", 1, true);
        assert_eq!(released, vec![(Waiter::new(1, 0), 1)], "reader released by stager");
        // Writer released once the file is online.
        let released = cache.update_have("/f", 1, false);
        assert_eq!(released, vec![(Waiter::new(2, 0), 1)]);
        let state = cache.peek("/f").unwrap();
        assert!(state.vh.contains(1) && state.vp.is_empty());
    }

    #[test]
    fn both_queues_independent_anchors() {
        let (_clock, cache) = setup();
        let r = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        let w = cache.resolve("/f", VM4, AccessMode::Write, Waiter::new(2, 0));
        assert_eq!(r.resolution, Resolution::Queued);
        assert_eq!(w.resolution, Resolution::Queued);
        assert!(w.query.is_empty(), "second resolve within deadline");
    }

    #[test]
    fn sweep_times_out_waiters() {
        let (clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        clock.advance(Nanos::from_millis(200)); // > 133 ms fast window
        let timed_out = cache.sweep();
        assert_eq!(timed_out, vec![Waiter::new(1, 0)]);
        // A subsequent response finds no waiters but still caches location.
        let released = cache.update_have("/f", 0, false);
        assert!(released.is_empty());
        assert!(cache.peek("/f").unwrap().vh.contains(0));
    }

    #[test]
    fn avoid_filters_redirect() {
        let (_clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 1, false);
        cache.update_have("/f", 3, false);
        let out = cache.resolve_full(
            "/f",
            VM4,
            ServerSet::EMPTY,
            AccessMode::Read,
            Waiter::new(2, 0),
            ServerSet::single(1),
            false,
        );
        match out.resolution {
            Resolution::Redirect { online, .. } => assert_eq!(online, ServerSet::single(3)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn offline_holders_are_requeried_not_redirected() {
        let (clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 1, false);
        // Server 1 goes offline (disconnected, not dropped).
        clock.advance(Nanos::from_secs(6)); // let the old deadline lapse
        let out = cache.resolve_full(
            "/f",
            VM4,
            ServerSet::single(1),
            AccessMode::Read,
            Waiter::new(2, 0),
            ServerSet::EMPTY,
            false,
        );
        // No online holder: queued, and the offline server sits in V_q for
        // a future look-up (it is unreachable, so not queried now).
        assert_eq!(out.resolution, Resolution::Queued);
        assert!(out.query.is_empty());
        assert!(cache.peek("/f").unwrap().vq.contains(1));
    }

    #[test]
    fn connect_correction_requeries_new_server() {
        let (clock, cache) = setup();
        cache.note_connect(0);
        cache.note_connect(1);
        let vm2 = ServerSet::first_n(2);
        cache.resolve("/f", vm2, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 0, false);
        // Server 2 joins; V_m for the path now includes it.
        cache.note_connect(2);
        let vm3 = ServerSet::first_n(3);
        clock.advance(Nanos::from_secs(6));
        let out = cache.resolve("/f", vm3, AccessMode::Read, Waiter::new(2, 0));
        // Redirect to the known holder, but server 2 must now be queried.
        assert!(matches!(out.resolution, Resolution::Redirect { .. }));
        assert_eq!(out.query, ServerSet::single(2));
    }

    #[test]
    fn refresh_requeries_everything() {
        let (_clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 1, false);
        // Client found server 1 broken: refresh, avoiding it.
        let out = cache.resolve_full(
            "/f",
            VM4,
            ServerSet::EMPTY,
            AccessMode::Read,
            Waiter::new(2, 0),
            ServerSet::single(1),
            true,
        );
        assert_eq!(out.resolution, Resolution::Queued);
        assert_eq!(out.query, VM4, "refresh floods all relevant servers");
        assert_eq!(CacheStats::get(&cache.stats().refreshes), 1);
    }

    #[test]
    fn queue_full_asks_for_full_wait() {
        let (_clock, cache) = setup();
        // Test config has 8 anchors; a miss consumes one (read). Fill the
        // rest with distinct files, then overflow.
        for i in 0..8 {
            let out =
                cache.resolve(&format!("/f{i}"), VM4, AccessMode::Read, Waiter::new(i as u64, 0));
            assert_eq!(out.resolution, Resolution::Queued);
        }
        let out = cache.resolve("/f9", VM4, AccessMode::Read, Waiter::new(9, 0));
        assert_eq!(out.resolution, Resolution::WaitRetry { delay: Nanos::from_secs(5) });
    }

    #[test]
    fn expiry_and_collection_lifecycle() {
        let (clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 0, false);
        assert_eq!(cache.len(), 1);
        // 64 ticks = one full lifetime.
        for _ in 0..64 {
            clock.advance(Nanos::from_secs(1));
            cache.tick();
        }
        assert!(cache.peek("/f").is_none(), "expired entry must be hidden");
        assert_eq!(cache.len(), 1, "hidden but not yet collected");
        assert_eq!(cache.collect(usize::MAX), 1);
        assert_eq!(cache.len(), 0);
        // The file resolves as a fresh miss afterwards.
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(2, 0));
        assert_eq!(out.resolution, Resolution::Queued);
        assert_eq!(out.query, VM4);
    }

    #[test]
    fn requeue_restores_unqueried_servers() {
        let (_clock, cache) = setup();
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        // Servers 2 and 3 could not be contacted.
        cache.requeue("/f", out.locref, ServerSet(0b1100));
        let state = cache.peek("/f").unwrap();
        assert_eq!(state.vq, ServerSet(0b1100));
    }

    #[test]
    fn requeue_with_stale_ref_falls_back_to_lookup() {
        let (clock, cache) = setup();
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        // Expire and collect, then re-create the entry.
        for _ in 0..64 {
            clock.advance(Nanos::from_secs(1));
            cache.tick();
        }
        cache.collect(usize::MAX);
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(2, 0));
        // The stale ref must not corrupt the new entry silently: fallback
        // lookup finds the new entry and applies the requeue there.
        cache.requeue("/f", out.locref, ServerSet::single(3));
        assert_eq!(CacheStats::get(&cache.stats().stale_refs), 1);
        assert!(cache.peek("/f").unwrap().vq.contains(3));
    }

    #[test]
    fn disconnect_requeries_survivors_and_parks_dead_holder() {
        let (_clock, cache) = setup();
        // /f is held by 1, with 2 and 3 still parked in V_q (never heard
        // from); /g is held only by 1; /h does not involve server 1 at all.
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.requeue("/f", out.locref, ServerSet(0b1100));
        cache.update_have("/f", 1, false);
        cache.resolve("/g", ServerSet(0b0010), AccessMode::Read, Waiter::new(2, 0));
        cache.update_have("/g", 1, false);
        cache.resolve("/h", ServerSet(0b0001), AccessMode::Read, Waiter::new(3, 0));
        cache.update_have("/h", 0, false);

        let refloods = cache.requery_on_disconnect(1, ServerSet::EMPTY);
        let pairs: Vec<(String, ServerSet)> =
            refloods.iter().map(|(p, _, ask)| (p.clone(), *ask)).collect();
        // /f: survivors 2 and 3 must be asked now; /g has no survivors
        // (nothing to flood); /h is untouched.
        assert_eq!(pairs, vec![("/f".to_string(), ServerSet(0b1100))]);
        let f = cache.peek("/f").unwrap();
        assert!(f.vh.is_empty(), "dead holder demoted");
        assert_eq!(f.vq, ServerSet::single(1), "dead server parked, survivors in flight");
        let g = cache.peek("/g").unwrap();
        assert_eq!(g.vq, ServerSet::single(1));
        assert!(cache.peek("/h").unwrap().vh.contains(0), "unrelated entry untouched");
        // The returned ref is live: a failed flood can requeue through it.
        let (_, locref, _) = &refloods[0];
        cache.requeue("/f", *locref, ServerSet::single(2));
        assert!(cache.peek("/f").unwrap().vq.contains(2));
        assert_eq!(CacheStats::get(&cache.stats().stale_refs), 0);
    }

    #[test]
    fn invariant_audit_counts_visible_entries() {
        let (_clock, cache) = setup();
        assert_eq!(cache.invariant_violations(), (0, 0));
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 1, false);
        cache.resolve("/g", VM4, AccessMode::Read, Waiter::new(2, 0));
        assert_eq!(cache.invariant_violations(), (2, 0));
        cache.requery_on_disconnect(1, ServerSet::EMPTY);
        assert_eq!(cache.invariant_violations(), (2, 0), "recovery preserves the invariant");
    }

    #[test]
    fn update_have_after_expiry_recreates_entry() {
        let (clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        for _ in 0..64 {
            clock.advance(Nanos::from_secs(1));
            cache.tick();
        }
        cache.collect(usize::MAX);
        let released = cache.update_have("/f", 2, false);
        assert!(released.is_empty());
        assert!(cache.peek("/f").unwrap().vh.contains(2));
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use scalla_util::VirtualClock;

    const VM4: ServerSet = ServerSet(0b1111);

    fn cache_with_shards(n: usize) -> (Arc<VirtualClock>, NameCache) {
        let clock = Arc::new(VirtualClock::new());
        let cache = NameCache::new(CacheConfig::for_tests().with_shards(n), clock.clone());
        (clock, cache)
    }

    /// Enough distinct paths to populate every shard of a small cache.
    fn paths_covering_all_shards(cache: &NameCache) -> Vec<String> {
        let mut hit = vec![false; cache.shard_count()];
        let mut paths = Vec::new();
        for i in 0.. {
            let p = format!("/shard/f{i}");
            hit[cache.shard_of(&p)] = true;
            paths.push(p);
            if hit.iter().all(|h| *h) {
                break;
            }
        }
        paths
    }

    #[test]
    fn shard_selection_uses_high_bits_and_is_stable() {
        let (_clock, cache) = cache_with_shards(16);
        assert_eq!(cache.shard_count(), 16);
        for p in ["/a", "/b/c", "/long/path/name.root"] {
            let expect = (crc32(p.as_bytes()) >> 28) as usize;
            assert_eq!(cache.shard_of(p), expect, "power-of-two count = top bits");
        }
        let (_c1, one) = cache_with_shards(1);
        assert_eq!(one.shard_of("/anything"), 0);
    }

    #[test]
    fn shard_count_clamped_to_at_least_one() {
        let (_clock, cache) = cache_with_shards(0);
        assert_eq!(cache.shard_count(), 1);
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn aggregates_span_all_shards() {
        let (_clock, cache) = cache_with_shards(4);
        let paths = paths_covering_all_shards(&cache);
        for (i, p) in paths.iter().enumerate() {
            cache.resolve(p, VM4, AccessMode::Read, Waiter::new(i as u64, 0));
            cache.update_have(p, (i % 4) as u8, false);
        }
        assert_eq!(cache.len(), paths.len());
        assert!(cache.approx_bytes() > 0);
        assert_eq!(
            cache.chain_lengths().iter().sum::<usize>(),
            paths.len(),
            "every entry visible in exactly one shard's table"
        );
        for p in &paths {
            assert!(cache.peek(p).is_some());
        }
    }

    #[test]
    fn expiry_collects_across_shards() {
        let (clock, cache) = cache_with_shards(4);
        let paths = paths_covering_all_shards(&cache);
        for (i, p) in paths.iter().enumerate() {
            cache.resolve(p, VM4, AccessMode::Read, Waiter::new(i as u64, 0));
        }
        for _ in 0..64 {
            clock.advance(Nanos::from_secs(1));
            cache.tick();
        }
        assert_eq!(cache.collect(usize::MAX), paths.len());
        assert_eq!(cache.len(), 0);
        // Partial collection respects the budget across shard boundaries.
        for (i, p) in paths.iter().enumerate() {
            cache.resolve(p, VM4, AccessMode::Read, Waiter::new(i as u64, 0));
        }
        for _ in 0..64 {
            clock.advance(Nanos::from_secs(1));
            cache.tick();
        }
        assert_eq!(cache.collect(1), 1);
        assert_eq!(cache.collect(usize::MAX), paths.len() - 1);
    }

    #[test]
    fn locref_carries_owning_shard() {
        let (_clock, cache) = cache_with_shards(4);
        let paths = paths_covering_all_shards(&cache);
        for (i, p) in paths.iter().enumerate() {
            let out = cache.resolve(p, VM4, AccessMode::Read, Waiter::new(i as u64, 0));
            assert_eq!(out.locref.shard as usize, cache.shard_of(p));
            // The shard-routed fast path must land on the right object.
            cache.requeue(p, out.locref, ServerSet::single(3));
            assert!(cache.peek(p).unwrap().vq.contains(3));
        }
        assert_eq!(CacheStats::get(&cache.stats().stale_refs), 0);
    }

    #[test]
    fn requeue_with_foreign_shard_index_is_safe() {
        let (_clock, cache) = cache_with_shards(4);
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        // A reference forged with an absurd shard index must neither panic
        // nor corrupt another shard: fallback lookup by name applies it to
        // the right object.
        let forged = LocRef { shard: 9999, ..out.locref };
        cache.requeue("/f", forged, ServerSet::single(2));
        assert_eq!(CacheStats::get(&cache.stats().stale_refs), 1);
        assert!(cache.peek("/f").unwrap().vq.contains(2));
    }

    /// The same single-threaded op sequence must produce identical
    /// observable resolutions at any shard count (the model test in
    /// `tests/cache_model.rs` exercises this far harder).
    #[test]
    fn shard_count_does_not_change_observables() {
        let run = |shards: usize| {
            let (clock, cache) = cache_with_shards(shards);
            let mut log = Vec::new();
            for round in 0..3 {
                for i in 0..24 {
                    let p = format!("/obs/f{i}");
                    let out = cache.resolve(p.as_str(), VM4, AccessMode::Read, Waiter::new(i, 0));
                    log.push((out.resolution, out.query));
                    if i % 3 == round {
                        cache.update_have(&p, (i % 4) as u8, false);
                    }
                }
                clock.advance(Nanos::from_secs(2));
                cache.tick();
                cache.sweep();
            }
            log
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(16));
    }
}

#[cfg(test)]
mod backfill_tests {
    use super::*;
    use scalla_util::{Nanos, VirtualClock};

    /// Regression for a bug found by the model test: an entry created by a
    /// late server response must not turn into a spurious NotFound once
    /// that responder leaves V_m — the unqueried servers must be asked.
    #[test]
    fn backfilled_entry_requeries_instead_of_notfound() {
        let clock = Arc::new(VirtualClock::new());
        let cache = NameCache::new(CacheConfig::for_tests(), clock.clone());
        for s in 0..8 {
            cache.note_connect(s);
        }
        // Unsolicited response creates the entry (the original query round
        // expired long ago).
        cache.update_have("/late/f", 4, false);
        // Server 4 is then dropped from the path's eligibility.
        let vm_without_4 = ServerSet::first_n(8).without(4);
        clock.advance(Nanos::from_millis(1));
        let out = cache.resolve("/late/f", vm_without_4, AccessMode::Read, Waiter::new(1, 0));
        assert_eq!(out.resolution, Resolution::Queued, "must re-query, not conclude NotFound");
        assert_eq!(out.query, vm_without_4, "every eligible server re-asked");
    }

    /// The backfilled entry still serves immediately while its responder
    /// remains eligible.
    #[test]
    fn backfilled_entry_redirects_while_holder_eligible() {
        let clock = Arc::new(VirtualClock::new());
        let cache = NameCache::new(CacheConfig::for_tests(), clock.clone());
        for s in 0..4 {
            cache.note_connect(s);
        }
        cache.update_have("/late/g", 2, false);
        clock.advance(Nanos::from_millis(1));
        let out =
            cache.resolve("/late/g", ServerSet::first_n(4), AccessMode::Read, Waiter::new(1, 0));
        match out.resolution {
            Resolution::Redirect { online, .. } => assert!(online.contains(2)),
            other => panic!("{other:?}"),
        }
        // The correction also queued the never-asked servers.
        assert_eq!(out.query, ServerSet::first_n(4).without(2));
    }
}
