//! The [`NameCache`] facade: the cmsd's name-resolution engine.
//!
//! This module composes the slab, hash table, window ring, connect log, and
//! fast response queue into the resolution protocol of §III-B1:
//!
//! 1. look the entry up (creating it on a miss, with a 5 s processing
//!    deadline),
//! 2. if `V_h`, `V_p`, `V_q` are all empty: *file does not exist* once the
//!    deadline has passed, otherwise wait on the fast response queue,
//! 3. if `V_h` or `V_p` is non-empty: redirect the client,
//! 4. if only `V_q` is non-empty (or every holder is offline): wait on the
//!    fast response queue,
//! 5. the caller queries each server in `V_q` (the cache cannot send
//!    messages; it returns the set to ask),
//! 6. `V_q` is cleared optimistically; servers that could not be queried
//!    are put back via [`NameCache::requeue`].
//!
//! Deadline-based synchronization (§III-C2) ensures only one thread floods
//! queries per object; everyone else parks on the fast response queue.
//!
//! Locking follows the paper's loose coupling: the cache interior and the
//! response queue have independent locks, always acquired in the order
//! *cache → response queue*, and every cross-reference is validated on use
//! so neither side ever needs the other's lock to make progress.

use crate::config::CacheConfig;
use crate::correct::{ConnectLog, CorrectionKind};
use crate::loc::{AccessMode, LocState};
use crate::respq::{RespQueue, Waiter};
use crate::slab::{LocRef, LocSlab, RespRef};
use crate::stats::CacheStats;
use crate::table::HashTable;
use crate::window::{TickOutcome, WindowRing};
use parking_lot::Mutex;
use scalla_util::{crc32, Clock, Nanos, ServerId, ServerSet};
use std::sync::Arc;

/// Client-facing outcome of a resolution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Redirect the client to one of these servers (selection policy is the
    /// caller's concern). `online` holds `V_h` members, `preparing` `V_p`
    /// members; both already exclude offline and avoided servers.
    Redirect {
        /// Servers holding the file online.
        online: ServerSet,
        /// Servers still staging the file.
        preparing: ServerSet,
    },
    /// The client was parked on the fast response queue; an answer (or a
    /// timeout) will arrive via [`NameCache::update_have`] /
    /// [`NameCache::sweep`].
    Queued,
    /// The file does not exist anywhere in the cluster (deadline passed
    /// with no positive response).
    NotFound,
    /// Tell the client to wait `delay` (the full period) and retry — queue
    /// full or inconsistent reference state.
    WaitRetry {
        /// How long the client must wait before retrying.
        delay: Nanos,
    },
}

/// Everything `resolve` tells the caller: what to answer the client, which
/// servers to query *now*, and a validated reference for follow-up calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolveOutcome {
    /// Client-facing resolution.
    pub resolution: Resolution,
    /// Servers this caller must query about the file (step 5). Empty when
    /// another thread is already querying or no query is needed.
    pub query: ServerSet,
    /// Reference + authenticator for constant-time follow-up operations.
    pub locref: LocRef,
}

struct Inner {
    slab: LocSlab,
    table: HashTable,
    windows: WindowRing,
    connects: ConnectLog,
    /// Hidden entries awaiting background physical removal.
    pending_removal: Vec<u32>,
}

/// The cmsd file-location cache.
pub struct NameCache {
    inner: Mutex<Inner>,
    respq: Mutex<RespQueue>,
    clock: Arc<dyn Clock>,
    config: CacheConfig,
    stats: CacheStats,
}

impl NameCache {
    /// Creates a cache with the given configuration and time source.
    pub fn new(config: CacheConfig, clock: Arc<dyn Clock>) -> NameCache {
        NameCache {
            inner: Mutex::new(Inner {
                slab: LocSlab::new(),
                table: HashTable::new(config.initial_table_size, config.max_load_percent),
                windows: WindowRing::new(),
                connects: ConnectLog::new(),
                pending_removal: Vec::new(),
            }),
            respq: Mutex::new(RespQueue::new(config.response_anchors, config.fast_window)),
            clock,
            config,
            stats: CacheStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Records a server (re)connect in the connect log (`N_c += 1`,
    /// `C[id] := N_c`). Membership calls this at login time.
    pub fn note_connect(&self, id: ServerId) -> u64 {
        self.inner.lock().connects.note_connect(id)
    }

    /// Current master connect counter `N_c`.
    pub fn nc(&self) -> u64 {
        self.inner.lock().connects.nc()
    }

    /// Resolves with default options: no offline servers, nothing avoided,
    /// not a refresh.
    pub fn resolve(
        &self,
        path: &str,
        vm: ServerSet,
        mode: AccessMode,
        waiter: Waiter,
    ) -> ResolveOutcome {
        self.resolve_full(path, vm, ServerSet::EMPTY, mode, waiter, ServerSet::EMPTY, false)
    }

    /// Full-control resolution.
    ///
    /// * `vm` — eligibility vector for the path, "looked up prior and
    ///   passed to the cache look-up method" (§III-A4).
    /// * `offline` — servers currently disconnected but not yet dropped;
    ///   holders among them are moved to `V_q` (§III-A4).
    /// * `avoid` — servers the client must not be vectored to (refresh
    ///   recovery, §III-C1).
    /// * `refresh` — treat as a new un-cached request without the re-add
    ///   overhead (§III-C1).
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_full(
        &self,
        path: &str,
        vm: ServerSet,
        offline: ServerSet,
        mode: AccessMode,
        waiter: Waiter,
        avoid: ServerSet,
        refresh: bool,
    ) -> ResolveOutcome {
        let now = self.clock.now();
        let hash = crc32(path.as_bytes());
        CacheStats::bump(&self.stats.lookups);

        let mut inner = self.inner.lock();
        let found = inner.table.lookup(&inner.slab, path, hash);

        let slot = match found {
            Some(slot) if refresh => {
                // §III-C1: logically a new un-cached request; fresh V_q,
                // updated T_a (re-chaining deferred), new deadline.
                CacheStats::bump(&self.stats.refreshes);
                let nc = inner.connects.nc();
                let tw = inner.windows.current();
                let e = inner.slab.get_mut(slot);
                e.state = LocState::all_unknown(vm);
                e.cn = nc;
                e.ta = tw;
                e.deadline = now + self.config.full_delay;
                let locref = inner.slab.make_ref(slot);
                let query = vm - offline;
                inner.slab.get_mut(slot).state.vq = vm & offline; // unreachable now, ask next time
                let resolution = self.enqueue(&mut inner, slot, mode, waiter, now);
                return ResolveOutcome { resolution, query, locref };
            }
            Some(slot) => slot,
            None => {
                // Miss (or refresh of an expired entry): create.
                CacheStats::bump(&self.stats.misses);
                CacheStats::bump(&self.stats.creates);
                if refresh {
                    CacheStats::bump(&self.stats.refreshes);
                }
                let resizes_before = inner.table.resizes();
                let slot = inner.slab.alloc(path, hash);
                let nc = inner.connects.nc();
                {
                    let e = inner.slab.get_mut(slot);
                    e.state = LocState::all_unknown(vm);
                    e.cn = nc;
                    e.deadline = now + self.config.full_delay;
                }
                let Inner { slab, windows, table, .. } = &mut *inner;
                windows.chain_now(slab, slot);
                table.insert(slab, slot);
                CacheStats::add(&self.stats.resizes, inner.table.resizes() - resizes_before);

                let locref = inner.slab.make_ref(slot);
                // Step 5/6: caller queries every reachable eligible server;
                // unreachable (offline) ones stay in V_q for next time.
                let query = vm - offline;
                inner.slab.get_mut(slot).state.vq = vm & offline;
                let resolution = self.enqueue(&mut inner, slot, mode, waiter, now);
                return ResolveOutcome { resolution, query, locref };
            }
        };

        // ---- Hit path ----
        let locref = inner.slab.make_ref(slot);
        let (mut state, mut cn, ta, old_deadline) = {
            let e = inner.slab.get(slot);
            (e.state, e.cn, e.ta, e.deadline)
        };

        // Fetch-time corrections (§III-A4).
        match inner.connects.correct(&mut state, &mut cn, ta, vm) {
            CorrectionKind::Clean => CacheStats::bump(&self.stats.corrections_clean),
            CorrectionKind::MemoHit => CacheStats::bump(&self.stats.corrections_memo),
            CorrectionKind::Computed => CacheStats::bump(&self.stats.corrections_computed),
        }

        // Offline holders are re-queried on a later look-up (§III-A4).
        let off_holders = (state.vh | state.vp) & offline;
        state.requery(off_holders);

        let online = (state.vh - avoid) - offline;
        let preparing = (state.vp - avoid) - offline;

        // Query flooding decision (deadline synchronization, §III-C2):
        // only the thread that finds an expired deadline issues queries.
        let mut query = ServerSet::EMPTY;
        let reachable_vq = state.vq - offline;
        let mut deadline = old_deadline;
        if !reachable_vq.is_empty() && now > old_deadline {
            query = reachable_vq;
            state.vq &= offline;
            deadline = now + self.config.full_delay;
        }

        let resolution = if !online.is_empty() || !preparing.is_empty() {
            CacheStats::bump(&self.stats.hits);
            Resolution::Redirect { online, preparing }
        } else if !state.vq.is_empty() || !query.is_empty() {
            // Step 4: queries outstanding (ours or another thread's).
            Resolution::Queued
        } else if now > old_deadline {
            // Step 2: nothing known, deadline passed -> does not exist.
            Resolution::NotFound
        } else {
            Resolution::Queued
        };

        // Write back the corrected state.
        {
            let e = inner.slab.get_mut(slot);
            e.state = state;
            e.cn = cn;
            e.deadline = deadline;
        }

        let resolution = match resolution {
            Resolution::Queued => self.enqueue(&mut inner, slot, mode, waiter, now),
            other => other,
        };
        ResolveOutcome { resolution, query, locref }
    }

    /// Parks `waiter` on the fast response queue for `slot` (§III-B step 4).
    /// Must be called with the cache lock held; takes the response-queue
    /// lock (lock order: cache → respq).
    fn enqueue(
        &self,
        inner: &mut Inner,
        slot: u32,
        mode: AccessMode,
        waiter: Waiter,
        now: Nanos,
    ) -> Resolution {
        let existing = match mode {
            AccessMode::Read => inner.slab.get(slot).rref,
            AccessMode::Write => inner.slab.get(slot).wref,
        };
        let mut respq = self.respq.lock();
        // A severed association (swept anchor) falls through to a new one.
        if existing.is_some() && respq.append(existing, slot, waiter) {
            CacheStats::bump(&self.stats.queued_waiters);
            return Resolution::Queued;
        }
        match respq.open(slot, mode, waiter, now) {
            Ok(r) => {
                let e = inner.slab.get_mut(slot);
                match mode {
                    AccessMode::Read => e.rref = r,
                    AccessMode::Write => e.wref = r,
                }
                CacheStats::bump(&self.stats.queued_waiters);
                Resolution::Queued
            }
            Err(_) => {
                CacheStats::bump(&self.stats.queue_full);
                Resolution::WaitRetry { delay: self.config.full_delay }
            }
        }
    }

    /// Records a server's positive response ("I have the file", or "I am
    /// staging it" when `staging`), releasing any waiting clients.
    ///
    /// Returns the released waiters, each paired with the responding
    /// server, for the response thread to redirect (§III-B1). File names
    /// and hash keys are passed along responses in the paper; use
    /// [`NameCache::update_have_hashed`] when the hash is already known.
    pub fn update_have(
        &self,
        path: &str,
        server: ServerId,
        staging: bool,
    ) -> Vec<(Waiter, ServerId)> {
        self.update_have_hashed(path, crc32(path.as_bytes()), server, staging)
    }

    /// [`NameCache::update_have`] with a precomputed hash — "this
    /// eliminates the need to generate the hash key for each response".
    pub fn update_have_hashed(
        &self,
        path: &str,
        hash: u32,
        server: ServerId,
        staging: bool,
    ) -> Vec<(Waiter, ServerId)> {
        let mut inner = self.inner.lock();
        let slot = match inner.table.lookup(&inner.slab, path, hash) {
            Some(slot) => slot,
            None => {
                // Entry expired between query and response: re-cache the
                // answer so the client's retry hits. The object is
                // *incomplete* — no query round backs it — so seed `V_q`
                // with every server that has ever connected (the connect
                // log knows) except the responder, forcing a fresh flood
                // before any negative verdict can be reached. Fetch-time
                // `V_m` clipping scopes the set to the path (§III-A4).
                CacheStats::bump(&self.stats.creates);
                let slot = inner.slab.alloc(path, hash);
                let everyone = inner.connects.vc_since(0);
                let nc = inner.connects.nc();
                {
                    let e = inner.slab.get_mut(slot);
                    e.state.vq = everyone;
                    e.cn = nc;
                }
                let Inner { slab, windows, table, .. } = &mut *inner;
                windows.chain_now(slab, slot);
                table.insert(slab, slot);
                slot
            }
        };
        inner.slab.get_mut(slot).state.record_have(server, staging);

        // Release waiters: both access modes are acceptable targets once a
        // server holds the file (selection among modes is the node's
        // concern). Writers are only released by an online holder.
        let mut released = Vec::new();
        let refs: Vec<(AccessMode, RespRef)> = {
            let e = inner.slab.get(slot);
            let mut v = Vec::with_capacity(2);
            if e.rref.is_some() {
                v.push((AccessMode::Read, e.rref));
            }
            if !staging && e.wref.is_some() {
                v.push((AccessMode::Write, e.wref));
            }
            v
        };
        if !refs.is_empty() {
            let mut respq = self.respq.lock();
            for (mode, r) in refs {
                if let Some(waiters) = respq.satisfy(r, slot) {
                    released.extend(waiters.into_iter().map(|w| (w, server)));
                }
                let e = inner.slab.get_mut(slot);
                match mode {
                    AccessMode::Read => e.rref = RespRef::NONE,
                    AccessMode::Write => e.wref = RespRef::NONE,
                }
            }
        }
        CacheStats::add(&self.stats.fast_releases, released.len() as u64);
        released
    }

    /// Puts servers that could not be queried back into the object's `V_q`
    /// (§III-B1 step 6). Validated by the reference authenticator; a stale
    /// reference falls back to a full look-up, and a vanished entry is
    /// simply dropped (the client will retry).
    pub fn requeue(&self, path: &str, locref: LocRef, servers: ServerSet) {
        if servers.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let slot = if inner.slab.is_valid(locref) && inner.slab.get(locref.slot).is_visible() {
            locref.slot
        } else {
            CacheStats::bump(&self.stats.stale_refs);
            match inner.table.lookup(&inner.slab, path, crc32(path.as_bytes())) {
                Some(s) => s,
                None => return,
            }
        };
        inner.slab.get_mut(slot).state.requery(servers);
    }

    /// Reads the current location state of `path`, if cached and visible.
    pub fn peek(&self, path: &str) -> Option<LocState> {
        let inner = self.inner.lock();
        let slot = inner.table.lookup(&inner.slab, path, crc32(path.as_bytes()))?;
        Some(inner.slab.get(slot).state)
    }

    /// The fast-response sweep (the 133 ms thread body). Returns waiters
    /// whose fast window expired; each must be told to wait the full period
    /// and retry.
    pub fn sweep(&self) -> Vec<Waiter> {
        let now = self.clock.now();
        let timed_out = self.respq.lock().sweep(now);
        CacheStats::add(&self.stats.queue_timeouts, timed_out.len() as u64);
        timed_out
    }

    /// Advances the window clock (`L_t/64` tick thread body): hides the
    /// expiring window, performs deferred re-chaining, queues hidden
    /// entries for background collection.
    pub fn tick(&self) -> TickOutcome {
        let mut inner = self.inner.lock();
        let Inner { slab, windows, .. } = &mut *inner;
        let out = windows.tick(slab);
        CacheStats::add(&self.stats.evictions, out.expired.len() as u64);
        CacheStats::add(&self.stats.rechained, out.rechained as u64);
        inner.pending_removal.extend_from_slice(&out.expired);
        out
    }

    /// Background physical removal: unlinks and releases up to `max`
    /// hidden entries. Returns how many were collected.
    pub fn collect(&self, max: usize) -> usize {
        let mut inner = self.inner.lock();
        let n = inner.pending_removal.len().min(max);
        for _ in 0..n {
            let slot = inner.pending_removal.pop().expect("counted above");
            if inner.slab.get(slot).in_use {
                let Inner { slab, table, .. } = &mut *inner;
                table.remove(slab, slot);
                slab.release(slot);
            }
        }
        CacheStats::add(&self.stats.collected, n as u64);
        n
    }

    /// Live location objects (visible + hidden-awaiting-collection).
    pub fn len(&self) -> usize {
        self.inner.lock().slab.live()
    }

    /// Whether the cache holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint (experiment E12).
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner.slab.approx_bytes() + inner.table.bucket_count() * std::mem::size_of::<u32>()
    }

    /// Hash-table bucket count (always Fibonacci).
    pub fn bucket_count(&self) -> usize {
        self.inner.lock().table.bucket_count()
    }

    /// Per-bucket chain lengths (experiment E4).
    pub fn chain_lengths(&self) -> Vec<usize> {
        let inner = self.inner.lock();
        inner.table.chain_lengths(&inner.slab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_util::VirtualClock;

    fn setup() -> (Arc<VirtualClock>, NameCache) {
        let clock = Arc::new(VirtualClock::new());
        let cache = NameCache::new(CacheConfig::for_tests(), clock.clone());
        (clock, cache)
    }

    const VM4: ServerSet = ServerSet(0b1111);

    #[test]
    fn miss_then_response_then_hit() {
        let (_clock, cache) = setup();
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        assert_eq!(out.resolution, Resolution::Queued);
        assert_eq!(out.query, VM4, "all eligible servers must be queried");

        let released = cache.update_have("/f", 2, false);
        assert_eq!(released, vec![(Waiter::new(1, 0), 2)]);

        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(2, 0));
        match out.resolution {
            Resolution::Redirect { online, preparing } => {
                assert_eq!(online, ServerSet::single(2));
                assert!(preparing.is_empty());
            }
            other => panic!("expected redirect, got {other:?}"),
        }
        assert_eq!(CacheStats::get(&cache.stats().hits), 1);
    }

    #[test]
    fn deadline_synchronizes_queries() {
        let (clock, cache) = setup();
        let out1 = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        assert_eq!(out1.query, VM4);
        // Second client within the deadline: queued, no duplicate flood.
        clock.advance(Nanos::from_millis(10));
        let out2 = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(2, 0));
        assert_eq!(out2.resolution, Resolution::Queued);
        assert!(out2.query.is_empty(), "deadline must suppress re-query");
        // Past the deadline with no responses: file does not exist.
        clock.advance(Nanos::from_secs(6));
        let out3 = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(3, 0));
        assert_eq!(out3.resolution, Resolution::NotFound);
    }

    #[test]
    fn staging_response_parks_writers_releases_readers() {
        let (_clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.resolve("/f", VM4, AccessMode::Write, Waiter::new(2, 0));
        let released = cache.update_have("/f", 1, true);
        assert_eq!(released, vec![(Waiter::new(1, 0), 1)], "reader released by stager");
        // Writer released once the file is online.
        let released = cache.update_have("/f", 1, false);
        assert_eq!(released, vec![(Waiter::new(2, 0), 1)]);
        let state = cache.peek("/f").unwrap();
        assert!(state.vh.contains(1) && state.vp.is_empty());
    }

    #[test]
    fn both_queues_independent_anchors() {
        let (_clock, cache) = setup();
        let r = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        let w = cache.resolve("/f", VM4, AccessMode::Write, Waiter::new(2, 0));
        assert_eq!(r.resolution, Resolution::Queued);
        assert_eq!(w.resolution, Resolution::Queued);
        assert!(w.query.is_empty(), "second resolve within deadline");
    }

    #[test]
    fn sweep_times_out_waiters() {
        let (clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        clock.advance(Nanos::from_millis(200)); // > 133 ms fast window
        let timed_out = cache.sweep();
        assert_eq!(timed_out, vec![Waiter::new(1, 0)]);
        // A subsequent response finds no waiters but still caches location.
        let released = cache.update_have("/f", 0, false);
        assert!(released.is_empty());
        assert!(cache.peek("/f").unwrap().vh.contains(0));
    }

    #[test]
    fn avoid_filters_redirect() {
        let (_clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 1, false);
        cache.update_have("/f", 3, false);
        let out = cache.resolve_full(
            "/f", VM4, ServerSet::EMPTY, AccessMode::Read,
            Waiter::new(2, 0), ServerSet::single(1), false,
        );
        match out.resolution {
            Resolution::Redirect { online, .. } => assert_eq!(online, ServerSet::single(3)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn offline_holders_are_requeried_not_redirected() {
        let (clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 1, false);
        // Server 1 goes offline (disconnected, not dropped).
        clock.advance(Nanos::from_secs(6)); // let the old deadline lapse
        let out = cache.resolve_full(
            "/f", VM4, ServerSet::single(1), AccessMode::Read,
            Waiter::new(2, 0), ServerSet::EMPTY, false,
        );
        // No online holder: queued, and the offline server sits in V_q for
        // a future look-up (it is unreachable, so not queried now).
        assert_eq!(out.resolution, Resolution::Queued);
        assert!(out.query.is_empty());
        assert!(cache.peek("/f").unwrap().vq.contains(1));
    }

    #[test]
    fn connect_correction_requeries_new_server() {
        let (clock, cache) = setup();
        cache.note_connect(0);
        cache.note_connect(1);
        let vm2 = ServerSet::first_n(2);
        cache.resolve("/f", vm2, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 0, false);
        // Server 2 joins; V_m for the path now includes it.
        cache.note_connect(2);
        let vm3 = ServerSet::first_n(3);
        clock.advance(Nanos::from_secs(6));
        let out = cache.resolve("/f", vm3, AccessMode::Read, Waiter::new(2, 0));
        // Redirect to the known holder, but server 2 must now be queried.
        assert!(matches!(out.resolution, Resolution::Redirect { .. }));
        assert_eq!(out.query, ServerSet::single(2));
    }

    #[test]
    fn refresh_requeries_everything() {
        let (_clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 1, false);
        // Client found server 1 broken: refresh, avoiding it.
        let out = cache.resolve_full(
            "/f", VM4, ServerSet::EMPTY, AccessMode::Read,
            Waiter::new(2, 0), ServerSet::single(1), true,
        );
        assert_eq!(out.resolution, Resolution::Queued);
        assert_eq!(out.query, VM4, "refresh floods all relevant servers");
        assert_eq!(CacheStats::get(&cache.stats().refreshes), 1);
    }

    #[test]
    fn queue_full_asks_for_full_wait() {
        let (_clock, cache) = setup();
        // Test config has 8 anchors; a miss consumes one (read). Fill the
        // rest with distinct files, then overflow.
        for i in 0..8 {
            let out = cache.resolve(
                &format!("/f{i}"), VM4, AccessMode::Read, Waiter::new(i as u64, 0),
            );
            assert_eq!(out.resolution, Resolution::Queued);
        }
        let out = cache.resolve("/f9", VM4, AccessMode::Read, Waiter::new(9, 0));
        assert_eq!(
            out.resolution,
            Resolution::WaitRetry { delay: Nanos::from_secs(5) }
        );
    }

    #[test]
    fn expiry_and_collection_lifecycle() {
        let (clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        cache.update_have("/f", 0, false);
        assert_eq!(cache.len(), 1);
        // 64 ticks = one full lifetime.
        for _ in 0..64 {
            clock.advance(Nanos::from_secs(1));
            cache.tick();
        }
        assert!(cache.peek("/f").is_none(), "expired entry must be hidden");
        assert_eq!(cache.len(), 1, "hidden but not yet collected");
        assert_eq!(cache.collect(usize::MAX), 1);
        assert_eq!(cache.len(), 0);
        // The file resolves as a fresh miss afterwards.
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(2, 0));
        assert_eq!(out.resolution, Resolution::Queued);
        assert_eq!(out.query, VM4);
    }

    #[test]
    fn requeue_restores_unqueried_servers() {
        let (_clock, cache) = setup();
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        // Servers 2 and 3 could not be contacted.
        cache.requeue("/f", out.locref, ServerSet(0b1100));
        let state = cache.peek("/f").unwrap();
        assert_eq!(state.vq, ServerSet(0b1100));
    }

    #[test]
    fn requeue_with_stale_ref_falls_back_to_lookup() {
        let (clock, cache) = setup();
        let out = cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        // Expire and collect, then re-create the entry.
        for _ in 0..64 {
            clock.advance(Nanos::from_secs(1));
            cache.tick();
        }
        cache.collect(usize::MAX);
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(2, 0));
        // The stale ref must not corrupt the new entry silently: fallback
        // lookup finds the new entry and applies the requeue there.
        cache.requeue("/f", out.locref, ServerSet::single(3));
        assert_eq!(CacheStats::get(&cache.stats().stale_refs), 1);
        assert!(cache.peek("/f").unwrap().vq.contains(3));
    }

    #[test]
    fn update_have_after_expiry_recreates_entry() {
        let (clock, cache) = setup();
        cache.resolve("/f", VM4, AccessMode::Read, Waiter::new(1, 0));
        for _ in 0..64 {
            clock.advance(Nanos::from_secs(1));
            cache.tick();
        }
        cache.collect(usize::MAX);
        let released = cache.update_have("/f", 2, false);
        assert!(released.is_empty());
        assert!(cache.peek("/f").unwrap().vh.contains(2));
    }
}

#[cfg(test)]
mod backfill_tests {
    use super::*;
    use scalla_util::{Nanos, VirtualClock};

    /// Regression for a bug found by the model test: an entry created by a
    /// late server response must not turn into a spurious NotFound once
    /// that responder leaves V_m — the unqueried servers must be asked.
    #[test]
    fn backfilled_entry_requeries_instead_of_notfound() {
        let clock = Arc::new(VirtualClock::new());
        let cache = NameCache::new(CacheConfig::for_tests(), clock.clone());
        for s in 0..8 {
            cache.note_connect(s);
        }
        // Unsolicited response creates the entry (the original query round
        // expired long ago).
        cache.update_have("/late/f", 4, false);
        // Server 4 is then dropped from the path's eligibility.
        let vm_without_4 = ServerSet::first_n(8).without(4);
        clock.advance(Nanos::from_millis(1));
        let out = cache.resolve("/late/f", vm_without_4, AccessMode::Read, Waiter::new(1, 0));
        assert_eq!(
            out.resolution,
            Resolution::Queued,
            "must re-query, not conclude NotFound"
        );
        assert_eq!(out.query, vm_without_4, "every eligible server re-asked");
    }

    /// The backfilled entry still serves immediately while its responder
    /// remains eligible.
    #[test]
    fn backfilled_entry_redirects_while_holder_eligible() {
        let clock = Arc::new(VirtualClock::new());
        let cache = NameCache::new(CacheConfig::for_tests(), clock.clone());
        for s in 0..4 {
            cache.note_connect(s);
        }
        cache.update_have("/late/g", 2, false);
        clock.advance(Nanos::from_millis(1));
        let out = cache.resolve("/late/g", ServerSet::first_n(4), AccessMode::Read, Waiter::new(1, 0));
        match out.resolution {
            Resolution::Redirect { online, .. } => assert!(online.contains(2)),
            other => panic!("{other:?}"),
        }
        // The correction also queued the never-asked servers.
        assert_eq!(out.query, ServerSet::first_n(4).without(2));
    }
}
