//! Sliding-window eviction (§III-A3) with deferred re-chaining (§III-C1).
//!
//! The object lifetime `L_t` is divided into 64 windows. A background clock
//! ticks every `L_t/64` (7.5 min at the default 8 h lifetime). Objects are
//! chained per window by their add time `T_a`; a tick:
//!
//! 1. advances the window clock `T_w`,
//! 2. *hides* every entry in the expiring chain whose `T_a` equals the new
//!    `T_w` (set key length to zero — the object can no longer be found),
//! 3. *re-chains* entries whose `T_a` changed since they were chained
//!    (refreshed objects; §III-C1 defers this work to the sweep, making it
//!    linear instead of quadratic), and
//! 4. hands the hidden entries to the caller for background physical
//!    removal.
//!
//! On average only 1/64 ≈ 1.6 % of the cache is touched per tick, the
//! figure the paper quotes.

use crate::config::WINDOW_COUNT;
use crate::slab::{LocSlab, NIL};

/// Result of one window tick, used by eviction statistics and experiment E5.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TickOutcome {
    /// Slots hidden this tick, awaiting background physical removal.
    pub expired: Vec<u32>,
    /// Entries moved to their correct window chain (deferred re-chaining).
    pub rechained: usize,
    /// Total entries scanned (length of the expiring chain).
    pub scanned: usize,
    /// The new window index `T_w`.
    pub new_window: u8,
}

/// The 64 window chains plus the window clock.
pub struct WindowRing {
    heads: [u32; WINDOW_COUNT],
    /// Current window index, `T_w mod 64`.
    tw: u8,
    /// Monotonic tick counter (diagnostics; the algorithm itself only ever
    /// uses `tw`).
    ticks: u64,
}

impl WindowRing {
    /// Creates a ring at window 0.
    pub fn new() -> WindowRing {
        WindowRing { heads: [NIL; WINDOW_COUNT], tw: 0, ticks: 0 }
    }

    /// The current window index (`T_a` for newly added objects).
    #[inline]
    pub fn current(&self) -> u8 {
        self.tw
    }

    /// Total ticks since creation.
    #[inline]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Chains `slot` into the current window and stamps its `T_a`.
    pub fn chain_now(&mut self, slab: &mut LocSlab, slot: u32) {
        let w = self.tw;
        let e = slab.get_mut(slot);
        e.ta = w;
        self.chain_into(slab, slot, w);
    }

    fn chain_into(&mut self, slab: &mut LocSlab, slot: u32, w: u8) {
        let head = self.heads[w as usize];
        let e = slab.get_mut(slot);
        e.chained_in = w;
        e.wnext = head;
        self.heads[w as usize] = slot;
    }

    /// Marks `slot` as logically refreshed: `T_a` becomes the current
    /// window but the entry is *not* moved between chains — "the task is
    /// left to a future thread" (§III-C1).
    #[inline]
    pub fn refresh_stamp(&self, slab: &mut LocSlab, slot: u32) {
        slab.get_mut(slot).ta = self.tw;
    }

    /// Advances the window clock and processes the expiring chain.
    pub fn tick(&mut self, slab: &mut LocSlab) -> TickOutcome {
        self.ticks += 1;
        self.tw = ((self.tw as usize + 1) % WINDOW_COUNT) as u8;
        let w = self.tw;
        let mut out = TickOutcome { new_window: w, ..TickOutcome::default() };

        // Consume the whole chain; survivors are re-chained, expired
        // entries hidden and reported.
        let mut cur = std::mem::replace(&mut self.heads[w as usize], NIL);
        while cur != NIL {
            out.scanned += 1;
            let next = slab.get(cur).wnext;
            let e = slab.get_mut(cur);
            if !e.in_use {
                // Already released through some other path; just drop the
                // chain link.
            } else if e.ta == w {
                // Added (or last refreshed) exactly 64 windows ago: the
                // lifetime is up. Hide now, physically remove later.
                e.hide();
                out.expired.push(cur);
            } else {
                // Refreshed since it was chained: deferred re-chaining.
                let ta = e.ta;
                self.chain_into(slab, cur, ta);
                out.rechained += 1;
            }
            cur = next;
        }
        out
    }

    /// Number of entries currently chained in each window (diagnostics).
    pub fn chain_sizes(&self, slab: &LocSlab) -> [usize; WINDOW_COUNT] {
        let mut sizes = [0usize; WINDOW_COUNT];
        for (w, &head) in self.heads.iter().enumerate() {
            let mut cur = head;
            while cur != NIL {
                sizes[w] += 1;
                cur = slab.get(cur).wnext;
            }
        }
        sizes
    }
}

impl Default for WindowRing {
    fn default() -> WindowRing {
        WindowRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(slab: &mut LocSlab, name: &str) -> u32 {
        slab.alloc(name, scalla_util::crc32(name.as_bytes()))
    }

    #[test]
    fn entry_expires_after_exactly_64_ticks() {
        let mut slab = LocSlab::new();
        let mut ring = WindowRing::new();
        let slot = alloc(&mut slab, "/f");
        ring.chain_now(&mut slab, slot);
        for i in 1..WINDOW_COUNT {
            let out = ring.tick(&mut slab);
            assert!(out.expired.is_empty(), "expired early at tick {i}");
        }
        let out = ring.tick(&mut slab);
        assert_eq!(out.expired, vec![slot]);
        assert!(!slab.get(slot).is_visible(), "expiry must hide the entry");
    }

    #[test]
    fn refresh_defers_rechaining_and_extends_life() {
        let mut slab = LocSlab::new();
        let mut ring = WindowRing::new();
        let slot = alloc(&mut slab, "/f");
        ring.chain_now(&mut slab, slot);
        // Half a lifetime later, the object is refreshed.
        for _ in 0..32 {
            ring.tick(&mut slab);
        }
        ring.refresh_stamp(&mut slab, slot);
        assert_eq!(slab.get(slot).ta, ring.current());
        assert_eq!(slab.get(slot).chained_in, 0, "not re-chained immediately");
        // 32 more ticks reach the original chain: the entry must be
        // re-chained, not expired.
        let mut rechained_total = 0;
        for _ in 0..32 {
            let out = ring.tick(&mut slab);
            assert!(out.expired.is_empty());
            rechained_total += out.rechained;
        }
        assert_eq!(rechained_total, 1);
        assert_eq!(slab.get(slot).chained_in, slab.get(slot).ta);
        // And it expires a full lifetime after the refresh.
        for _ in 0..31 {
            assert!(ring.tick(&mut slab).expired.is_empty());
        }
        let out = ring.tick(&mut slab);
        assert_eq!(out.expired, vec![slot]);
    }

    #[test]
    fn tick_scans_only_one_window() {
        let mut slab = LocSlab::new();
        let mut ring = WindowRing::new();
        // Spread 640 entries across all 64 windows.
        for w in 0..WINDOW_COUNT {
            for i in 0..10 {
                let slot = alloc(&mut slab, &format!("/w{w}/f{i}"));
                ring.chain_now(&mut slab, slot);
            }
            ring.tick(&mut slab);
        }
        // Steady state: each subsequent tick scans ~10 entries = 1/64 of
        // the 640 cached, the paper's 1.6 % claim.
        let out = ring.tick(&mut slab);
        assert_eq!(out.scanned, 10);
        assert_eq!(out.expired.len(), 10);
    }

    #[test]
    fn released_entries_fall_off_chains() {
        let mut slab = LocSlab::new();
        let mut ring = WindowRing::new();
        let a = alloc(&mut slab, "/a");
        let b = alloc(&mut slab, "/b");
        ring.chain_now(&mut slab, a);
        ring.chain_now(&mut slab, b);
        slab.release(a);
        for _ in 0..WINDOW_COUNT {
            let out = ring.tick(&mut slab);
            // The released slot must never be reported expired.
            assert!(!out.expired.contains(&a));
        }
    }

    #[test]
    fn chain_sizes_reflect_population() {
        let mut slab = LocSlab::new();
        let mut ring = WindowRing::new();
        for i in 0..5 {
            let s = alloc(&mut slab, &format!("/f{i}"));
            ring.chain_now(&mut slab, s);
        }
        let sizes = ring.chain_sizes(&slab);
        assert_eq!(sizes[ring.current() as usize], 5);
        assert_eq!(sizes.iter().sum::<usize>(), 5);
    }
}
