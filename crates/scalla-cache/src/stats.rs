//! Cache statistics counters.
//!
//! Everything the experiments need to observe — hit rates, correction
//! behaviour, eviction load, fast-queue effectiveness — is counted here with
//! relaxed atomics so reading them never perturbs the hot paths.
//!
//! The counters are deliberately lock-free: one `CacheStats` is shared by
//! every shard of the sharded [`crate::NameCache`], so a counter mutex (or
//! per-counter `Cell` behind the shard locks) would re-introduce exactly
//! the cross-shard contention point the sharding removed. `fetch_add`
//! guarantees no increment is ever lost, regardless of how many shards
//! update the same counter concurrently; `Relaxed` ordering is sufficient
//! because nothing synchronizes *through* a statistic.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters. All loads/stores are `Relaxed`; the counters
/// are advisory, not synchronization.
#[derive(Default, Debug)]
pub struct CacheStats {
    /// Total `resolve` calls.
    pub lookups: AtomicU64,
    /// Resolutions satisfied from cache with an immediate redirect.
    pub hits: AtomicU64,
    /// Resolutions that created a new location object.
    pub misses: AtomicU64,
    /// Location objects created (misses plus server-response backfills).
    pub creates: AtomicU64,
    /// Objects hidden by window expiry.
    pub evictions: AtomicU64,
    /// Objects physically removed by background collection.
    pub collected: AtomicU64,
    /// Entries moved between window chains by the deferred re-chaining
    /// sweep.
    pub rechained: AtomicU64,
    /// Fetch-time corrections where `C_n == N_c` (no work).
    pub corrections_clean: AtomicU64,
    /// Corrections satisfied from the per-window `V_wc` memo.
    pub corrections_memo: AtomicU64,
    /// Corrections that had to scan `C[]`.
    pub corrections_computed: AtomicU64,
    /// Hash-table growths.
    pub resizes: AtomicU64,
    /// Waiters enqueued on the fast response queue.
    pub queued_waiters: AtomicU64,
    /// Waiters released early by a server response (the fast path).
    pub fast_releases: AtomicU64,
    /// Waiters timed out of the fast queue (full delay imposed).
    pub queue_timeouts: AtomicU64,
    /// Resolutions rejected because the fast queue was full.
    pub queue_full: AtomicU64,
    /// Stale `LocRef` uses detected by the authenticator.
    pub stale_refs: AtomicU64,
    /// Refresh requests processed.
    pub refreshes: AtomicU64,
}

impl CacheStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of a counter.
    #[inline]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Takes a coherent-enough point-in-time copy of every counter (each
    /// load is atomic; the set is advisory).
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = CacheStats::get;
        StatsSnapshot {
            lookups: g(&self.lookups),
            hits: g(&self.hits),
            misses: g(&self.misses),
            creates: g(&self.creates),
            evictions: g(&self.evictions),
            collected: g(&self.collected),
            rechained: g(&self.rechained),
            corrections_clean: g(&self.corrections_clean),
            corrections_memo: g(&self.corrections_memo),
            corrections_computed: g(&self.corrections_computed),
            resizes: g(&self.resizes),
            queued_waiters: g(&self.queued_waiters),
            fast_releases: g(&self.fast_releases),
            queue_timeouts: g(&self.queue_timeouts),
            queue_full: g(&self.queue_full),
            stale_refs: g(&self.stale_refs),
            refreshes: g(&self.refreshes),
        }
    }

    /// Mirrors every counter into an observability registry under the
    /// given label set (e.g. `[("node", "3")]` so multiple cmsds can share
    /// one registry). `Counter::set` keeps re-exports idempotent.
    pub fn export_into(&self, reg: &scalla_obs::Registry, labels: &[(&str, &str)]) {
        let snap = self.snapshot();
        for (name, value) in snap.fields() {
            reg.counter(name, labels).set(value);
        }
    }

    /// Human-readable multi-line dump for experiment logs.
    pub fn report(&self) -> String {
        let g = CacheStats::get;
        format!(
            "lookups={} hits={} misses={} creates={} evictions={} collected={} \
             rechained={} corr_clean={} corr_memo={} corr_computed={} resizes={} \
             queued={} fast_releases={} timeouts={} queue_full={} stale_refs={} refreshes={}",
            g(&self.lookups),
            g(&self.hits),
            g(&self.misses),
            g(&self.creates),
            g(&self.evictions),
            g(&self.collected),
            g(&self.rechained),
            g(&self.corrections_clean),
            g(&self.corrections_memo),
            g(&self.corrections_computed),
            g(&self.resizes),
            g(&self.queued_waiters),
            g(&self.fast_releases),
            g(&self.queue_timeouts),
            g(&self.queue_full),
            g(&self.stale_refs),
            g(&self.refreshes),
        )
    }
}

/// Plain-value copy of [`CacheStats`], serializable for monitoring
/// pipelines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StatsSnapshot {
    /// See [`CacheStats::lookups`].
    pub lookups: u64,
    /// See [`CacheStats::hits`].
    pub hits: u64,
    /// See [`CacheStats::misses`].
    pub misses: u64,
    /// See [`CacheStats::creates`].
    pub creates: u64,
    /// See [`CacheStats::evictions`].
    pub evictions: u64,
    /// See [`CacheStats::collected`].
    pub collected: u64,
    /// See [`CacheStats::rechained`].
    pub rechained: u64,
    /// See [`CacheStats::corrections_clean`].
    pub corrections_clean: u64,
    /// See [`CacheStats::corrections_memo`].
    pub corrections_memo: u64,
    /// See [`CacheStats::corrections_computed`].
    pub corrections_computed: u64,
    /// See [`CacheStats::resizes`].
    pub resizes: u64,
    /// See [`CacheStats::queued_waiters`].
    pub queued_waiters: u64,
    /// See [`CacheStats::fast_releases`].
    pub fast_releases: u64,
    /// See [`CacheStats::queue_timeouts`].
    pub queue_timeouts: u64,
    /// See [`CacheStats::queue_full`].
    pub queue_full: u64,
    /// See [`CacheStats::stale_refs`].
    pub stale_refs: u64,
    /// See [`CacheStats::refreshes`].
    pub refreshes: u64,
}

impl StatsSnapshot {
    /// Every counter as a `(stable metric name, value)` pair — the single
    /// source of truth for both JSON and registry export, so a new counter
    /// added here automatically reaches every sink.
    pub fn fields(&self) -> [(&'static str, u64); 17] {
        [
            ("scalla_cache_lookups_total", self.lookups),
            ("scalla_cache_hits_total", self.hits),
            ("scalla_cache_misses_total", self.misses),
            ("scalla_cache_creates_total", self.creates),
            ("scalla_cache_evictions_total", self.evictions),
            ("scalla_cache_collected_total", self.collected),
            ("scalla_cache_rechained_total", self.rechained),
            ("scalla_cache_corrections_clean_total", self.corrections_clean),
            ("scalla_cache_corrections_memo_total", self.corrections_memo),
            ("scalla_cache_corrections_computed_total", self.corrections_computed),
            ("scalla_cache_resizes_total", self.resizes),
            ("scalla_cache_queued_waiters_total", self.queued_waiters),
            ("scalla_cache_fast_releases_total", self.fast_releases),
            ("scalla_cache_queue_timeouts_total", self.queue_timeouts),
            ("scalla_cache_queue_full_total", self.queue_full),
            ("scalla_cache_stale_refs_total", self.stale_refs),
            ("scalla_cache_refreshes_total", self.refreshes),
        ]
    }

    /// Serializes the snapshot as a flat JSON object (the serde shim is a
    /// no-op, so the monitoring format is rendered by hand). Keys use the
    /// short field names, plus the two derived ratios.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        for (name, value) in self.fields() {
            let key = name
                .strip_prefix("scalla_cache_")
                .and_then(|k| k.strip_suffix("_total"))
                .expect("metric names share the scalla_cache_*_total shape");
            out.push_str(&format!("\"{key}\": {value}, "));
        }
        out.push_str(&format!(
            "\"hit_ratio\": {:.6}, \"correction_memo_ratio\": {:.6}}}",
            self.hit_ratio(),
            self.correction_memo_ratio()
        ));
        out
    }

    /// Cache hit ratio over resolutions, in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of corrections satisfied without scanning `C[]`.
    pub fn correction_memo_ratio(&self) -> f64 {
        let dirty = self.corrections_memo + self.corrections_computed;
        if dirty == 0 {
            1.0
        } else {
            self.corrections_memo as f64 / dirty as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CacheStats::default();
        CacheStats::bump(&s.lookups);
        CacheStats::add(&s.lookups, 4);
        assert_eq!(CacheStats::get(&s.lookups), 5);
        assert!(s.report().contains("lookups=5"));
    }

    /// No increment may be lost under concurrent updates from many
    /// threads (the shards all share one `CacheStats`). `fetch_add` makes
    /// lost updates impossible; this pins that property against any future
    /// "optimization" towards plain loads/stores.
    #[test]
    fn concurrent_updates_lose_nothing() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 100_000;
        let s = std::sync::Arc::new(CacheStats::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut last = 0;
                    for i in 0..PER_THREAD {
                        CacheStats::bump(&s.lookups);
                        if i % 2 == t % 2 {
                            CacheStats::bump(&s.hits);
                        }
                        CacheStats::add(&s.fast_releases, 3);
                        // Concurrent readers must never observe torn or
                        // decreasing values (per-location coherence is the
                        // only cross-thread guarantee Relaxed gives, and
                        // the only one monitoring needs).
                        let snap = s.snapshot();
                        assert!(snap.lookups >= last, "counter went backwards");
                        last = snap.lookups;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(CacheStats::get(&s.lookups), THREADS * PER_THREAD);
        assert_eq!(CacheStats::get(&s.hits), THREADS * PER_THREAD / 2);
        assert_eq!(CacheStats::get(&s.fast_releases), 3 * THREADS * PER_THREAD);
    }

    #[test]
    fn snapshot_copies_everything() {
        let s = CacheStats::default();
        CacheStats::add(&s.lookups, 10);
        CacheStats::add(&s.hits, 4);
        CacheStats::add(&s.corrections_memo, 3);
        CacheStats::add(&s.corrections_computed, 1);
        let snap = s.snapshot();
        assert_eq!(snap.lookups, 10);
        assert_eq!(snap.hits, 4);
        assert!((snap.hit_ratio() - 0.4).abs() < 1e-12);
        assert!((snap.correction_memo_ratio() - 0.75).abs() < 1e-12);
        // Ratios degrade gracefully on empty snapshots.
        let empty = StatsSnapshot::default();
        assert_eq!(empty.hit_ratio(), 0.0);
        assert_eq!(empty.correction_memo_ratio(), 1.0);
    }

    #[test]
    fn snapshot_json_carries_every_counter() {
        let s = CacheStats::default();
        CacheStats::add(&s.lookups, 10);
        CacheStats::add(&s.hits, 4);
        CacheStats::add(&s.stale_refs, 2);
        let json = s.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"lookups\": 10"), "{json}");
        assert!(json.contains("\"hits\": 4"), "{json}");
        assert!(json.contains("\"stale_refs\": 2"), "{json}");
        assert!(json.contains("\"hit_ratio\": 0.4"), "{json}");
        // Flat object: one key per counter plus the two ratios, no nesting.
        assert_eq!(json.matches("\":").count(), 17 + 2, "{json}");
        assert_eq!(json.matches('{').count(), 1, "{json}");
    }

    #[test]
    fn export_mirrors_counters_into_registry() {
        let s = CacheStats::default();
        CacheStats::add(&s.lookups, 7);
        let reg = scalla_obs::Registry::new();
        s.export_into(&reg, &[("node", "3")]);
        CacheStats::add(&s.lookups, 1);
        s.export_into(&reg, &[("node", "3")]); // set(): latest snapshot wins
        let text = reg.prometheus_text();
        assert!(text.contains("scalla_cache_lookups_total{node=\"3\"} 8"), "{text}");
        assert!(text.contains("scalla_cache_stale_refs_total{node=\"3\"} 0"), "{text}");
    }
}
