//! The fast response queue (§III-B).
//!
//! Clients whose file is being located wait here instead of eating the full
//! 5 s request-rarely-respond delay. The queue is "an array of 1024 anchors
//! for a list of response objects and the corresponding cache entry",
//! handled by a thread that runs asynchronously to cache management and is
//! "loosely coupled to the cache so that response queue management has no
//! impact on cache look-ups":
//!
//! * Each anchor carries an **association id**; a location object's `R_r`/
//!   `R_w` reference stores the id it saw. Either side may drop the
//!   association unilaterally — the other detects it by a simple compare.
//! * The sweep thread clocks 133 ms periods; any request older than that is
//!   removed and its clients are told to wait a full period and retry.
//! * When a server responds positively, the waiters move to the response
//!   ready path and are released with the server's identity — typically
//!   ~100 µs after the query instead of 5 s.

use crate::loc::AccessMode;
use crate::slab::RespRef;
use scalla_util::Nanos;

/// A client waiting for a location answer. `client` identifies the
/// requester to the enclosing node; `tag` is an opaque request correlation
/// value carried back on release.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Waiter {
    /// Node-level client identity.
    pub client: u64,
    /// Opaque request tag echoed back to the caller.
    pub tag: u64,
}

impl Waiter {
    /// Creates a waiter.
    pub fn new(client: u64, tag: u64) -> Waiter {
        Waiter { client, tag }
    }
}

/// Error: all anchors are busy. The paper's remedy: "the client is asked to
/// wait a full time period (i.e., 5 seconds) and retry the operation."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Anchor {
    /// Association id; bumped whenever the anchor is released, severing any
    /// outstanding location-object reference to it.
    assoc: u64,
    /// The cache slot this anchor serves (loose back-pointer).
    slot: u32,
    /// Which access queue this anchor represents (`R_r` or `R_w`).
    mode: AccessMode,
    /// When the anchor acquired its first waiter.
    enqueued: Nanos,
    waiters: Vec<Waiter>,
    busy: bool,
}

/// The anchor array plus free-list bookkeeping.
pub struct RespQueue {
    anchors: Vec<Anchor>,
    free: Vec<u32>,
    fast_window: Nanos,
}

impl RespQueue {
    /// Creates a queue with `anchor_count` anchors and the given fast
    /// window (133 ms in the paper).
    pub fn new(anchor_count: usize, fast_window: Nanos) -> RespQueue {
        let anchors = (0..anchor_count)
            .map(|_| Anchor {
                assoc: 0,
                slot: 0,
                mode: AccessMode::Read,
                enqueued: Nanos::ZERO,
                waiters: Vec::new(),
                busy: false,
            })
            .collect::<Vec<_>>();
        let free = (0..anchor_count as u32).rev().collect();
        RespQueue { anchors, free, fast_window }
    }

    /// Number of busy anchors (diagnostics).
    pub fn busy_anchors(&self) -> usize {
        self.anchors.iter().filter(|a| a.busy).count()
    }

    /// Whether no requests are outstanding — the notification condition for
    /// waking the sweep thread ("only performed if the queue was empty").
    pub fn is_idle(&self) -> bool {
        self.free.len() == self.anchors.len()
    }

    /// Allocates a new anchor for `slot`/`mode` and seats the first waiter.
    pub fn open(
        &mut self,
        slot: u32,
        mode: AccessMode,
        waiter: Waiter,
        now: Nanos,
    ) -> Result<RespRef, QueueFull> {
        let idx = self.free.pop().ok_or(QueueFull)?;
        let a = &mut self.anchors[idx as usize];
        debug_assert!(!a.busy);
        a.busy = true;
        a.slot = slot;
        a.mode = mode;
        a.enqueued = now;
        a.waiters.clear();
        a.waiters.push(waiter);
        Ok(RespRef { anchor: idx, assoc: a.assoc })
    }

    /// Appends a waiter to an existing association if it is still valid for
    /// `slot`. Returns `false` when the association has been severed (the
    /// caller should then [`open`](RespQueue::open) a fresh anchor).
    pub fn append(&mut self, r: RespRef, slot: u32, waiter: Waiter) -> bool {
        let Some(a) = self.anchors.get_mut(r.anchor as usize) else {
            return false;
        };
        if !a.busy || a.assoc != r.assoc || a.slot != slot {
            return false;
        }
        a.waiters.push(waiter);
        true
    }

    /// Releases the waiters of a valid association (a server responded).
    /// The anchor is freed and the association severed. Returns `None` if
    /// the association was already gone.
    pub fn satisfy(&mut self, r: RespRef, slot: u32) -> Option<Vec<Waiter>> {
        self.satisfy_timed(r, slot).map(|(waiters, _)| waiters)
    }

    /// [`RespQueue::satisfy`], additionally returning when the anchor
    /// acquired its first waiter — the release latency observed by the
    /// fastest-waiting client is `now - enqueued`.
    pub fn satisfy_timed(&mut self, r: RespRef, slot: u32) -> Option<(Vec<Waiter>, Nanos)> {
        let a = self.anchors.get_mut(r.anchor as usize)?;
        if !a.busy || a.assoc != r.assoc || a.slot != slot {
            return None;
        }
        let waiters = std::mem::take(&mut a.waiters);
        let enqueued = a.enqueued;
        a.busy = false;
        a.assoc = a.assoc.wrapping_add(1);
        self.free.push(r.anchor);
        Some((waiters, enqueued))
    }

    /// The 133 ms sweep: removes every request older than the fast window
    /// and returns its waiters, which the caller must tell to wait a full
    /// period and retry.
    pub fn sweep(&mut self, now: Nanos) -> Vec<Waiter> {
        let mut timed_out = Vec::new();
        for idx in 0..self.anchors.len() {
            let a = &mut self.anchors[idx];
            if a.busy && now.since(a.enqueued) > self.fast_window {
                timed_out.append(&mut a.waiters);
                a.busy = false;
                a.assoc = a.assoc.wrapping_add(1);
                self.free.push(idx as u32);
            }
        }
        timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> RespQueue {
        RespQueue::new(4, Nanos::from_millis(133))
    }

    #[test]
    fn open_append_satisfy_roundtrip() {
        let mut q = q();
        let r = q.open(7, AccessMode::Read, Waiter::new(1, 10), Nanos::ZERO).unwrap();
        assert!(q.append(r, 7, Waiter::new(2, 20)));
        let waiters = q.satisfy(r, 7).unwrap();
        assert_eq!(waiters, vec![Waiter::new(1, 10), Waiter::new(2, 20)]);
        // Association is severed: further use fails.
        assert!(!q.append(r, 7, Waiter::new(3, 30)));
        assert!(q.satisfy(r, 7).is_none());
        assert!(q.is_idle());
    }

    #[test]
    fn append_rejects_wrong_slot() {
        let mut q = q();
        let r = q.open(7, AccessMode::Read, Waiter::new(1, 0), Nanos::ZERO).unwrap();
        assert!(!q.append(r, 8, Waiter::new(2, 0)));
    }

    #[test]
    fn queue_full_reported() {
        let mut q = q();
        for i in 0..4 {
            q.open(i, AccessMode::Read, Waiter::new(i as u64, 0), Nanos::ZERO).unwrap();
        }
        assert_eq!(q.open(9, AccessMode::Write, Waiter::new(9, 0), Nanos::ZERO), Err(QueueFull));
        assert_eq!(q.busy_anchors(), 4);
    }

    #[test]
    fn sweep_times_out_old_requests_only() {
        let mut q = q();
        let old = q.open(1, AccessMode::Read, Waiter::new(1, 0), Nanos::ZERO).unwrap();
        let t1 = Nanos::from_millis(100);
        let young = q.open(2, AccessMode::Read, Waiter::new(2, 0), t1).unwrap();
        // At 140 ms, only the first anchor has exceeded 133 ms.
        let timed_out = q.sweep(Nanos::from_millis(140));
        assert_eq!(timed_out, vec![Waiter::new(1, 0)]);
        assert!(q.satisfy(old, 1).is_none(), "swept association is severed");
        assert!(q.satisfy(young, 2).is_some(), "young association survives");
    }

    #[test]
    fn anchor_reuse_gets_fresh_association() {
        let mut q = q();
        let r1 = q.open(1, AccessMode::Read, Waiter::new(1, 0), Nanos::ZERO).unwrap();
        q.satisfy(r1, 1).unwrap();
        let r2 = q.open(1, AccessMode::Read, Waiter::new(2, 0), Nanos::ZERO).unwrap();
        if r1.anchor == r2.anchor {
            assert_ne!(r1.assoc, r2.assoc, "reused anchor must change assoc");
        }
        // Stale ref cannot touch the new occupant.
        assert!(!q.append(r1, 1, Waiter::new(3, 0)));
    }

    #[test]
    fn sweep_boundary_is_exclusive() {
        let mut q = q();
        q.open(1, AccessMode::Read, Waiter::new(1, 0), Nanos::ZERO).unwrap();
        // Exactly 133 ms in the queue: not yet "longer than 133ms".
        assert!(q.sweep(Nanos::from_millis(133)).is_empty());
        assert_eq!(q.sweep(Nanos(Nanos::from_millis(133).0 + 1)).len(), 1);
    }
}
