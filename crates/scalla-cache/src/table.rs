//! The one-level file-location hash table (§III-A1).
//!
//! Location objects are "accessible by a one-level hash table using linear
//! chaining to resolve collisions. The hash key is a CRC32 encoding of the
//! file name. The table itself is sized to be a Fibonacci number of entries.
//! When the number of entries reaches 80 % of the table size, a new table is
//! created whose size is the subsequent Fibonacci number and all of the keys
//! are redistributed."
//!
//! The table stores slot indices into the [`LocSlab`]; chains are intrusive
//! through each entry's `next` link, so the table itself is a flat `Vec<u32>`
//! of bucket heads — compact, cache-friendly, and O(1) per probe.

use crate::slab::{LocSlab, NIL};
use scalla_util::fib;

/// Table-size progression. The paper uses [`SizePolicy::Fibonacci`];
/// [`SizePolicy::PowerOfTwo`] exists to reproduce the footnote-4 comparison
/// (experiment E4), which found "much higher collision rates with
/// power-of-two sized tables compared to Fibonacci-sized".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SizePolicy {
    /// Fibonacci sizes (the paper's design).
    #[default]
    Fibonacci,
    /// Power-of-two sizes (the baseline the paper rejected).
    PowerOfTwo,
}

impl SizePolicy {
    fn at_least(self, n: u64) -> usize {
        match self {
            SizePolicy::Fibonacci => fib::fib_at_least(n.max(2)) as usize,
            SizePolicy::PowerOfTwo => n.max(2).next_power_of_two() as usize,
        }
    }

    fn next(self, n: usize) -> usize {
        match self {
            SizePolicy::Fibonacci => fib::next_fib(n as u64) as usize,
            SizePolicy::PowerOfTwo => n.saturating_mul(2),
        }
    }
}

/// Bucket-head array plus growth policy.
pub struct HashTable {
    buckets: Vec<u32>,
    /// Entries physically present in chains (visible *and* hidden).
    len: usize,
    max_load_percent: u8,
    resizes: u64,
    policy: SizePolicy,
}

impl HashTable {
    /// Creates a Fibonacci-sized table with at least `initial` buckets.
    pub fn new(initial: u64, max_load_percent: u8) -> HashTable {
        HashTable::with_policy(initial, max_load_percent, SizePolicy::Fibonacci)
    }

    /// Creates a table under an explicit size policy (E4 ablation).
    pub fn with_policy(initial: u64, max_load_percent: u8, policy: SizePolicy) -> HashTable {
        let size = policy.at_least(initial);
        HashTable {
            buckets: vec![NIL; size],
            len: 0,
            max_load_percent: max_load_percent.clamp(1, 100),
            resizes: 0,
            policy,
        }
    }

    /// Current bucket count (always a Fibonacci number).
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Entries currently chained into the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of times the table has grown.
    #[inline]
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    #[inline]
    fn bucket_of(&self, hash: u32) -> usize {
        (hash as u64 % self.buckets.len() as u64) as usize
    }

    /// Inserts an already-populated slab slot, growing first if the table
    /// is at its load limit.
    pub fn insert(&mut self, slab: &mut LocSlab, slot: u32) {
        // Grow when the entry count *reaches* the load limit (§III-A1).
        if (self.len + 1) * 100 >= self.buckets.len() * self.max_load_percent as usize {
            self.grow(slab);
        }
        let b = self.bucket_of(slab.get(slot).hash);
        let head = self.buckets[b];
        let e = slab.get_mut(slot);
        e.next = head;
        self.buckets[b] = slot;
        self.len += 1;
    }

    /// Finds the visible entry whose key equals `name`. Hidden entries
    /// (key length zero) are skipped, exactly as in the paper.
    pub fn lookup(&self, slab: &LocSlab, name: &str, hash: u32) -> Option<u32> {
        let mut cur = self.buckets[self.bucket_of(hash)];
        while cur != NIL {
            let e = slab.get(cur);
            if e.hash == hash && e.key_len as usize == name.len() && e.key() == name {
                return Some(cur);
            }
            cur = e.next;
        }
        None
    }

    /// Unlinks `slot` from its bucket chain. Called by background removal;
    /// the slot must currently be chained.
    pub fn remove(&mut self, slab: &mut LocSlab, slot: u32) {
        let b = self.bucket_of(slab.get(slot).hash);
        let mut cur = self.buckets[b];
        if cur == slot {
            self.buckets[b] = slab.get(slot).next;
            self.len -= 1;
            return;
        }
        while cur != NIL {
            let next = slab.get(cur).next;
            if next == slot {
                slab.get_mut(cur).next = slab.get(slot).next;
                self.len -= 1;
                return;
            }
            cur = next;
        }
        debug_assert!(false, "remove of unchained slot {slot}");
    }

    /// Grows to the next Fibonacci size and redistributes every chained
    /// entry (visible or hidden) by its stored hash.
    fn grow(&mut self, slab: &mut LocSlab) {
        let new_size = self.policy.next(self.buckets.len());
        let old = std::mem::replace(&mut self.buckets, vec![NIL; new_size]);
        self.resizes += 1;
        for head in old {
            let mut cur = head;
            while cur != NIL {
                let next = slab.get(cur).next;
                let b = self.bucket_of(slab.get(cur).hash);
                let new_head = self.buckets[b];
                slab.get_mut(cur).next = new_head;
                self.buckets[b] = cur;
                cur = next;
            }
        }
    }

    /// Chain length of every non-empty bucket — the E4 collision metric.
    pub fn chain_lengths(&self, slab: &LocSlab) -> Vec<usize> {
        let mut out = Vec::new();
        for &head in &self.buckets {
            if head == NIL {
                continue;
            }
            let mut n = 0usize;
            let mut cur = head;
            while cur != NIL {
                n += 1;
                cur = slab.get(cur).next;
            }
            out.push(n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_util::crc32;

    fn add(t: &mut HashTable, slab: &mut LocSlab, name: &str) -> u32 {
        let h = crc32(name.as_bytes());
        let slot = slab.alloc(name, h);
        t.insert(slab, slot);
        slot
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut slab = LocSlab::new();
        let mut t = HashTable::new(5, 80);
        let names: Vec<String> =
            (0..50).map(|i| format!("/data/run{}/f{}.root", i % 7, i)).collect();
        let slots: Vec<u32> = names.iter().map(|n| add(&mut t, &mut slab, n)).collect();
        for (name, &slot) in names.iter().zip(&slots) {
            let h = crc32(name.as_bytes());
            assert_eq!(t.lookup(&slab, name, h), Some(slot));
        }
        assert_eq!(t.lookup(&slab, "/missing", crc32(b"/missing")), None);
    }

    #[test]
    fn sizes_stay_fibonacci_and_grow_at_80pct() {
        let mut slab = LocSlab::new();
        let mut t = HashTable::new(5, 80);
        assert_eq!(t.bucket_count(), 5);
        for i in 0..4 {
            add(&mut t, &mut slab, &format!("/f{i}"));
        }
        // 5 buckets * 80% = 4: the 4th insert must already have grown.
        assert!(t.bucket_count() > 5);
        assert!(fib::is_fibonacci(t.bucket_count() as u64));
        for i in 4..1000 {
            add(&mut t, &mut slab, &format!("/f{i}"));
            assert!(fib::is_fibonacci(t.bucket_count() as u64));
            assert!(t.len() * 100 <= t.bucket_count() * 80);
        }
        assert!(t.resizes() >= 5);
    }

    #[test]
    fn hidden_entries_are_not_found_but_stay_chained() {
        let mut slab = LocSlab::new();
        let mut t = HashTable::new(5, 80);
        let slot = add(&mut t, &mut slab, "/f");
        let h = crc32(b"/f");
        slab.get_mut(slot).hide();
        assert_eq!(t.lookup(&slab, "/f", h), None);
        assert_eq!(t.len(), 1, "hidden entry still occupies the chain");
        // And survives a resize without becoming findable.
        for i in 0..100 {
            add(&mut t, &mut slab, &format!("/g{i}"));
        }
        assert_eq!(t.lookup(&slab, "/f", h), None);
    }

    #[test]
    fn remove_unlinks_head_and_middle() {
        let mut slab = LocSlab::new();
        // One bucket forces a single chain: max load 100 with size 2 and
        // names engineered to collide is brittle, so just use remove on a
        // normal table and verify lookups.
        let mut t = HashTable::new(5, 80);
        let names: Vec<String> = (0..30).map(|i| format!("/r/{i}")).collect();
        let slots: Vec<u32> = names.iter().map(|n| add(&mut t, &mut slab, n)).collect();
        for (i, &slot) in slots.iter().enumerate() {
            t.remove(&mut slab, slot);
            slab.release(slot);
            for (j, name) in names.iter().enumerate() {
                let h = crc32(name.as_bytes());
                let found = t.lookup(&slab, name, h);
                if j <= i {
                    assert_eq!(found, None);
                } else {
                    assert_eq!(found, Some(slots[j]));
                }
            }
        }
        assert!(t.is_empty());
    }

    #[test]
    fn pow2_policy_grows_by_doubling() {
        let mut slab = LocSlab::new();
        let mut t = HashTable::with_policy(4, 80, SizePolicy::PowerOfTwo);
        assert_eq!(t.bucket_count(), 4);
        for i in 0..100 {
            add(&mut t, &mut slab, &format!("/p/{i}"));
            assert!(t.bucket_count().is_power_of_two());
        }
        // Lookups still work after several doublings.
        let h = crc32(b"/p/7");
        assert!(t.lookup(&slab, "/p/7", h).is_some());
    }

    #[test]
    fn chain_lengths_sum_to_len() {
        let mut slab = LocSlab::new();
        let mut t = HashTable::new(5, 80);
        for i in 0..200 {
            add(&mut t, &mut slab, &format!("/c/{i}"));
        }
        let lens = t.chain_lengths(&slab);
        assert_eq!(lens.iter().sum::<usize>(), t.len());
    }
}
