//! The cmsd file-location cache — the core contribution of
//! *Scalla: Structured Cluster Architecture for Low Latency Access*
//! (Hanushevsky & Wang, IPPS 2012), §III.
//!
//! A manager or supervisor cmsd answers "which of my 64 subordinates can
//! serve file X?" in constant time per tree level. This crate implements the
//! machinery the paper describes to make that possible:
//!
//! * [`loc`] — location objects holding the three 64-bit vectors `V_h`
//!   (have), `V_p` (preparing), `V_q` (to be queried), with the invariant
//!   `V_q ∩ (V_h ∪ V_p) = ∅` (§III-A1).
//! * [`slab`] — location-object storage that is *never freed*: slots are
//!   reused and an in-object authenticator counter validates stale
//!   references without locks held across calls (§III-B1).
//! * [`table`] — the one-level hash table: CRC-32 keys, Fibonacci sizing,
//!   linear chaining, resize at 80 % load to the next Fibonacci number
//!   (§III-A1).
//! * [`window`] — time-based eviction: the lifetime `L_t` is split into 64
//!   sliding windows; a tick *hides* the expiring window's chain (key length
//!   := 0) and physical removal happens in the background; refreshed objects
//!   are re-chained lazily by the same linear sweep (§III-A3, §III-C1).
//! * [`correct`] — cluster-change corrections: connect-order counters `C[]`
//!   and `N_c`, per-object stamp `C_n`, per-window memo (`V_wc`, `C_wn`)
//!   making the correction effectively free (§III-A4).
//! * [`respq`] — the fast response queue: 1024 anchors of waiting clients
//!   (`R_r` read / `R_w` write), swept on a 133 ms clock, released the
//!   moment a server responds (§III-B).
//! * [`cache`] — the [`NameCache`] facade implementing the six resolution
//!   steps of §III-B1 plus deadline-based query synchronization (§III-C2)
//!   and refresh processing (§III-C1).
//!
//! # Quick example
//!
//! ```
//! use std::sync::Arc;
//! use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
//! use scalla_util::{ServerSet, VirtualClock};
//!
//! let clock = Arc::new(VirtualClock::new());
//! let cache = NameCache::new(CacheConfig::default(), clock.clone());
//! let vm = ServerSet::first_n(4); // four servers export this path
//!
//! // First access: nothing cached, the caller must flood a query.
//! let r = cache.resolve("/store/f.root", vm, AccessMode::Read, Waiter::new(1, 0));
//! assert!(matches!(r.resolution, Resolution::Queued));
//! assert_eq!(r.query, vm, "all eligible servers must be asked");
//!
//! // Server 2 answers "I have it" -> the waiting client is released.
//! let released = cache.update_have("/store/f.root", 2, false);
//! assert_eq!(released.len(), 1);
//! assert_eq!(released[0].0.client, 1);
//!
//! // Second access hits the cache and redirects immediately.
//! let r = cache.resolve("/store/f.root", vm, AccessMode::Read, Waiter::new(2, 0));
//! assert!(matches!(r.resolution, Resolution::Redirect { .. }));
//! ```

pub mod cache;
pub mod config;
pub mod correct;
pub mod eager;
pub mod loc;
pub mod respq;
pub mod slab;
pub mod stats;
pub mod table;
pub mod window;

pub use cache::{NameCache, Resolution, ResolveOutcome};
pub use config::CacheConfig;
pub use correct::{ConnectLog, CorrectionMemo};
pub use loc::{AccessMode, LocState};
pub use respq::{QueueFull, Waiter};
pub use slab::LocRef;
pub use stats::{CacheStats, StatsSnapshot};
pub use table::SizePolicy;
