//! Cluster-change correction vectors (§III-A4).
//!
//! Cached location information is *approximate*: it is not touched when
//! servers come and go. Instead it is corrected lazily, at fetch time, in
//! O(1):
//!
//! * `C[]` — 64 counters, one per server slot; `C[i]` holds the value the
//!   master counter had when server *i* last connected.
//! * `N_c` — the master counter, incremented on every connect.
//! * `C_n` — stored per location object: the `N_c` value when the object was
//!   cached or last corrected.
//!
//! On fetch, if `C_n ≠ N_c` the connect set `V_c = { i : C[i] > C_n }` is
//! built and Figure 3's corrections applied. A per-window memo (`V_wc`,
//! `C_wn`) exploits the time locality of connects and object creation so
//! that most fetches in a window reuse one computed `V_c` instead of
//! scanning `C[]`.

use crate::config::WINDOW_COUNT;
use crate::loc::LocState;
use scalla_util::{ServerId, ServerSet, MAX_SERVERS};

/// How a fetch-time correction was satisfied — reported for statistics and
/// the E7 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionKind {
    /// `C_n == N_c`: nothing to do (the overwhelmingly common case).
    Clean,
    /// Corrected using the window's memoized `V_wc`.
    MemoHit,
    /// Corrected by scanning `C[]` (and the result was memoized).
    Computed,
}

#[derive(Clone, Copy, Default)]
struct WindowMemo {
    /// The `C_n` this memo's `vwc` was computed for (`C_wn` in the paper).
    cwn: u64,
    /// The `N_c` current when the memo was computed; the memo is stale once
    /// more servers have connected.
    at_nc: u64,
    /// The memoized connect set `V_wc`.
    vwc: ServerSet,
    /// Whether the memo has ever been filled.
    valid: bool,
}

/// The per-window correction memo (`V_wc`, `C_wn`).
///
/// Kept separate from [`ConnectLog`] so a sharded cache can share one
/// read-mostly log across all shards while each shard owns (and mutates)
/// its own memo under its own lock. Memo entries validate themselves
/// against the log's current `N_c`, so per-shard memos stay correct no
/// matter how corrections interleave across shards.
#[derive(Clone)]
pub struct CorrectionMemo {
    memo: [WindowMemo; WINDOW_COUNT],
}

impl CorrectionMemo {
    /// Creates an empty (all-invalid) memo.
    pub fn new() -> CorrectionMemo {
        CorrectionMemo { memo: [WindowMemo::default(); WINDOW_COUNT] }
    }
}

impl Default for CorrectionMemo {
    fn default() -> CorrectionMemo {
        CorrectionMemo::new()
    }
}

/// The connect-order log: `C[]` and `N_c`.
///
/// Read-mostly: `note_connect` (rare, at login) is the only mutation;
/// corrections only read `C[]`/`N_c` and write the caller-owned
/// [`CorrectionMemo`].
pub struct ConnectLog {
    c: [u64; MAX_SERVERS],
    nc: u64,
}

impl ConnectLog {
    /// Creates an empty log (`N_c = 0`, no servers ever connected).
    pub fn new() -> ConnectLog {
        ConnectLog { c: [0; MAX_SERVERS], nc: 0 }
    }

    /// Records that server `id` (re)connected: `N_c` is increased by one
    /// and assigned to `C[id]`. Returns the new `N_c`.
    pub fn note_connect(&mut self, id: ServerId) -> u64 {
        self.nc += 1;
        self.c[id as usize] = self.nc;
        self.nc
    }

    /// The master connect counter `N_c`; new location objects stamp this as
    /// their `C_n`.
    #[inline]
    pub fn nc(&self) -> u64 {
        self.nc
    }

    /// Builds `V_c = { i : C[i] > cn }` by scanning `C[]` — the slow path.
    pub fn vc_since(&self, cn: u64) -> ServerSet {
        let mut vc = ServerSet::EMPTY;
        for (i, &ci) in self.c.iter().enumerate() {
            if ci > cn {
                vc.insert(i as ServerId);
            }
        }
        vc
    }

    /// Applies the Figure 3 correction to `state` if needed, using the
    /// caller's window memo when applicable, and updates `*cn` to the
    /// current `N_c` (Figure 3 eq. 4). `window` is the object's add window
    /// `T_a`.
    pub fn correct(
        &self,
        memo: &mut CorrectionMemo,
        state: &mut LocState,
        cn: &mut u64,
        window: u8,
        vm: ServerSet,
    ) -> CorrectionKind {
        if *cn == self.nc {
            // Even a clean object must be clipped to the current V_m so a
            // dropped server never appears in the answer; this is the
            // "looked up prior and passed to the cache look-up method"
            // V_m limiting of §III-A4.
            state.apply_correction(ServerSet::EMPTY, vm);
            return CorrectionKind::Clean;
        }
        let w = window as usize % WINDOW_COUNT;
        let m = memo.memo[w];
        let kind = if m.valid && m.cwn == *cn && m.at_nc == self.nc {
            state.apply_correction(m.vwc, vm);
            CorrectionKind::MemoHit
        } else {
            let vc = self.vc_since(*cn);
            memo.memo[w] = WindowMemo { cwn: *cn, at_nc: self.nc, vwc: vc, valid: true };
            state.apply_correction(vc, vm);
            CorrectionKind::Computed
        };
        *cn = self.nc;
        kind
    }
}

impl Default for ConnectLog {
    fn default() -> ConnectLog {
        ConnectLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn connect_counter_advances() {
        let mut log = ConnectLog::new();
        assert_eq!(log.note_connect(3), 1);
        assert_eq!(log.note_connect(7), 2);
        assert_eq!(log.nc(), 2);
        assert_eq!(log.vc_since(0), ServerSet::single(3).with(7));
        assert_eq!(log.vc_since(1), ServerSet::single(7));
        assert_eq!(log.vc_since(2), ServerSet::EMPTY);
    }

    #[test]
    fn clean_fetch_costs_nothing_but_clips_vm() {
        let mut log = ConnectLog::new();
        let mut memo = CorrectionMemo::new();
        log.note_connect(0);
        log.note_connect(1);
        let mut state = LocState { vh: ServerSet::first_n(2), ..LocState::default() };
        let mut cn = log.nc();
        // Server 1 has since been dropped: V_m lost its bit.
        let vm = ServerSet::single(0);
        let kind = log.correct(&mut memo, &mut state, &mut cn, 0, vm);
        assert_eq!(kind, CorrectionKind::Clean);
        assert_eq!(state.vh, ServerSet::single(0));
    }

    #[test]
    fn dirty_fetch_requeries_new_servers() {
        let mut log = ConnectLog::new();
        let mut memo = CorrectionMemo::new();
        log.note_connect(0);
        let mut state = LocState { vh: ServerSet::single(0), ..LocState::default() };
        let mut cn = log.nc();
        // Server 1 connects after the object was cached.
        log.note_connect(1);
        let vm = ServerSet::first_n(2);
        let kind = log.correct(&mut memo, &mut state, &mut cn, 5, vm);
        assert_eq!(kind, CorrectionKind::Computed);
        assert_eq!(state.vq, ServerSet::single(1));
        assert_eq!(state.vh, ServerSet::single(0));
        assert_eq!(cn, log.nc(), "eq. 4: C_n := N_c after correction");
        // A second fetch is clean.
        assert_eq!(log.correct(&mut memo, &mut state, &mut cn, 5, vm), CorrectionKind::Clean);
    }

    #[test]
    fn window_memo_reused_within_window() {
        let mut log = ConnectLog::new();
        let mut memo = CorrectionMemo::new();
        log.note_connect(0);
        let cn0 = log.nc();
        log.note_connect(1); // cluster change

        // Two objects cached in the same window with the same C_n.
        let vm = ServerSet::first_n(2);
        let mut s1 = LocState { vh: ServerSet::single(0), ..LocState::default() };
        let mut s2 = s1;
        let (mut c1, mut c2) = (cn0, cn0);
        assert_eq!(log.correct(&mut memo, &mut s1, &mut c1, 9, vm), CorrectionKind::Computed);
        assert_eq!(log.correct(&mut memo, &mut s2, &mut c2, 9, vm), CorrectionKind::MemoHit);
        assert_eq!(s1, s2);
    }

    #[test]
    fn memo_invalidated_by_new_connect() {
        let mut log = ConnectLog::new();
        let mut memo = CorrectionMemo::new();
        log.note_connect(0);
        let cn0 = log.nc();
        log.note_connect(1);
        let vm = ServerSet::first_n(3);
        let mut s1 = LocState::default();
        let mut c1 = cn0;
        log.correct(&mut memo, &mut s1, &mut c1, 2, vm);
        // Another connect makes the window memo stale for objects still at cn0.
        log.note_connect(2);
        let mut s2 = LocState::default();
        let mut c2 = cn0;
        assert_eq!(log.correct(&mut memo, &mut s2, &mut c2, 2, vm), CorrectionKind::Computed);
        assert!(s2.vq.contains(2));
    }

    #[test]
    fn memo_not_used_for_different_cn() {
        let mut log = ConnectLog::new();
        let mut memo = CorrectionMemo::new();
        log.note_connect(0);
        let cn_a = log.nc();
        log.note_connect(1);
        let cn_b = log.nc();
        log.note_connect(2);
        let vm = ServerSet::first_n(3);
        let (mut sa, mut sb) = (LocState::default(), LocState::default());
        let (mut ca, mut cb) = (cn_a, cn_b);
        assert_eq!(log.correct(&mut memo, &mut sa, &mut ca, 1, vm), CorrectionKind::Computed);
        // Object with a different C_n in the same window must not reuse it.
        assert_eq!(log.correct(&mut memo, &mut sb, &mut cb, 1, vm), CorrectionKind::Computed);
        assert_eq!(sa.vq, ServerSet::single(1).with(2));
        assert_eq!(sb.vq, ServerSet::single(2));
    }

    proptest! {
        #[test]
        fn memo_path_equals_scan_path(
            connects in proptest::collection::vec(0u8..64, 0..32),
            late in proptest::collection::vec(0u8..64, 1..8),
            vh0: u64, vm: u64, window in 0u8..64,
        ) {
            let mut log = ConnectLog::new();
        let mut memo = CorrectionMemo::new();
            for &id in &connects {
                log.note_connect(id);
            }
            let cn0 = log.nc();
            for &id in &late {
                log.note_connect(id);
            }
            let vm = ServerSet(vm);
            let mk = || LocState { vh: ServerSet(vh0), ..LocState::default() };

            // First correction computes, second uses the memo; both must
            // produce identical states.
            let (mut s1, mut s2) = (mk(), mk());
            let (mut c1, mut c2) = (cn0, cn0);
            let k1 = log.correct(&mut memo, &mut s1, &mut c1, window, vm);
            let k2 = log.correct(&mut memo, &mut s2, &mut c2, window, vm);
            prop_assert_eq!(k1, CorrectionKind::Computed);
            prop_assert_eq!(k2, CorrectionKind::MemoHit);
            prop_assert_eq!(s1, s2);
            prop_assert!(s1.invariant_holds());
            // Every late connector eligible for the path is re-queried.
            for &id in &late {
                if vm.contains(id) {
                    prop_assert!(s1.vq.contains(id));
                }
            }
        }
    }
}
