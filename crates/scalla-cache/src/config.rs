//! Cache configuration with the paper's default constants.

use scalla_util::Nanos;

/// Number of eviction windows the lifetime `L_t` is divided into (§III-A3).
/// The paper fixes this at 64; it is a structural constant, not a tunable,
/// because window indices are stored as 6-bit values chained per window.
pub const WINDOW_COUNT: usize = 64;

/// Tunable cache parameters. Every default is the value the paper states.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Location-object lifetime `L_t`. "configurable but usually set to
    /// eight hours" (§III-A2).
    pub lifetime: Nanos,
    /// Full client delay imposed when a file's existence cannot yet be
    /// decided; also the processing-deadline length. "By default, the delay
    /// is set to 5 seconds" (§III-B, §III-C2).
    pub full_delay: Nanos,
    /// Fast-response sweep period: a queued request gets this long to be
    /// satisfied before the full delay is imposed. 133 ms in the paper
    /// (§III-B1).
    pub fast_window: Nanos,
    /// Number of fast-response-queue anchors. "an array of 1024 anchors"
    /// (§III-B).
    pub response_anchors: usize,
    /// Initial hash-table size; rounded up to a Fibonacci number.
    pub initial_table_size: u64,
    /// Load-factor percentage at which the table grows to the next
    /// Fibonacci size. 80 % in the paper (§III-A1).
    pub max_load_percent: u8,
    /// Number of independently locked cache shards. Each shard owns its own
    /// slab, hash table, window ring, and pending-removal list; a look-up
    /// locks exactly one shard, selected from the high bits of the CRC-32
    /// key. `1` reproduces the original single-lock interior. Values are
    /// clamped to `1..=MAX_SHARDS`.
    pub shards: usize,
}

/// Upper bound on [`CacheConfig::shards`] (the shard index must fit the 16
/// bits [`crate::slab::LocRef`] carries).
pub const MAX_SHARDS: usize = 1 << 16;

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            lifetime: Nanos::from_hours(8),
            full_delay: Nanos::from_secs(5),
            fast_window: Nanos::from_millis(133),
            response_anchors: 1024,
            initial_table_size: 89,
            max_load_percent: 80,
            shards: 16,
        }
    }
}

impl CacheConfig {
    /// The window tick period, `L_t / 64` (7.5 minutes at the default
    /// lifetime, matching the paper's example).
    #[inline]
    pub fn window_period(&self) -> Nanos {
        self.lifetime.div(WINDOW_COUNT as u64)
    }

    /// A compact configuration for tests: short lifetime, small table.
    pub fn for_tests() -> CacheConfig {
        CacheConfig {
            lifetime: Nanos::from_secs(64),
            full_delay: Nanos::from_secs(5),
            fast_window: Nanos::from_millis(133),
            response_anchors: 8,
            initial_table_size: 5,
            max_load_percent: 80,
            shards: 4,
        }
    }

    /// The same configuration with a different shard count (benchmarks and
    /// sharding-equivalence tests).
    pub fn with_shards(mut self, shards: usize) -> CacheConfig {
        self.shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CacheConfig::default();
        assert_eq!(c.lifetime, Nanos::from_hours(8));
        assert_eq!(c.full_delay, Nanos::from_secs(5));
        assert_eq!(c.fast_window, Nanos::from_millis(133));
        assert_eq!(c.response_anchors, 1024);
        assert_eq!(c.max_load_percent, 80);
        assert_eq!(c.shards, 16);
        // 8h / 64 = 7.5 minutes, the example in §III-A3.
        assert_eq!(c.window_period(), Nanos::from_secs(450));
    }

    #[test]
    fn with_shards_overrides() {
        assert_eq!(CacheConfig::for_tests().with_shards(1).shards, 1);
        assert_eq!(CacheConfig::default().with_shards(8).shards, 8);
    }
}
