//! Real-thread stress of the NameCache: resolvers, responders, the window
//! tick, background collection, and the fast-queue sweep all running
//! concurrently under the system clock. Exercises the lock ordering
//! (cache → response queue) and the loose coupling the paper relies on —
//! any deadlock hangs the test, any unsoundness trips an assert.

use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
use scalla_util::{Nanos, ServerSet, SystemClock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn concurrent_resolvers_responders_and_maintenance() {
    let clock = Arc::new(SystemClock::new());
    let cfg = CacheConfig {
        lifetime: Nanos::from_millis(640), // 10 ms windows: heavy churn
        full_delay: Nanos::from_millis(50),
        fast_window: Nanos::from_millis(5),
        response_anchors: 1024,
        initial_table_size: 89,
        max_load_percent: 80,
    };
    let cache = Arc::new(NameCache::new(cfg, clock));
    let vm = ServerSet::first_n(32);
    let stop = Arc::new(AtomicBool::new(false));
    let redirects = Arc::new(AtomicU64::new(0));
    let queued = Arc::new(AtomicU64::new(0));
    let released = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();

    // 4 resolver threads over a rotating window of paths.
    for t in 0..4u64 {
        let cache = cache.clone();
        let stop = stop.clone();
        let redirects = redirects.clone();
        let queued = queued.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = format!("/c/f{}", (i * 31 + t * 7) % 512);
                let out = cache.resolve(&path, vm, AccessMode::Read, Waiter::new(t, i));
                match out.resolution {
                    Resolution::Redirect { online, preparing } => {
                        assert!(!(online | preparing).is_empty());
                        assert!((online | preparing).is_subset(vm));
                        redirects.fetch_add(1, Ordering::Relaxed);
                    }
                    Resolution::Queued => {
                        queued.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                i += 1;
            }
        }));
    }

    // 2 responder threads answering for random servers.
    for t in 0..2u64 {
        let cache = cache.clone();
        let stop = stop.clone();
        let released = released.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = format!("/c/f{}", (i * 17 + t * 3) % 512);
                let server = ((i + t) % 32) as u8;
                let rel = cache.update_have(&path, server, i.is_multiple_of(5));
                for (_, s) in rel {
                    assert_eq!(s, server);
                    released.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        }));
    }

    // Maintenance thread: tick + collect + sweep on a tight schedule.
    {
        let cache = cache.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cache.tick();
                cache.collect(4096);
                cache.sweep();
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    // Run the melee for a second of wall time.
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(1) {
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("no thread may panic");
    }

    // Liveness + sanity: plenty of operations of each kind completed.
    assert!(redirects.load(Ordering::Relaxed) > 1_000, "resolvers starved");
    assert!(released.load(Ordering::Relaxed) > 0, "responders never released");
    let stats = cache.stats();
    use scalla_cache::CacheStats as S;
    assert!(S::get(&stats.evictions) > 0, "churn must evict under 10 ms windows");
    // Collect everything and verify accounting closes.
    while cache.collect(usize::MAX) > 0 {}
    assert!(cache.len() as u64 <= S::get(&stats.creates));
}

#[test]
fn queue_exhaustion_recovers_under_concurrency() {
    // Tiny anchor pool + no responders: waiters must time out via sweep
    // and the pool must keep cycling without leaking anchors.
    let clock = Arc::new(SystemClock::new());
    let cfg = CacheConfig {
        fast_window: Nanos::from_millis(2),
        response_anchors: 8,
        full_delay: Nanos::from_millis(20),
        ..CacheConfig::for_tests()
    };
    let cache = Arc::new(NameCache::new(cfg, clock));
    let vm = ServerSet::first_n(4);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let cache = cache.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            let mut full = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = format!("/q/f{}", i % 64);
                let out = cache.resolve(&path, vm, AccessMode::Read, Waiter::new(t, i));
                if matches!(out.resolution, Resolution::WaitRetry { .. }) {
                    full += 1;
                }
                i += 1;
            }
            full
        }));
    }
    {
        let cache = cache.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += cache.sweep().len() as u64;
                std::thread::sleep(Duration::from_millis(1));
            }
            n
        }));
    }
    std::thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    let outcomes: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let swept = *outcomes.last().unwrap();
    assert!(swept > 0, "sweeper must reclaim anchors");
    // After a final sweep past the window, the pool must be fully free
    // again (no leaked associations).
    std::thread::sleep(Duration::from_millis(5));
    cache.sweep();
    let out = cache.resolve("/q/final", ServerSet::first_n(4), AccessMode::Read, Waiter::new(9, 9));
    assert!(
        matches!(out.resolution, Resolution::Queued),
        "anchor pool must have free slots again: {:?}",
        out.resolution
    );
}
