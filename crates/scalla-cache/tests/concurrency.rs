//! Real-thread stress of the NameCache: resolvers, responders, the window
//! tick, background collection, and the fast-queue sweep all running
//! concurrently under the system clock. Exercises the lock ordering
//! (cache → response queue) and the loose coupling the paper relies on —
//! any deadlock hangs the test, any unsoundness trips an assert.

use scalla_cache::{AccessMode, CacheConfig, CacheStats, NameCache, Resolution, Waiter};
use scalla_util::{Nanos, ServerSet, SystemClock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker threads resolving disjoint *and* overlapping path sets across
/// every shard while a ticker churns tick/collect/sweep. Checks the two
/// properties sharding must not break:
///
/// * the paper's state invariant `V_q ∩ (V_h ∪ V_p) = ∅` on every state
///   observed through `peek`, and
/// * reference-authenticator validation: a [`scalla_cache::LocRef`] saved
///   across churn either lands on the live object (its shard index routes
///   it) or is rejected and falls back to a by-name look-up — never a
///   panic, never a write to the wrong object.
#[test]
fn shard_crossing_resolutions_keep_invariants() {
    let clock = Arc::new(SystemClock::new());
    let cfg = CacheConfig {
        lifetime: Nanos::from_millis(1280), // 20 ms windows: steady churn
        full_delay: Nanos::from_millis(30),
        fast_window: Nanos::from_millis(5),
        response_anchors: 1024,
        initial_table_size: 89,
        max_load_percent: 80,
        shards: 8,
    };
    let cache = Arc::new(NameCache::new(cfg, clock));
    assert_eq!(cache.shard_count(), 8);
    let vm = ServerSet::first_n(16);
    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicU64::new(0));

    // The shared set deliberately spans every shard so overlapping
    // resolutions contend on the same shard locks from all threads.
    let shared: Vec<String> = (0..128).map(|i| format!("/shared/f{i}")).collect();
    let covered: std::collections::HashSet<usize> =
        shared.iter().map(|p| cache.shard_of(p)).collect();
    assert_eq!(covered.len(), 8, "shared paths must cover all shards");

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let cache = cache.clone();
        let stop = stop.clone();
        let checked = checked.clone();
        let shared = shared.clone();
        handles.push(std::thread::spawn(move || {
            let mut refs = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Disjoint set: only this thread ever touches /t{t}/...
                let own = format!("/t{t}/f{}", i % 96);
                let out = cache.resolve(&own, vm, AccessMode::Read, Waiter::new(t, i));
                assert_eq!(
                    out.locref.shard as usize,
                    cache.shard_of(&own),
                    "a fresh reference must carry its owning shard"
                );
                refs.push((own, out.locref));
                // Overlapping set: everyone hammers the same names.
                let them = &shared[((i * 13 + t * 29) % 128) as usize];
                let out = cache.resolve(them, vm, AccessMode::Read, Waiter::new(t, i));
                if let Resolution::Redirect { online, preparing } = out.resolution {
                    assert!((online | preparing).is_subset(vm));
                }
                // Replay a held (possibly stale, post-eviction) reference:
                // must validate-or-fallback, never corrupt.
                if refs.len() >= 64 {
                    for (path, r) in refs.drain(..) {
                        cache.requeue(&path, r, ServerSet::single((i % 16) as u8));
                    }
                }
                if let Some(state) = cache.peek(them) {
                    assert!(
                        (state.vq & (state.vh | state.vp)).is_empty(),
                        "V_q ∩ (V_h ∪ V_p) must stay empty, got {state:?}"
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        }));
    }
    // Responder thread over the shared set.
    {
        let cache = cache.clone();
        let stop = stop.clone();
        let shared = shared.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = &shared[(i * 7 % 128) as usize];
                let server = (i % 16) as u8;
                for (_, s) in cache.update_have(path, server, i.is_multiple_of(6)) {
                    assert_eq!(s, server);
                }
                i += 1;
            }
        }));
    }
    // Ticker thread: window tick, background collection, fast-queue sweep.
    {
        let cache = cache.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cache.tick();
                cache.collect(1024);
                cache.sweep();
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    std::thread::sleep(Duration::from_secs(1));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("no thread may panic");
    }

    assert!(checked.load(Ordering::Relaxed) > 1_000, "peek starved");
    // Final invariant pass over everything still visible, on a quiet cache.
    let disjoint: Vec<String> =
        (0..4).flat_map(|t| (0..96).map(move |i| format!("/t{t}/f{i}"))).collect();
    for p in shared.iter().chain(disjoint.iter()) {
        if let Some(state) = cache.peek(p) {
            assert!((state.vq & (state.vh | state.vp)).is_empty());
        }
    }
    // Held references that went stale were counted, not silently mis-applied.
    let stats = cache.stats();
    assert!(
        CacheStats::get(&stats.stale_refs) < CacheStats::get(&stats.lookups),
        "stale-ref fallback must be the exception, not the rule"
    );
}

#[test]
fn concurrent_resolvers_responders_and_maintenance() {
    let clock = Arc::new(SystemClock::new());
    let cfg = CacheConfig {
        lifetime: Nanos::from_millis(640), // 10 ms windows: heavy churn
        full_delay: Nanos::from_millis(50),
        fast_window: Nanos::from_millis(5),
        response_anchors: 1024,
        initial_table_size: 89,
        max_load_percent: 80,
        shards: 8,
    };
    let cache = Arc::new(NameCache::new(cfg, clock));
    let vm = ServerSet::first_n(32);
    let stop = Arc::new(AtomicBool::new(false));
    let redirects = Arc::new(AtomicU64::new(0));
    let queued = Arc::new(AtomicU64::new(0));
    let released = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();

    // 4 resolver threads over a rotating window of paths.
    for t in 0..4u64 {
        let cache = cache.clone();
        let stop = stop.clone();
        let redirects = redirects.clone();
        let queued = queued.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = format!("/c/f{}", (i * 31 + t * 7) % 512);
                let out = cache.resolve(&path, vm, AccessMode::Read, Waiter::new(t, i));
                match out.resolution {
                    Resolution::Redirect { online, preparing } => {
                        assert!(!(online | preparing).is_empty());
                        assert!((online | preparing).is_subset(vm));
                        redirects.fetch_add(1, Ordering::Relaxed);
                    }
                    Resolution::Queued => {
                        queued.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                i += 1;
            }
        }));
    }

    // 2 responder threads answering for random servers.
    for t in 0..2u64 {
        let cache = cache.clone();
        let stop = stop.clone();
        let released = released.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = format!("/c/f{}", (i * 17 + t * 3) % 512);
                let server = ((i + t) % 32) as u8;
                let rel = cache.update_have(&path, server, i.is_multiple_of(5));
                for (_, s) in rel {
                    assert_eq!(s, server);
                    released.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        }));
    }

    // Maintenance thread: tick + collect + sweep on a tight schedule.
    {
        let cache = cache.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cache.tick();
                cache.collect(4096);
                cache.sweep();
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    // Run the melee for a second of wall time.
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(1) {
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("no thread may panic");
    }

    // Liveness + sanity: plenty of operations of each kind completed.
    assert!(redirects.load(Ordering::Relaxed) > 1_000, "resolvers starved");
    assert!(released.load(Ordering::Relaxed) > 0, "responders never released");
    let stats = cache.stats();
    use scalla_cache::CacheStats as S;
    assert!(S::get(&stats.evictions) > 0, "churn must evict under 10 ms windows");
    // Collect everything and verify accounting closes.
    while cache.collect(usize::MAX) > 0 {}
    assert!(cache.len() as u64 <= S::get(&stats.creates));
}

#[test]
fn queue_exhaustion_recovers_under_concurrency() {
    // Tiny anchor pool + no responders: waiters must time out via sweep
    // and the pool must keep cycling without leaking anchors.
    let clock = Arc::new(SystemClock::new());
    let cfg = CacheConfig {
        fast_window: Nanos::from_millis(2),
        response_anchors: 8,
        full_delay: Nanos::from_millis(20),
        ..CacheConfig::for_tests()
    };
    let cache = Arc::new(NameCache::new(cfg, clock));
    let vm = ServerSet::first_n(4);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let cache = cache.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            let mut full = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = format!("/q/f{}", i % 64);
                let out = cache.resolve(&path, vm, AccessMode::Read, Waiter::new(t, i));
                if matches!(out.resolution, Resolution::WaitRetry { .. }) {
                    full += 1;
                }
                i += 1;
            }
            full
        }));
    }
    {
        let cache = cache.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += cache.sweep().len() as u64;
                std::thread::sleep(Duration::from_millis(1));
            }
            n
        }));
    }
    std::thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    let outcomes: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let swept = *outcomes.last().unwrap();
    assert!(swept > 0, "sweeper must reclaim anchors");
    // After a final sweep past the window, the pool must be fully free
    // again (no leaked associations).
    std::thread::sleep(Duration::from_millis(5));
    cache.sweep();
    let out = cache.resolve("/q/final", ServerSet::first_n(4), AccessMode::Read, Waiter::new(9, 9));
    assert!(
        matches!(out.resolution, Resolution::Queued),
        "anchor pool must have free slots again: {:?}",
        out.resolution
    );
}
