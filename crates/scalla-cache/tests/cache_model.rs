//! Model-based test of the whole `NameCache`: arbitrary interleavings of
//! resolutions, server responses, cluster changes, clock advances,
//! eviction ticks, sweeps, and refreshes must preserve the paper's
//! invariants:
//!
//! * `V_q ∩ (V_h ∪ V_p) = ∅` on every cached object (§III-A1);
//! * a `Redirect` only names servers that actually responded positively
//!   for that path and are eligible (`⊆ V_m`) — stale holders may persist
//!   (the cache is *approximate*, §III-A4), but never fabricated ones;
//! * dropped-from-`V_m` servers never appear in an answer after the drop;
//! * a `NotFound` only after the processing deadline passed;
//! * no operation sequence panics, loses accounting, or leaks slots
//!   unboundedly once evicted entries are collected.

use proptest::prelude::*;
use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
use scalla_util::{Clock, Nanos, ServerSet, VirtualClock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const PATHS: u8 = 12;
const SERVERS: u8 = 8;

#[derive(Debug, Clone)]
enum Op {
    Resolve { path: u8, write: bool },
    Have { path: u8, server: u8, staging: bool },
    Refresh { path: u8 },
    Connect { server: u8 },
    DropFromVm { server: u8 },
    Advance { millis: u16 },
    Tick,
    Collect,
    Sweep,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..PATHS, any::<bool>()).prop_map(|(path, write)| Op::Resolve { path, write }),
        4 => (0..PATHS, 0..SERVERS, any::<bool>())
            .prop_map(|(path, server, staging)| Op::Have { path, server, staging }),
        1 => (0..PATHS).prop_map(|path| Op::Refresh { path }),
        1 => (0..SERVERS).prop_map(|server| Op::Connect { server }),
        1 => (0..SERVERS).prop_map(|server| Op::DropFromVm { server }),
        3 => (1u16..7000).prop_map(|millis| Op::Advance { millis }),
        2 => Just(Op::Tick),
        1 => Just(Op::Collect),
        2 => Just(Op::Sweep),
    ]
}

fn path_name(p: u8) -> String {
    format!("/model/f{p}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_invariants_hold_under_any_sequence(
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = CacheConfig::for_tests();
        cfg.lifetime = Nanos::from_secs(64); // 1 s windows
        cfg.response_anchors = 64;
        let cache = NameCache::new(cfg, clock.clone());

        // Every server logs in before traffic, as in a real cluster
        // ("Login is also the time that the server is added to V_c").
        for s in 0..SERVERS {
            cache.note_connect(s);
        }
        // Model state.
        let mut vm = ServerSet::first_n(SERVERS as usize); // path-independent V_m
        // Servers that EVER positively responded per path (superset of
        // what a redirect may name, because corrections only shrink).
        let mut responded: HashMap<u8, HashSet<u8>> = HashMap::new();
        let mut serial = 0u64;

        for op in ops {
            match op {
                Op::Resolve { path, write } => {
                    serial += 1;
                    let mode = if write { AccessMode::Write } else { AccessMode::Read };
                    let out = cache.resolve(
                        &path_name(path), vm, mode, Waiter::new(1, serial),
                    );
                    prop_assert!(out.query.is_subset(vm), "query outside V_m");
                    match out.resolution {
                        Resolution::Redirect { online, preparing } => {
                            let named = online | preparing;
                            prop_assert!(!named.is_empty());
                            prop_assert!(named.is_subset(vm), "redirect outside V_m");
                            let seen = responded.get(&path).cloned().unwrap_or_default();
                            for s in named {
                                prop_assert!(
                                    seen.contains(&s),
                                    "redirect to {s} which never responded for path {path}"
                                );
                            }
                        }
                        Resolution::NotFound => {
                            // Only possible once a deadline has expired,
                            // which requires >= full_delay of virtual time
                            // since first resolve of the path.
                            prop_assert!(
                                clock.now() >= Nanos::from_secs(5),
                                "NotFound before any deadline could pass"
                            );
                        }
                        Resolution::Queued | Resolution::WaitRetry { .. } => {}
                    }
                    // Cached state invariant via peek.
                    if let Some(state) = cache.peek(&path_name(path)) {
                        prop_assert!(state.invariant_holds());
                    }
                }
                Op::Have { path, server, staging } => {
                    if !vm.contains(server) {
                        // A response from a server dropped from V_m can
                        // still arrive (it was in flight); the cache may
                        // record it, but corrections clip it at fetch.
                    }
                    responded.entry(path).or_default().insert(server);
                    let released = cache.update_have(&path_name(path), server, staging);
                    for (_, s) in released {
                        prop_assert_eq!(s, server, "release must name the responder");
                    }
                    if let Some(state) = cache.peek(&path_name(path)) {
                        prop_assert!(state.invariant_holds());
                        prop_assert!(
                            state.vh.contains(server) || state.vp.contains(server)
                        );
                    }
                }
                Op::Refresh { path } => {
                    serial += 1;
                    let out = cache.resolve_full(
                        &path_name(path), vm, ServerSet::EMPTY, AccessMode::Read,
                        Waiter::new(1, serial), ServerSet::EMPTY, true,
                    );
                    // A refresh floods everything eligible again.
                    prop_assert_eq!(out.query, vm);
                    // The old positive knowledge was discarded: the cache
                    // must re-learn, so clear the model's memory too...
                    // except in-flight semantics allow old responders to
                    // re-respond; keep them (superset is still sound).
                }
                Op::Connect { server } => {
                    cache.note_connect(server);
                    vm.insert(server);
                }
                Op::DropFromVm { server } => {
                    vm.remove(server);
                    // Dropped servers' responses are forgotten by the
                    // V_m clip at every fetch; the model keeps `responded`
                    // as a superset, which remains sound because redirect
                    // membership is checked against both.
                }
                Op::Advance { millis } => {
                    clock.advance(Nanos::from_millis(u64::from(millis)));
                }
                Op::Tick => {
                    let out = cache.tick();
                    // Deferred re-chaining only ever moves entries; it
                    // never expires a refreshed entry early.
                    prop_assert!(out.scanned >= out.expired.len() + out.rechained);
                }
                Op::Collect => {
                    cache.collect(usize::MAX);
                }
                Op::Sweep => {
                    for w in cache.sweep() {
                        prop_assert_eq!(w.client, 1, "unknown waiter released");
                    }
                }
            }
        }

        // Post-run accounting: everything expired can be collected and the
        // live count never exceeds creates.
        cache.collect(usize::MAX);
        let stats = cache.stats();
        let creates = scalla_cache::CacheStats::get(&stats.creates);
        prop_assert!(cache.len() as u64 <= creates);
    }
}

/// Everything a caller can observe from one operation, for the sharding
/// equivalence test below. Deliberately excludes `LocRef` (its shard field
/// differs across shard counts by design) and statistics (memo-hit vs
/// computed corrections may differ — per-shard memos are a cache of a
/// cache — while producing identical states).
#[derive(Debug, PartialEq)]
enum Observed {
    Resolved(Resolution, ServerSet),
    Released(Vec<(u64, u64, u8)>),
    Swept(Vec<(u64, u64)>),
    Ticked { expired: usize, rechained: usize, scanned: usize },
    Collected(usize),
    Peeked(u8, Option<scalla_cache::LocState>),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The shard count is a pure concurrency knob: the same operation
    /// sequence, applied single-threaded, must produce identical
    /// observable behaviour at 1 shard (the original single-lock interior)
    /// and at 8. Any divergence means sharding changed semantics, not just
    /// locking.
    #[test]
    fn shard_count_is_observably_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let run = |shards: usize| -> Vec<Observed> {
            let clock = Arc::new(VirtualClock::new());
            let mut cfg = CacheConfig::for_tests().with_shards(shards);
            cfg.lifetime = Nanos::from_secs(64);
            cfg.response_anchors = 64;
            let cache = NameCache::new(cfg, clock.clone());
            for s in 0..SERVERS {
                cache.note_connect(s);
            }
            let mut vm = ServerSet::first_n(SERVERS as usize);
            let mut serial = 0u64;
            let mut log = Vec::new();
            for op in &ops {
                match *op {
                    Op::Resolve { path, write } => {
                        serial += 1;
                        let mode = if write { AccessMode::Write } else { AccessMode::Read };
                        let out = cache.resolve(&path_name(path), vm, mode, Waiter::new(1, serial));
                        log.push(Observed::Resolved(out.resolution, out.query));
                        log.push(Observed::Peeked(path, cache.peek(&path_name(path))));
                    }
                    Op::Have { path, server, staging } => {
                        let released = cache
                            .update_have(&path_name(path), server, staging)
                            .into_iter()
                            .map(|(w, s)| (w.client, w.tag, s))
                            .collect();
                        log.push(Observed::Released(released));
                    }
                    Op::Refresh { path } => {
                        serial += 1;
                        let out = cache.resolve_full(
                            &path_name(path), vm, ServerSet::EMPTY, AccessMode::Read,
                            Waiter::new(1, serial), ServerSet::EMPTY, true,
                        );
                        log.push(Observed::Resolved(out.resolution, out.query));
                    }
                    Op::Connect { server } => {
                        cache.note_connect(server);
                        vm.insert(server);
                    }
                    Op::DropFromVm { server } => {
                        vm.remove(server);
                    }
                    Op::Advance { millis } => {
                        clock.advance(Nanos::from_millis(u64::from(millis)));
                    }
                    Op::Tick => {
                        let out = cache.tick();
                        log.push(Observed::Ticked {
                            expired: out.expired.len(),
                            rechained: out.rechained,
                            scanned: out.scanned,
                        });
                    }
                    Op::Collect => {
                        log.push(Observed::Collected(cache.collect(usize::MAX)));
                    }
                    Op::Sweep => {
                        log.push(Observed::Swept(
                            cache.sweep().into_iter().map(|w| (w.client, w.tag)).collect(),
                        ));
                    }
                }
            }
            cache.collect(usize::MAX);
            for p in 0..PATHS {
                log.push(Observed::Peeked(p, cache.peek(&path_name(p))));
            }
            log.push(Observed::Collected(cache.len()));
            log
        };

        let single = run(1);
        let sharded = run(8);
        prop_assert_eq!(single.len(), sharded.len());
        for (i, (a, b)) in single.iter().zip(sharded.iter()).enumerate() {
            prop_assert_eq!(a, b, "observation {i} diverged between 1 and 8 shards");
        }
    }
}
