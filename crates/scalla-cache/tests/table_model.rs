//! Model-based test: the Fibonacci hash table against a `HashMap` oracle
//! through arbitrary interleavings of insert / lookup / hide / remove,
//! across resizes.

use proptest::prelude::*;
use scalla_cache::slab::LocSlab;
use scalla_cache::table::{HashTable, SizePolicy};
use scalla_util::crc32;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16),
    Lookup(u16),
    Hide(u16),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..200).prop_map(Op::Insert),
        (0u16..200).prop_map(Op::Lookup),
        (0u16..200).prop_map(Op::Hide),
        (0u16..200).prop_map(Op::Remove),
    ]
}

fn name_of(k: u16) -> String {
    format!("/model/run{}/f{k}.root", k % 7)
}

fn check_sequence(ops: Vec<Op>, policy: SizePolicy) {
    let mut slab = LocSlab::new();
    let mut table = HashTable::with_policy(3, 80, policy);
    // Oracle: name -> slot for *visible* entries.
    let mut visible: HashMap<String, u32> = HashMap::new();
    // All chained slots (visible or hidden), for remove bookkeeping.
    let mut chained: HashMap<String, u32> = HashMap::new();

    for op in ops {
        match op {
            Op::Insert(k) => {
                let name = name_of(k);
                if chained.contains_key(&name) {
                    continue; // model one live entry per name
                }
                let h = crc32(name.as_bytes());
                let slot = slab.alloc(&name, h);
                table.insert(&mut slab, slot);
                visible.insert(name.clone(), slot);
                chained.insert(name, slot);
            }
            Op::Lookup(k) => {
                let name = name_of(k);
                let h = crc32(name.as_bytes());
                let got = table.lookup(&slab, &name, h);
                assert_eq!(got, visible.get(&name).copied(), "lookup({name})");
            }
            Op::Hide(k) => {
                let name = name_of(k);
                if let Some(&slot) = visible.get(&name) {
                    slab.get_mut(slot).hide();
                    visible.remove(&name);
                }
            }
            Op::Remove(k) => {
                let name = name_of(k);
                if let Some(slot) = chained.remove(&name) {
                    table.remove(&mut slab, slot);
                    slab.release(slot);
                    visible.remove(&name);
                }
            }
        }
        // Global invariants after every operation.
        assert_eq!(table.len(), chained.len(), "chained-entry accounting");
        assert!(
            table.len() * 100 <= table.bucket_count() * 80,
            "load factor bound violated: {}/{}",
            table.len(),
            table.bucket_count()
        );
    }
    // Final sweep: every oracle entry is findable, nothing else is.
    for (name, &slot) in &visible {
        let h = crc32(name.as_bytes());
        assert_eq!(table.lookup(&slab, name, h), Some(slot));
    }
    let total: usize = table.chain_lengths(&slab).iter().sum();
    assert_eq!(total, chained.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fibonacci_table_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        check_sequence(ops, SizePolicy::Fibonacci);
    }

    #[test]
    fn pow2_table_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        check_sequence(ops, SizePolicy::PowerOfTwo);
    }
}
