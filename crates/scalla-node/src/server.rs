//! The data-server state machine (an xrootd + cmsd leaf pair, merged).
//!
//! A server answers `Locate` queries *only positively* (§III-B): if the
//! file is online it responds `Have{staging: false}`; if it is resident in
//! the Mass Storage System it responds `Have{staging: true}` and begins
//! staging, promoting with a fresh `Have` when the file comes online; if it
//! does not have the file it stays silent.
//!
//! File I/O (`Open`/`Read`/`Write`/`Close`/`Stat`) runs against the local
//! [`LocalFs`]. An `Open` of a file the redirector believed was here but is
//! not returns `NotFound`, which drives the client's refresh recovery
//! (§III-C1).

use crate::fs::LocalFs;
use scalla_obs::{Obs, SpanEvent, TraceId};
use scalla_proto::{Addr, ClientMsg, CmsMsg, ErrCode, Msg, NodeRoleTag, ServerMsg};
use scalla_simnet::{NetCtx, Node};
use scalla_util::Nanos;
use std::collections::HashMap;

/// Timer tokens shared by the node state machines.
pub mod tokens {
    /// Fast-response-queue sweep (cmsd).
    pub const SWEEP: u64 = 1;
    /// Eviction-window tick (cmsd).
    pub const TICK: u64 = 2;
    /// Background physical removal batch (cmsd).
    pub const COLLECT: u64 = 3;
    /// Subordinate liveness check (cmsd).
    pub const HEALTH: u64 = 4;
    /// Offline-past-limit drop processing (cmsd).
    pub const DROPS: u64 = 5;
    /// Upward load report (cmsd + server).
    pub const HEARTBEAT: u64 = 6;
    /// Staging completions use `STAGING_BASE + k`.
    pub const STAGING_BASE: u64 = 1 << 32;
}

/// How a server announces itself to its parent at startup.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JoinStyle {
    /// Scalla's light registration: declare path prefixes only (§V).
    #[default]
    PrefixLogin,
    /// GFS-style join (baseline): upload the complete file manifest.
    FullManifest,
}

/// Data-server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Host name used in redirects.
    pub name: String,
    /// Parent cmsd address(es).
    pub parents: Vec<Addr>,
    /// Exported path prefixes (declared at login — never a file list, §V).
    pub exports: Vec<String>,
    /// Disk capacity in bytes.
    pub capacity: u64,
    /// Time to bring an MSS-resident file online ("typically on the order
    /// of minutes", §III-B2; shorter in experiments).
    pub staging_delay: Nanos,
    /// Period between upward load reports.
    pub heartbeat: Nanos,
    /// Join protocol (Scalla prefix login vs GFS-style manifest upload).
    pub join: JoinStyle,
    /// Cluster Name Space daemon to notify of namespace changes
    /// (footnote 3). `None` disables notifications.
    pub cns: Option<Addr>,
}

impl ServerConfig {
    /// A server named `name` under `parent` exporting `/`.
    pub fn new(name: impl Into<String>, parent: Addr) -> ServerConfig {
        ServerConfig {
            name: name.into(),
            parents: vec![parent],
            exports: vec!["/".to_string()],
            capacity: 1 << 40,
            staging_delay: Nanos::from_mins(2),
            heartbeat: Nanos::from_secs(1),
            join: JoinStyle::default(),
            cns: None,
        }
    }
}

/// The data-server node.
pub struct ServerNode {
    cfg: ServerConfig,
    fs: LocalFs,
    handles: HashMap<u64, String>,
    next_handle: u64,
    staging: HashMap<u64, String>,
    next_staging: u64,
    obs: Obs,
}

impl ServerNode {
    /// Creates a server with an empty store.
    pub fn new(cfg: ServerConfig) -> ServerNode {
        let fs = LocalFs::new(cfg.capacity);
        ServerNode {
            cfg,
            fs,
            handles: HashMap::new(),
            next_handle: 0,
            staging: HashMap::new(),
            next_staging: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; locate answers and opens become
    /// flight-recorder spans carrying the request's trace id.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The local store (harness seeding / inspection).
    pub fn fs_mut(&mut self) -> &mut LocalFs {
        &mut self.fs
    }

    /// Read access to the local store.
    pub fn fs(&self) -> &LocalFs {
        &self.fs
    }

    /// The configured host name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Path behind an open handle (used by layers — e.g. Qserv — that
    /// build services on top of the file abstraction).
    pub fn handle_path(&self, handle: u64) -> Option<&str> {
        self.handles.get(&handle).map(String::as_str)
    }

    /// Deletes a file and notifies the CNS (if configured). Returns
    /// whether the file existed. This is the node-level entry point for
    /// deletions so the composite namespace stays consistent.
    pub fn delete(&mut self, ctx: &mut dyn NetCtx, path: &str) -> bool {
        let existed = self.fs.remove(path);
        if existed {
            if let Some(cns) = self.cfg.cns {
                ctx.send(cns, CmsMsg::NsEvent { created: false, path: path.to_string() }.into());
            }
        }
        existed
    }

    fn begin_staging(&mut self, ctx: &mut dyn NetCtx, path: &str) {
        let Some(entry) = self.fs.get_mut(path) else { return };
        if entry.online || entry.staging {
            return;
        }
        entry.staging = true;
        let k = self.next_staging;
        self.next_staging += 1;
        self.staging.insert(k, path.to_string());
        ctx.set_timer(self.cfg.staging_delay, tokens::STAGING_BASE + k);
    }

    fn handle_locate(
        &mut self,
        ctx: &mut dyn NetCtx,
        from: Addr,
        reqid: u64,
        path: String,
        hash: u32,
        write: bool,
    ) {
        let verdict = match self.fs.get(&path) {
            Some(entry) => {
                let staging = !entry.online;
                ctx.send(from, CmsMsg::Have { reqid, path: path.clone(), hash, staging }.into());
                if staging && !write {
                    self.begin_staging(ctx, &path);
                }
                if staging {
                    "have_staging"
                } else {
                    "have_online"
                }
            }
            None => {
                // Request-rarely-respond: silence is the negative answer.
                "silent"
            }
        };
        if self.obs.is_enabled() {
            self.obs.span(
                SpanEvent::new(TraceId(ctx.trace()), ctx.me().0, "srv_locate")
                    .verdict(verdict)
                    .at(ctx.now().0),
            );
        }
    }

    fn handle_open(&mut self, ctx: &mut dyn NetCtx, from: Addr, path: String, write: bool) {
        let verdict = match self.fs.get(&path) {
            Some(entry) if entry.online => {
                let h = self.next_handle;
                self.next_handle += 1;
                self.handles.insert(h, path);
                ctx.send(from, ServerMsg::OpenOk { handle: h }.into());
                "open_ok"
            }
            Some(_) => {
                // MSS-resident: start staging and tell the client how long.
                let millis = self.cfg.staging_delay.as_millis().max(1);
                self.begin_staging(ctx, &path);
                ctx.send(from, ServerMsg::Wait { millis }.into());
                "wait_staging"
            }
            None if write => {
                self.fs.create(&path);
                if let Some(cns) = self.cfg.cns {
                    ctx.send(cns, CmsMsg::NsEvent { created: true, path: path.clone() }.into());
                }
                let h = self.next_handle;
                self.next_handle += 1;
                self.handles.insert(h, path);
                ctx.send(from, ServerMsg::OpenOk { handle: h }.into());
                "open_created"
            }
            None => {
                // Stale redirect: the location cache believed we had it.
                // The client recovers by re-issuing with refresh (§III-C1).
                ctx.send(
                    from,
                    ServerMsg::Error {
                        code: ErrCode::NotFound,
                        detail: format!("{path} not on {}", self.cfg.name),
                    }
                    .into(),
                );
                "stale_redirect"
            }
        };
        if self.obs.is_enabled() {
            self.obs.span(
                SpanEvent::new(TraceId(ctx.trace()), ctx.me().0, "srv_open")
                    .verdict(verdict)
                    .at(ctx.now().0),
            );
            if verdict == "stale_redirect" {
                self.obs.incident("stale_redirect");
            }
        }
    }
}

impl Node for ServerNode {
    fn on_start(&mut self, ctx: &mut dyn NetCtx) {
        if let Some(cns) = self.cfg.cns {
            // Initial namespace sync: the CNS (not the cluster) holds the
            // global list, so it learns the existing files once here.
            let paths: Vec<String> = self.fs.paths().map(str::to_string).collect();
            for path in paths {
                ctx.send(cns, CmsMsg::NsEvent { created: true, path }.into());
            }
        }
        let join: Msg = match self.cfg.join {
            JoinStyle::PrefixLogin => CmsMsg::Login {
                name: self.cfg.name.clone(),
                role: NodeRoleTag::Server,
                exports: self.cfg.exports.clone(),
            }
            .into(),
            JoinStyle::FullManifest => CmsMsg::Manifest {
                name: self.cfg.name.clone(),
                files: self.fs.paths().map(str::to_string).collect(),
            }
            .into(),
        };
        for &parent in &self.cfg.parents {
            ctx.send(parent, join.clone());
        }
        ctx.set_timer(self.cfg.heartbeat, tokens::HEARTBEAT);
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        match msg {
            Msg::Cms(CmsMsg::Locate { reqid, path, hash, write }) => {
                self.handle_locate(ctx, from, reqid, path, hash, write);
            }
            Msg::Cms(_) => {
                // LoginOk / LoginRejected / stray cluster traffic.
            }
            Msg::Client(ClientMsg::Open { path, write, .. }) => {
                self.handle_open(ctx, from, path, write);
            }
            Msg::Client(ClientMsg::Read { handle, offset, len }) => {
                let reply = match self.handles.get(&handle) {
                    Some(path) => match self.fs.read(path, offset, len) {
                        Some(data) => ServerMsg::Data { data },
                        None => ServerMsg::Error {
                            code: ErrCode::IoError,
                            detail: "file lost or offline".into(),
                        },
                    },
                    None => ServerMsg::Error {
                        code: ErrCode::BadRequest,
                        detail: format!("bad handle {handle}"),
                    },
                };
                ctx.send(from, reply.into());
            }
            Msg::Client(ClientMsg::Write { handle, offset, data }) => {
                let reply = match self.handles.get(&handle) {
                    Some(path) => match self.fs.write(path, offset, &data) {
                        Some(len) => ServerMsg::WriteOk { len },
                        None => ServerMsg::Error {
                            code: ErrCode::IoError,
                            detail: "file lost or offline".into(),
                        },
                    },
                    None => ServerMsg::Error {
                        code: ErrCode::BadRequest,
                        detail: format!("bad handle {handle}"),
                    },
                };
                ctx.send(from, reply.into());
            }
            Msg::Client(ClientMsg::Close { handle }) => {
                self.handles.remove(&handle);
                ctx.send(from, ServerMsg::CloseOk.into());
            }
            Msg::Client(ClientMsg::Stat { path }) => {
                let reply = match self.fs.get(&path) {
                    Some(e) => ServerMsg::StatOk { size: e.size, online: e.online },
                    None => ServerMsg::Error {
                        code: ErrCode::NotFound,
                        detail: format!("{path} not on {}", self.cfg.name),
                    },
                };
                ctx.send(from, reply.into());
            }
            Msg::Client(ClientMsg::Prepare { .. }) => {
                // Prepare is a redirector operation; acknowledge benignly.
                ctx.send(from, ServerMsg::PrepareOk.into());
            }
            Msg::Client(ClientMsg::List { .. }) => {
                // Deliberately unsupported on the data path (§II-B4): the
                // CNS daemon owns the composite namespace.
                ctx.send(
                    from,
                    ServerMsg::Error {
                        code: ErrCode::BadRequest,
                        detail: "listing is served by the cns daemon".into(),
                    }
                    .into(),
                );
            }
            Msg::Server(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
        if token == tokens::HEARTBEAT {
            let load = self.handles.len() as u32;
            let free = self.fs.free_bytes();
            for &parent in &self.cfg.parents {
                ctx.send(parent, CmsMsg::LoadReport { load, free_bytes: free }.into());
            }
            ctx.set_timer(self.cfg.heartbeat, tokens::HEARTBEAT);
        } else if token >= tokens::STAGING_BASE {
            if let Some(path) = self.staging.remove(&(token - tokens::STAGING_BASE)) {
                if self.fs.complete_staging(&path) {
                    // Promote: tell the parents the file is now online so
                    // caches move the bit from V_p to V_h.
                    let hash = scalla_util::crc32(path.as_bytes());
                    for &parent in &self.cfg.parents {
                        ctx.send(
                            parent,
                            CmsMsg::Have { reqid: 0, path: path.clone(), hash, staging: false }
                                .into(),
                        );
                    }
                }
            }
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_util::crc32;

    pub(crate) use crate::testutil::MockCtx;

    fn server() -> ServerNode {
        let mut cfg = ServerConfig::new("srv-a", Addr(0));
        cfg.staging_delay = Nanos::from_secs(30);
        let mut s = ServerNode::new(cfg);
        s.fs_mut().put_online("/data/f1", 100);
        s.fs_mut().put_offline("/mss/f2", 200);
        s
    }

    fn locate(path: &str) -> Msg {
        CmsMsg::Locate { reqid: 9, path: path.into(), hash: crc32(path.as_bytes()), write: false }
            .into()
    }

    #[test]
    fn login_sent_on_start() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_start(&mut ctx);
        assert!(matches!(
            &ctx.sends[0],
            (Addr(0), Msg::Cms(CmsMsg::Login { role: NodeRoleTag::Server, .. }))
        ));
    }

    #[test]
    fn locate_online_answers_have() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_message(&mut ctx, Addr(0), locate("/data/f1"));
        match &ctx.sends[0].1 {
            Msg::Cms(CmsMsg::Have { reqid: 9, staging: false, path, .. }) => {
                assert_eq!(path, "/data/f1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn locate_missing_is_silent() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_message(&mut ctx, Addr(0), locate("/nope"));
        assert!(ctx.sends.is_empty(), "request-rarely-respond: no negative");
    }

    #[test]
    fn locate_offline_stages_and_promotes() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_message(&mut ctx, Addr(0), locate("/mss/f2"));
        assert!(matches!(&ctx.sends[0].1, Msg::Cms(CmsMsg::Have { staging: true, .. })));
        // Staging timer armed.
        let (delay, token) = ctx.timers[0];
        assert_eq!(delay, Nanos::from_secs(30));
        // Fire it: file comes online and a promotion Have goes up.
        let mut ctx2 = MockCtx::new();
        s.on_timer(&mut ctx2, token);
        assert!(matches!(&ctx2.sends[0].1, Msg::Cms(CmsMsg::Have { staging: false, .. })));
        assert!(s.fs().get("/mss/f2").unwrap().online);
    }

    #[test]
    fn duplicate_locate_does_not_double_stage() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_message(&mut ctx, Addr(0), locate("/mss/f2"));
        s.on_message(&mut ctx, Addr(0), locate("/mss/f2"));
        assert_eq!(ctx.timers.len(), 1, "one staging op in flight");
    }

    #[test]
    fn open_read_write_close_roundtrip() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        let client = Addr(42);
        s.on_message(
            &mut ctx,
            client,
            ClientMsg::Open { path: "/data/f1".into(), write: true, refresh: false, avoid: None }
                .into(),
        );
        let handle = match &ctx.sends[0].1 {
            Msg::Server(ServerMsg::OpenOk { handle }) => *handle,
            other => panic!("{other:?}"),
        };
        s.on_message(
            &mut ctx,
            client,
            ClientMsg::Write { handle, offset: 0, data: bytes::Bytes::from_static(b"xyz") }.into(),
        );
        assert!(matches!(&ctx.sends[1].1, Msg::Server(ServerMsg::WriteOk { len: 3 })));
        s.on_message(&mut ctx, client, ClientMsg::Read { handle, offset: 0, len: 3 }.into());
        match &ctx.sends[2].1 {
            Msg::Server(ServerMsg::Data { data }) => assert_eq!(&data[..], b"xyz"),
            other => panic!("{other:?}"),
        }
        s.on_message(&mut ctx, client, ClientMsg::Close { handle }.into());
        assert!(matches!(&ctx.sends[3].1, Msg::Server(ServerMsg::CloseOk)));
        // Handle is gone now.
        s.on_message(&mut ctx, client, ClientMsg::Read { handle, offset: 0, len: 1 }.into());
        assert!(matches!(
            &ctx.sends[4].1,
            Msg::Server(ServerMsg::Error { code: ErrCode::BadRequest, .. })
        ));
    }

    #[test]
    fn open_missing_readonly_is_notfound() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_message(
            &mut ctx,
            Addr(42),
            ClientMsg::Open { path: "/ghost".into(), write: false, refresh: false, avoid: None }
                .into(),
        );
        assert!(matches!(
            &ctx.sends[0].1,
            Msg::Server(ServerMsg::Error { code: ErrCode::NotFound, .. })
        ));
    }

    #[test]
    fn open_missing_write_creates() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_message(
            &mut ctx,
            Addr(42),
            ClientMsg::Open { path: "/new".into(), write: true, refresh: false, avoid: None }
                .into(),
        );
        assert!(matches!(&ctx.sends[0].1, Msg::Server(ServerMsg::OpenOk { .. })));
        assert!(s.fs().get("/new").unwrap().online);
    }

    #[test]
    fn open_offline_waits_and_stages() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_message(
            &mut ctx,
            Addr(42),
            ClientMsg::Open { path: "/mss/f2".into(), write: false, refresh: false, avoid: None }
                .into(),
        );
        assert!(matches!(&ctx.sends[0].1, Msg::Server(ServerMsg::Wait { millis: 30000 })));
        assert_eq!(ctx.timers.len(), 1);
    }

    #[test]
    fn stat_reports_size_and_onlineness() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_message(&mut ctx, Addr(42), ClientMsg::Stat { path: "/mss/f2".into() }.into());
        assert!(matches!(
            &ctx.sends[0].1,
            Msg::Server(ServerMsg::StatOk { size: 200, online: false })
        ));
    }

    #[test]
    fn heartbeat_reports_load_and_space() {
        let mut s = server();
        let mut ctx = MockCtx::new();
        s.on_timer(&mut ctx, tokens::HEARTBEAT);
        assert!(matches!(&ctx.sends[0].1, Msg::Cms(CmsMsg::LoadReport { load: 0, .. })));
        // Re-armed.
        assert_eq!(ctx.timers.len(), 1);
    }
}
