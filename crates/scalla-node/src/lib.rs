//! Node state machines: the cmsd and the xrootd data server.
//!
//! Scalla is "symmetric in that for each xrootd there is a corresponding
//! cmsd" (§II-B). In this reproduction a leaf pair is merged into one
//! [`ServerNode`] (it answers both locate queries and file I/O), while
//! interior nodes are [`CmsdNode`]s in manager or supervisor role.
//!
//! Both are written against the runtime-agnostic
//! [`Node`](scalla_simnet::Node)/[`NetCtx`](scalla_simnet::NetCtx) traits,
//! so the identical state machines run under the deterministic simulator
//! and the live threaded runtime.
//!
//! Protocol behaviour implemented here:
//!
//! * name resolution with redirect chaining down the 64-ary tree (§II-B2,
//!   §II-B3);
//! * request-rarely-respond locates — only positive [`CmsMsg::Have`]
//!   responses exist, and supervisors compress multiple child responses
//!   into a single upward one (§II-B2, §III-B);
//! * the fast response queue and its 133 ms sweep (§III-B1);
//! * the window tick and background collection (§III-A3);
//! * login / heartbeat-based offline detection / drop processing (§III-A4);
//! * write allocation: a file that provably does not exist (deadline
//!   passed) is allocated to a server chosen by the selection policy;
//! * MSS staging: offline files respond "preparing", come online after the
//!   configured staging delay, and promote with a fresh `Have` (§III-B2).
//!
//! [`CmsMsg::Have`]: scalla_proto::CmsMsg::Have

pub mod cmsd;
pub mod cns;
pub mod fs;
pub mod server;
#[cfg(test)]
pub(crate) mod testutil;

pub use cmsd::{CmsdConfig, CmsdNode, CmsdRole};
pub use cns::CnsNode;
pub use fs::{FileEntry, LocalFs};
pub use server::{JoinStyle, ServerConfig, ServerNode};
