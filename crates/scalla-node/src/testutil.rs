//! Test-only mock of [`NetCtx`](scalla_simnet::NetCtx) capturing effects.

use scalla_proto::{Addr, Msg};
use scalla_simnet::NetCtx;
use scalla_util::Nanos;

/// Minimal NetCtx capturing effects for direct state-machine tests.
pub struct MockCtx {
    pub now: Nanos,
    pub me: Addr,
    pub sends: Vec<(Addr, Msg)>,
    pub timers: Vec<(Nanos, u64)>,
}

impl MockCtx {
    pub fn new() -> MockCtx {
        MockCtx { now: Nanos::ZERO, me: Addr(100), sends: Vec::new(), timers: Vec::new() }
    }
}

impl NetCtx for MockCtx {
    fn now(&self) -> Nanos {
        self.now
    }
    fn me(&self) -> Addr {
        self.me
    }
    fn send(&mut self, to: Addr, msg: Msg) {
        self.sends.push((to, msg));
    }
    fn set_timer(&mut self, delay: Nanos, token: u64) {
        self.timers.push((delay, token));
    }
    fn rand_u64(&mut self) -> u64 {
        4 // deterministic
    }
}
