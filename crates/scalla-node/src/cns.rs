//! The Cluster Name Space daemon.
//!
//! Scalla deliberately omits cluster-wide namespace operations: "Semantics
//! that conflict with the goal of low latency are not natively present
//! (e.g., an ls-type function across all nodes in a cluster)" (§II-B4),
//! and §V notes that "obtaining global lists of files is not implemented
//! except through a separate Cluster Name Space Daemon". Footnote 3
//! records that full POSIX semantics are layered on top of native Scalla
//! features using exactly this daemon (plus FUSE, which is out of scope
//! here).
//!
//! [`CnsNode`] maintains the composite namespace from [`NsEvent`]
//! notifications sent by data servers (initial sync at server start,
//! then incremental create/delete events) and answers
//! [`ClientMsg::List`] queries. It keeps a per-path holder count so a
//! file replicated on several servers disappears from listings only when
//! the last replica goes.
//!
//! [`NsEvent`]: scalla_proto::CmsMsg::NsEvent
//! [`ClientMsg::List`]: scalla_proto::ClientMsg::List

use scalla_proto::{Addr, ClientMsg, CmsMsg, Msg, ServerMsg};
use scalla_simnet::{NetCtx, Node};
use std::collections::{BTreeMap, HashMap};

/// Splits `/a/b/c` into (`/a/b`, `c`); the root's parent is `/`.
fn split_parent(path: &str) -> (String, String) {
    let trimmed = path.trim_end_matches('/');
    match trimmed.rfind('/') {
        Some(0) => ("/".to_string(), trimmed[1..].to_string()),
        Some(i) => (trimmed[..i].to_string(), trimmed[i + 1..].to_string()),
        None => ("/".to_string(), trimmed.to_string()),
    }
}

/// The composite-namespace daemon.
#[derive(Default)]
pub struct CnsNode {
    /// directory -> entry name -> replica count.
    dirs: BTreeMap<String, BTreeMap<String, u32>>,
    /// full path -> replica count (for delete bookkeeping).
    files: HashMap<String, u32>,
    /// Events processed (diagnostics).
    pub events: u64,
}

impl CnsNode {
    /// Creates an empty namespace.
    pub fn new() -> CnsNode {
        CnsNode::default()
    }

    /// Number of distinct files known.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Looks a directory listing up directly (harness/testing).
    pub fn list(&self, dir: &str) -> Vec<String> {
        let dir = if dir.len() > 1 { dir.trim_end_matches('/') } else { dir };
        self.dirs.get(dir).map(|m| m.keys().cloned().collect()).unwrap_or_default()
    }

    fn record(&mut self, created: bool, path: &str) {
        self.events += 1;
        // Register every ancestor directory so intermediate levels list
        // their children too.
        if created {
            let count = self.files.entry(path.to_string()).or_insert(0);
            *count += 1;
            if *count == 1 {
                let mut child = path.to_string();
                loop {
                    let (parent, name) = split_parent(&child);
                    let entry = self.dirs.entry(parent.clone()).or_default();
                    let first_ref = !entry.contains_key(&name);
                    *entry.entry(name).or_insert(0) += 1;
                    if parent == "/" || !first_ref {
                        break;
                    }
                    child = parent;
                }
            }
        } else if let Some(count) = self.files.get_mut(path) {
            *count -= 1;
            if *count == 0 {
                self.files.remove(path);
                let mut child = path.to_string();
                loop {
                    let (parent, name) = split_parent(&child);
                    let mut now_empty = false;
                    if let Some(entry) = self.dirs.get_mut(&parent) {
                        if let Some(n) = entry.get_mut(&name) {
                            *n -= 1;
                            if *n == 0 {
                                entry.remove(&name);
                            }
                        }
                        if entry.is_empty() {
                            self.dirs.remove(&parent);
                            now_empty = true;
                        }
                    }
                    if parent == "/" || !now_empty {
                        break;
                    }
                    child = parent;
                }
            }
        }
    }
}

impl Node for CnsNode {
    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        match msg {
            Msg::Cms(CmsMsg::NsEvent { created, path }) => {
                self.record(created, &path);
            }
            Msg::Client(ClientMsg::List { dir }) => {
                ctx.send(from, ServerMsg::ListOk { entries: self.list(&dir) }.into());
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cns_with(paths: &[&str]) -> CnsNode {
        let mut cns = CnsNode::new();
        for p in paths {
            cns.record(true, p);
        }
        cns
    }

    #[test]
    fn listings_by_directory() {
        let cns = cns_with(&["/a/b/f1", "/a/b/f2", "/a/c/f3", "/top"]);
        assert_eq!(cns.list("/a/b"), vec!["f1", "f2"]);
        assert_eq!(cns.list("/a"), vec!["b", "c"]);
        assert_eq!(cns.list("/"), vec!["a", "top"]);
        assert_eq!(cns.list("/nope"), Vec::<String>::new());
        assert_eq!(cns.file_count(), 4);
    }

    #[test]
    fn trailing_slash_tolerated() {
        let cns = cns_with(&["/a/b/f1"]);
        assert_eq!(cns.list("/a/b/"), vec!["f1"]);
    }

    #[test]
    fn replicas_counted_per_path() {
        let mut cns = CnsNode::new();
        cns.record(true, "/d/f"); // replica on server A
        cns.record(true, "/d/f"); // replica on server B
        assert_eq!(cns.file_count(), 1);
        cns.record(false, "/d/f");
        assert_eq!(cns.list("/d"), vec!["f"], "one replica still exists");
        cns.record(false, "/d/f");
        assert!(cns.list("/d").is_empty(), "last replica gone");
        assert_eq!(cns.file_count(), 0);
    }

    #[test]
    fn directories_vanish_when_emptied() {
        let mut cns = CnsNode::new();
        cns.record(true, "/x/y/z/f");
        assert_eq!(cns.list("/x"), vec!["y"]);
        cns.record(false, "/x/y/z/f");
        assert!(cns.list("/x").is_empty());
        assert!(cns.list("/").is_empty());
    }

    #[test]
    fn sibling_keeps_shared_ancestors() {
        let mut cns = cns_with(&["/x/y/f1", "/x/z/f2"]);
        cns.record(false, "/x/y/f1");
        assert_eq!(cns.list("/x"), vec!["z"], "shared parent survives");
    }

    #[test]
    fn delete_of_unknown_path_is_noop() {
        let mut cns = cns_with(&["/a/f"]);
        cns.record(false, "/ghost");
        assert_eq!(cns.file_count(), 1);
    }

    #[test]
    fn split_parent_cases() {
        assert_eq!(split_parent("/a/b/c"), ("/a/b".into(), "c".into()));
        assert_eq!(split_parent("/top"), ("/".into(), "top".into()));
        assert_eq!(split_parent("bare"), ("/".into(), "bare".into()));
    }
}
