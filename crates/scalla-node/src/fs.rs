//! In-memory data store with Mass-Storage-System semantics.
//!
//! Each data server "uses the host's native file system to implement the
//! data store" (§II-B4). We substitute an in-memory map (the paper's
//! substrate is real disks; content is irrelevant to the location protocol,
//! size and online-ness are not). A file can be *online* (servable now) or
//! resident only in the MSS, in which case an access triggers staging that
//! completes after a configurable delay — "typically on the order of
//! minutes" (§III-B2).

use bytes::Bytes;
use std::collections::HashMap;

/// One file's state on a data server.
#[derive(Clone, Debug)]
pub struct FileEntry {
    /// Current contents (empty for MSS-resident files until staged).
    pub data: Bytes,
    /// Logical size in bytes (known even while offline, from the catalog).
    pub size: u64,
    /// Whether the file is servable right now.
    pub online: bool,
    /// Whether a staging operation is in flight.
    pub staging: bool,
}

/// The per-server namespace: full POSIX semantics locally (§II-B4), modeled
/// as a flat path → entry map plus capacity accounting.
#[derive(Debug)]
pub struct LocalFs {
    files: HashMap<String, FileEntry>,
    capacity: u64,
    used: u64,
}

impl LocalFs {
    /// Creates an empty store with `capacity` bytes of space.
    pub fn new(capacity: u64) -> LocalFs {
        LocalFs { files: HashMap::new(), capacity, used: 0 }
    }

    /// Free bytes (selection-policy input).
    pub fn free_bytes(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of files (online or not).
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Seeds an online file with `size` zero bytes of content.
    pub fn put_online(&mut self, path: &str, size: u64) {
        self.used += size;
        let prev = self.files.insert(
            path.to_string(),
            FileEntry {
                data: Bytes::from(vec![0u8; size as usize]),
                size,
                online: true,
                staging: false,
            },
        );
        self.release(prev);
    }

    /// Seeds an MSS-resident (offline) file: locatable, not yet servable.
    pub fn put_offline(&mut self, path: &str, size: u64) {
        let prev = self.files.insert(
            path.to_string(),
            FileEntry { data: Bytes::new(), size, online: false, staging: false },
        );
        self.release(prev);
    }

    /// Releases the space accounted to a replaced entry. Only online
    /// entries hold bytes: offline (MSS-resident) files are charged when
    /// staging completes, never before.
    fn release(&mut self, prev: Option<FileEntry>) {
        if let Some(e) = prev {
            if e.online {
                self.used = self.used.saturating_sub(e.size);
            }
        }
    }

    /// Looks a file up.
    pub fn get(&self, path: &str) -> Option<&FileEntry> {
        self.files.get(path)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut FileEntry> {
        self.files.get_mut(path)
    }

    /// Creates an empty writable file (open-for-create).
    pub fn create(&mut self, path: &str) -> &mut FileEntry {
        self.files.entry(path.to_string()).or_insert(FileEntry {
            data: Bytes::new(),
            size: 0,
            online: true,
            staging: false,
        })
    }

    /// Deletes a file, returning whether it existed. Used to exercise the
    /// stale-redirect / refresh recovery path (§III-C1).
    pub fn remove(&mut self, path: &str) -> bool {
        if let Some(e) = self.files.remove(path) {
            self.release(Some(e));
            true
        } else {
            false
        }
    }

    /// Marks a staged file online (staging completed).
    pub fn complete_staging(&mut self, path: &str) -> bool {
        if let Some(e) = self.files.get_mut(path) {
            if !e.online {
                e.data = Bytes::from(vec![0u8; e.size as usize]);
                e.online = true;
                e.staging = false;
                self.used += e.size;
                return true;
            }
        }
        false
    }

    /// Reads up to `len` bytes at `offset` from an online file.
    pub fn read(&self, path: &str, offset: u64, len: u32) -> Option<Bytes> {
        let e = self.files.get(path)?;
        if !e.online {
            return None;
        }
        let start = (offset as usize).min(e.data.len());
        let end = (start + len as usize).min(e.data.len());
        Some(e.data.slice(start..end))
    }

    /// Writes `data` at `offset` of an online file, extending it as needed.
    pub fn write(&mut self, path: &str, offset: u64, data: &[u8]) -> Option<u32> {
        let e = self.files.get_mut(path)?;
        if !e.online {
            return None;
        }
        let mut buf = e.data.to_vec();
        let end = offset as usize + data.len();
        if end > buf.len() {
            self.used += (end - buf.len()) as u64;
            buf.resize(end, 0);
        }
        buf[offset as usize..end].copy_from_slice(data);
        e.size = buf.len() as u64;
        e.data = Bytes::from(buf);
        Some(data.len() as u32)
    }

    /// Iterates all paths (diagnostics; a real cluster-wide `ls` is
    /// deliberately absent from Scalla, §II-B4).
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_read_write() {
        let mut fs = LocalFs::new(1 << 20);
        fs.put_online("/f", 10);
        assert_eq!(fs.read("/f", 0, 4).unwrap().len(), 4);
        assert_eq!(fs.read("/f", 8, 10).unwrap().len(), 2, "clamped at EOF");
        assert_eq!(fs.write("/f", 5, b"abcdefgh"), Some(8));
        assert_eq!(fs.get("/f").unwrap().size, 13, "write extends file");
        assert_eq!(&fs.read("/f", 5, 8).unwrap()[..], b"abcdefgh");
    }

    #[test]
    fn offline_files_locatable_not_servable() {
        let mut fs = LocalFs::new(1 << 20);
        fs.put_offline("/mss/f", 100);
        assert!(fs.get("/mss/f").is_some());
        assert!(fs.read("/mss/f", 0, 10).is_none());
        assert!(fs.complete_staging("/mss/f"));
        assert_eq!(fs.read("/mss/f", 0, 10).unwrap().len(), 10);
        assert!(!fs.complete_staging("/mss/f"), "already online");
    }

    #[test]
    fn overwrite_releases_replaced_space() {
        let mut fs = LocalFs::new(1000);
        // Same-path re-seed must not double-count.
        fs.put_online("/f", 600);
        fs.put_online("/f", 400);
        assert_eq!(fs.free_bytes(), 600, "old online bytes released");
        // Demoting to MSS-resident releases the online bytes entirely.
        fs.put_offline("/f", 400);
        assert_eq!(fs.free_bytes(), 1000);
        // Offline entries were never charged, so neither overwriting nor
        // removing them may release anything.
        fs.put_online("/g", 300);
        fs.put_offline("/h", 999);
        fs.put_offline("/h", 500);
        assert!(fs.remove("/h"));
        assert_eq!(fs.free_bytes(), 700, "only /g is charged");
        // Staging completion charges, and removal releases, symmetrically.
        fs.put_offline("/i", 200);
        assert!(fs.complete_staging("/i"));
        assert_eq!(fs.free_bytes(), 500);
        assert!(fs.remove("/i"));
        assert_eq!(fs.free_bytes(), 700);
    }

    #[test]
    fn create_and_remove_track_space() {
        let mut fs = LocalFs::new(1000);
        fs.put_online("/a", 600);
        assert_eq!(fs.free_bytes(), 400);
        assert!(fs.remove("/a"));
        assert_eq!(fs.free_bytes(), 1000);
        assert!(!fs.remove("/a"));
        fs.create("/b");
        assert_eq!(fs.get("/b").unwrap().size, 0);
        assert_eq!(fs.file_count(), 1);
    }
}
