//! The cmsd state machine: manager and supervisor roles.
//!
//! A cmsd owns a [`NameCache`], a 64-slot [`Membership`], and a selection
//! policy. It accepts logins from subordinates (supervisors or data
//! servers), resolves client `Open`s by redirecting one level down the tree
//! (§II-B3), floods request-rarely-respond `Locate` queries (§III-B), and —
//! in supervisor role — compresses its subtree's positive responses into a
//! single upward `Have` (§II-B2).
//!
//! Replicated heads: "Clients first contact the logical head node (which
//! can be one of many)" (§II-B2). A node may therefore have several
//! parents; it logs into each and answers locates from any of them.

use crate::server::tokens;
use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
use scalla_cluster::{LoginOutcome, Membership, MembershipConfig, SelectionPolicy, Selector};
use scalla_obs::{Obs, SpanEvent, TraceId};
use scalla_proto::{Addr, ClientMsg, CmsMsg, ErrCode, Msg, NodeRoleTag, ServerMsg, NO_CLIENT};
use scalla_simnet::{NetCtx, Node};
use scalla_util::{crc32, Clock, Nanos, ServerId, ServerSet, MAX_SERVERS};
use std::collections::HashMap;
use std::sync::Arc;

/// Interior-node role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmsdRole {
    /// Root of the tree; clients contact it first.
    Manager,
    /// Interior node: aggregates up to 64 subordinates, logs into parents.
    Supervisor,
}

/// cmsd configuration.
#[derive(Clone)]
pub struct CmsdConfig {
    /// Host name, used in redirects.
    pub name: String,
    /// Manager or supervisor.
    pub role: CmsdRole,
    /// Parent addresses (empty for a manager; several when heads are
    /// replicated).
    pub parents: Vec<Addr>,
    /// Export prefixes declared at login to parents.
    pub exports: Vec<String>,
    /// Location-cache tuning (paper defaults unless overridden).
    pub cache: CacheConfig,
    /// Membership tuning (drop delay).
    pub membership: MembershipConfig,
    /// Server-selection criterion (§II-B3).
    pub policy: SelectionPolicy,
    /// Period between upward load reports.
    pub heartbeat: Nanos,
    /// A subordinate silent for longer than this is marked offline.
    pub offline_after: Nanos,
    /// Deterministic seed for tie-breaking.
    pub seed: u64,
}

impl CmsdConfig {
    /// A manager with paper-default tuning.
    pub fn manager(name: impl Into<String>) -> CmsdConfig {
        CmsdConfig {
            name: name.into(),
            role: CmsdRole::Manager,
            parents: Vec::new(),
            exports: vec!["/".to_string()],
            cache: CacheConfig::default(),
            membership: MembershipConfig::default(),
            policy: SelectionPolicy::RoundRobin,
            heartbeat: Nanos::from_secs(1),
            offline_after: Nanos::from_secs(3),
            seed: 0,
        }
    }

    /// A supervisor under `parent`.
    pub fn supervisor(name: impl Into<String>, parent: Addr) -> CmsdConfig {
        CmsdConfig {
            role: CmsdRole::Supervisor,
            parents: vec![parent],
            ..CmsdConfig::manager(name)
        }
    }
}

/// The cmsd node.
pub struct CmsdNode {
    cfg: CmsdConfig,
    cache: NameCache,
    members: Membership,
    selector: Selector,
    child_addr: [Option<Addr>; MAX_SERVERS],
    child_name: Vec<Option<String>>,
    addr_to_slot: HashMap<Addr, ServerId>,
    name_to_slot: HashMap<String, ServerId>,
    last_heard: [Nanos; MAX_SERVERS],
    next_reqid: u64,
    obs: Obs,
}

impl CmsdNode {
    /// Creates a cmsd with the given clock (virtual under the simulator,
    /// system under the live runtime).
    pub fn new(cfg: CmsdConfig, clock: Arc<dyn Clock>) -> CmsdNode {
        let cache = NameCache::new(cfg.cache.clone(), clock);
        let members = Membership::new(cfg.membership.clone());
        let selector = Selector::new(cfg.policy, cfg.seed);
        CmsdNode {
            cfg,
            cache,
            members,
            selector,
            child_addr: [None; MAX_SERVERS],
            child_name: vec![None; MAX_SERVERS],
            addr_to_slot: HashMap::new(),
            name_to_slot: HashMap::new(),
            last_heard: [Nanos::ZERO; MAX_SERVERS],
            next_reqid: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: the cache samples stage latencies
    /// into it, resolution decisions become flight-recorder spans, and the
    /// cache counters are mirrored into its registry at every scrape.
    pub fn set_obs(&mut self, obs: Obs) {
        if obs.is_enabled() {
            let stats = self.cache.stats_arc();
            let node = self.cfg.name.clone();
            obs.registry().add_collector(Box::new(move |reg| {
                stats.export_into(reg, &[("node", node.as_str())]);
            }));
        }
        self.cache.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The node's location cache (harness/statistics access).
    pub fn cache(&self) -> &NameCache {
        &self.cache
    }

    /// The membership table.
    pub fn members(&self) -> &Membership {
        &self.members
    }

    /// The configured host name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    fn is_parent(&self, addr: Addr) -> bool {
        self.cfg.parents.contains(&addr)
    }

    fn fresh_reqid(&mut self) -> u64 {
        self.next_reqid += 1;
        self.next_reqid
    }

    /// Core resolution driver shared by client `Open` and parent `Locate`.
    ///
    /// For a parent requester the positive answer is an upward `Have`
    /// (compressed across children) and every negative outcome is silence;
    /// for a client the answers are `Redirect`/`Wait`/`Error`.
    #[allow(clippy::too_many_arguments)]
    fn handle_resolution(
        &mut self,
        ctx: &mut dyn NetCtx,
        requester: Addr,
        tag: u64,
        path: &str,
        write: bool,
        refresh: bool,
        avoid_name: Option<&str>,
    ) {
        let from_parent = self.is_parent(requester);
        let silent = requester == NO_CLIENT;
        let vm = self.members.vm_for(path);
        if vm.is_empty() {
            if !from_parent && !silent {
                ctx.send(
                    requester,
                    ServerMsg::Error {
                        code: ErrCode::NoEligibleServer,
                        detail: format!("no server exports a prefix of {path}"),
                    }
                    .into(),
                );
            }
            return;
        }

        let avoid = avoid_name
            .and_then(|n| self.name_to_slot.get(n).copied())
            .map(ServerSet::single)
            .unwrap_or(ServerSet::EMPTY);
        let mode = if write { AccessMode::Write } else { AccessMode::Read };
        let waiter = Waiter::new(requester.0, tag);

        let out =
            self.cache.resolve_full(path, vm, self.members.offline(), mode, waiter, avoid, refresh);

        if self.obs.is_enabled() {
            let verdict = match out.resolution {
                Resolution::Redirect { .. } => "redirect",
                Resolution::Queued => "queued",
                Resolution::NotFound => "notfound",
                Resolution::WaitRetry { .. } => "wait_retry",
            };
            self.obs.span(
                SpanEvent::new(TraceId(ctx.trace()), ctx.me().0, "cms_resolve")
                    .verdict(verdict)
                    .depth(out.query.len() as u64)
                    .at(ctx.now().0),
            );
        }

        // Step 5: flood the query set; step 6: requeue children we could
        // not reach (no address — should not happen for V_m members, but
        // membership and cache are loosely coupled, so handle it).
        if !out.query.is_empty() {
            let reqid = self.fresh_reqid();
            let hash = crc32(path.as_bytes());
            let mut unreachable = ServerSet::EMPTY;
            for slot in out.query {
                match self.child_addr[slot as usize] {
                    Some(addr) => ctx.send(
                        addr,
                        CmsMsg::Locate { reqid, path: path.to_string(), hash, write }.into(),
                    ),
                    None => unreachable.insert(slot),
                }
            }
            if !unreachable.is_empty() {
                self.cache.requeue(path, out.locref, unreachable);
            }
        }

        match out.resolution {
            Resolution::Redirect { online, preparing } => {
                if from_parent {
                    ctx.send(
                        requester,
                        CmsMsg::Have {
                            reqid: tag,
                            path: path.to_string(),
                            hash: crc32(path.as_bytes()),
                            staging: online.is_empty(),
                        }
                        .into(),
                    );
                } else if !silent {
                    let candidates = if online.is_empty() { preparing } else { online };
                    let pick = self
                        .selector
                        .select(candidates, &mut self.members)
                        .expect("redirect with non-empty candidates");
                    let host = self.child_name[pick as usize]
                        .clone()
                        .unwrap_or_else(|| format!("slot-{pick}"));
                    ctx.send(requester, ServerMsg::Redirect { host }.into());
                }
            }
            Resolution::Queued => {
                // Answer arrives via a Have release or the sweep timeout.
            }
            Resolution::NotFound => {
                if from_parent || silent {
                    // Request-rarely-respond: silence is the negative.
                    return;
                }
                if write {
                    // Write allocation: the file provably does not exist,
                    // so pick a server by the configured criteria.
                    let candidates = vm & self.members.active() & !avoid;
                    match self.selector.select(candidates, &mut self.members) {
                        Some(pick) => {
                            let host = self.child_name[pick as usize]
                                .clone()
                                .unwrap_or_else(|| format!("slot-{pick}"));
                            ctx.send(requester, ServerMsg::Redirect { host }.into());
                        }
                        None => ctx.send(
                            requester,
                            ServerMsg::Error {
                                code: ErrCode::NoEligibleServer,
                                detail: "no active server for allocation".into(),
                            }
                            .into(),
                        ),
                    }
                } else {
                    ctx.send(
                        requester,
                        ServerMsg::Error {
                            code: ErrCode::NotFound,
                            detail: format!("{path} does not exist in the cluster"),
                        }
                        .into(),
                    );
                }
            }
            Resolution::WaitRetry { delay } => {
                if !from_parent && !silent {
                    ctx.send(requester, ServerMsg::Wait { millis: delay.as_millis() }.into());
                }
            }
        }
    }

    fn handle_have(
        &mut self,
        ctx: &mut dyn NetCtx,
        from: Addr,
        path: String,
        hash: u32,
        staging: bool,
    ) {
        let Some(&slot) = self.addr_to_slot.get(&from) else {
            return; // Response from a dropped member: stale, ignore.
        };
        self.last_heard[slot as usize] = ctx.now();
        self.note_alive(slot);
        let released = self.cache.update_have_hashed(&path, hash, slot, staging);
        if self.obs.is_enabled() {
            self.obs.span(
                SpanEvent::new(TraceId(ctx.trace()), ctx.me().0, "cms_have")
                    .verdict(if staging { "staging" } else { "online" })
                    .depth(released.len() as u64)
                    .at(ctx.now().0),
            );
        }
        for (waiter, srv_slot) in released {
            if waiter.client == NO_CLIENT.0 {
                continue; // background prepare look-up
            }
            let who = Addr(waiter.client);
            if self.is_parent(who) {
                // Compress: one upward Have per outstanding parent request.
                ctx.send(
                    who,
                    CmsMsg::Have { reqid: waiter.tag, path: path.clone(), hash, staging }.into(),
                );
            } else {
                self.members.note_selected(srv_slot);
                let host = self.child_name[srv_slot as usize]
                    .clone()
                    .unwrap_or_else(|| format!("slot-{srv_slot}"));
                ctx.send(who, ServerMsg::Redirect { host }.into());
            }
        }
    }

    fn handle_login(
        &mut self,
        ctx: &mut dyn NetCtx,
        from: Addr,
        name: String,
        exports: Vec<String>,
    ) {
        let was_offline = self.members.offline();
        match self.members.login(&name, &exports, ctx.now()) {
            LoginOutcome::ClusterFull => {
                ctx.send(from, CmsMsg::LoginRejected { reason: "server set full".into() }.into());
            }
            outcome => {
                let slot = outcome.id().expect("non-full outcomes carry an id");
                if was_offline.contains(slot) {
                    self.recovery_event("peer_reconnected");
                }
                // "Login is also the time that the server is added to V_c."
                self.cache.note_connect(slot);
                // Clear any stale mapping for a reused slot.
                if let Some(old) = self.child_addr[slot as usize] {
                    if old != from {
                        self.addr_to_slot.remove(&old);
                    }
                }
                if let Some(old_name) = &self.child_name[slot as usize] {
                    if *old_name != name {
                        self.name_to_slot.remove(old_name);
                    }
                }
                self.child_addr[slot as usize] = Some(from);
                self.child_name[slot as usize] = Some(name.clone());
                self.addr_to_slot.insert(from, slot);
                self.name_to_slot.insert(name, slot);
                self.last_heard[slot as usize] = ctx.now();
                ctx.send(from, CmsMsg::LoginOk { slot }.into());
            }
        }
    }

    /// Records a recovery transition as both an incident (flight recorder)
    /// and a labelled counter, so chaos harnesses can pair deaths with
    /// reconnects per reason.
    fn recovery_event(&self, event: &'static str) {
        if self.obs.is_enabled() {
            self.obs.incident(event);
            self.obs.count("scalla_recovery_events_total", &[("event", event)], 1);
        }
    }

    /// A subordinate believed offline just spoke (load report, Have, or
    /// re-login): mark it active again and count the reconnect.
    fn note_alive(&mut self, slot: ServerId) {
        if self.members.revive(slot) {
            self.recovery_event("peer_reconnected");
        }
    }

    /// A subordinate went silent past the health window: mark it offline
    /// and re-flood every resolution it was involved in to the surviving
    /// eligible servers, so parked waiters are answered by an alternate
    /// subtree instead of stalling until their deadline.
    fn on_peer_silent(&mut self, ctx: &mut dyn NetCtx, slot: ServerId) {
        self.recovery_event("peer_dead");
        let offline = self.members.offline();
        for (path, locref, ask) in self.cache.requery_on_disconnect(slot, offline) {
            let reqid = self.fresh_reqid();
            let hash = crc32(path.as_bytes());
            let mut unreachable = ServerSet::EMPTY;
            for s in ask {
                match self.child_addr[s as usize] {
                    Some(addr) => ctx.send(
                        addr,
                        CmsMsg::Locate { reqid, path: path.clone(), hash, write: false }.into(),
                    ),
                    None => unreachable.insert(s),
                }
            }
            if !unreachable.is_empty() {
                self.cache.requeue(&path, locref, unreachable);
            }
        }
    }

    fn heartbeat_load(&self) -> u32 {
        // A cmsd's "load" proxy: live cached objects (cheap, monotone with
        // request traffic).
        self.cache.len() as u32
    }
}

impl Node for CmsdNode {
    fn on_start(&mut self, ctx: &mut dyn NetCtx) {
        for &parent in &self.cfg.parents {
            ctx.send(
                parent,
                CmsMsg::Login {
                    name: self.cfg.name.clone(),
                    role: NodeRoleTag::Supervisor,
                    exports: self.cfg.exports.clone(),
                }
                .into(),
            );
        }
        ctx.set_timer(self.cfg.cache.fast_window, tokens::SWEEP);
        ctx.set_timer(self.cfg.cache.window_period(), tokens::TICK);
        ctx.set_timer(self.cfg.offline_after.div(2).max(Nanos::from_millis(100)), tokens::HEALTH);
        ctx.set_timer(
            self.cfg.membership.drop_after.div(4).max(Nanos::from_millis(100)),
            tokens::DROPS,
        );
        if !self.cfg.parents.is_empty() {
            ctx.set_timer(self.cfg.heartbeat, tokens::HEARTBEAT);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        match msg {
            Msg::Cms(CmsMsg::Login { name, exports, .. }) => {
                self.handle_login(ctx, from, name, exports);
            }
            Msg::Cms(CmsMsg::LoginOk { .. }) => {
                // Slot assignment at the parent; nothing to store — the
                // parent routes by address.
            }
            Msg::Cms(CmsMsg::LoginRejected { .. }) => {
                // Parent set full; a production deployment would retry at
                // an alternate supervisor. Surfaced via stats in the sim.
            }
            Msg::Cms(CmsMsg::Locate { reqid, path, write, .. }) => {
                self.handle_resolution(ctx, from, reqid, &path, write, false, None);
            }
            Msg::Cms(CmsMsg::Have { path, hash, staging, .. }) => {
                self.handle_have(ctx, from, path, hash, staging);
            }
            Msg::Cms(CmsMsg::NsEvent { .. }) => {
                // Namespace events are the CNS daemon's concern; the
                // cluster keeps no global namespace (§II-B4).
            }
            Msg::Cms(CmsMsg::Manifest { .. }) => {
                // Scalla never ingests manifests; only the GFS-style
                // baseline master does. Ignoring it here documents the
                // design choice of §V.
            }
            Msg::Cms(CmsMsg::LoadReport { load, free_bytes }) => {
                if let Some(&slot) = self.addr_to_slot.get(&from) {
                    self.members.report_load(slot, load, free_bytes);
                    self.last_heard[slot as usize] = ctx.now();
                    self.note_alive(slot);
                }
            }
            Msg::Client(ClientMsg::Open { path, write, refresh, avoid }) => {
                self.handle_resolution(ctx, from, 0, &path, write, refresh, avoid.as_deref());
            }
            Msg::Client(ClientMsg::Prepare { paths }) => {
                // §III-B2: spawn parallel background look-ups; the client
                // pays at most one full delay later.
                for path in &paths {
                    self.handle_resolution(ctx, NO_CLIENT, 0, path, false, false, None);
                }
                ctx.send(from, ServerMsg::PrepareOk.into());
            }
            Msg::Client(_) => {
                ctx.send(
                    from,
                    ServerMsg::Error {
                        code: ErrCode::BadRequest,
                        detail: "i/o requests must go to a data server".into(),
                    }
                    .into(),
                );
            }
            Msg::Server(_) => {
                // Responses are client-bound; a cmsd never expects one.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
        match token {
            tokens::SWEEP => {
                let full = self.cache.config().full_delay;
                for w in self.cache.sweep() {
                    if w.client == NO_CLIENT.0 {
                        continue;
                    }
                    let who = Addr(w.client);
                    if !self.is_parent(who) {
                        ctx.send(who, ServerMsg::Wait { millis: full.as_millis() }.into());
                    }
                }
                ctx.set_timer(self.cfg.cache.fast_window, tokens::SWEEP);
            }
            tokens::TICK => {
                self.cache.tick();
                ctx.set_timer(Nanos::from_millis(1), tokens::COLLECT);
                ctx.set_timer(self.cfg.cache.window_period(), tokens::TICK);
            }
            tokens::COLLECT => {
                const BATCH: usize = 1024;
                if self.cache.collect(BATCH) == BATCH {
                    ctx.set_timer(Nanos::from_millis(1), tokens::COLLECT);
                }
            }
            tokens::HEALTH => {
                let now = ctx.now();
                let mut silent = ServerSet::EMPTY;
                for slot in self.members.active() {
                    if now.since(self.last_heard[slot as usize]) > self.cfg.offline_after {
                        self.members.disconnect(slot, now);
                        silent.insert(slot);
                    }
                }
                for slot in silent {
                    self.on_peer_silent(ctx, slot);
                }
                ctx.set_timer(
                    self.cfg.offline_after.div(2).max(Nanos::from_millis(100)),
                    tokens::HEALTH,
                );
            }
            tokens::DROPS => {
                let dropped = self.members.check_drops(ctx.now());
                for slot in dropped {
                    if let Some(addr) = self.child_addr[slot as usize].take() {
                        self.addr_to_slot.remove(&addr);
                    }
                    if let Some(name) = self.child_name[slot as usize].take() {
                        self.name_to_slot.remove(&name);
                    }
                }
                ctx.set_timer(
                    self.cfg.membership.drop_after.div(4).max(Nanos::from_millis(100)),
                    tokens::DROPS,
                );
            }
            tokens::HEARTBEAT => {
                let load = self.heartbeat_load();
                for &parent in &self.cfg.parents {
                    ctx.send(parent, CmsMsg::LoadReport { load, free_bytes: 0 }.into());
                }
                ctx.set_timer(self.cfg.heartbeat, tokens::HEARTBEAT);
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;
    use scalla_util::VirtualClock;

    fn mk_manager(clock: Arc<VirtualClock>) -> CmsdNode {
        let mut cfg = CmsdConfig::manager("mgr");
        cfg.cache = CacheConfig::for_tests();
        cfg.cache.response_anchors = 64;
        CmsdNode::new(cfg, clock)
    }

    /// Logs `n` servers in from addresses 1000, 1001, ... and returns them.
    fn login_servers(node: &mut CmsdNode, ctx: &mut MockCtx, n: u64) -> Vec<Addr> {
        let mut addrs = Vec::new();
        for i in 0..n {
            let addr = Addr(1000 + i);
            node.on_message(
                ctx,
                addr,
                CmsMsg::Login {
                    name: format!("srv-{i}"),
                    role: NodeRoleTag::Server,
                    exports: vec!["/data".into()],
                }
                .into(),
            );
            addrs.push(addr);
        }
        addrs
    }

    fn open(path: &str) -> Msg {
        ClientMsg::Open { path: path.into(), write: false, refresh: false, avoid: None }.into()
    }

    #[test]
    fn login_assigns_slots_and_notes_connect() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock);
        let mut ctx = MockCtx::new();
        let addrs = login_servers(&mut node, &mut ctx, 2);
        assert_eq!(node.cache().nc(), 2, "each login must bump N_c");
        let oks: Vec<u8> = ctx
            .sends
            .iter()
            .filter_map(|(to, m)| match m {
                Msg::Cms(CmsMsg::LoginOk { slot }) => {
                    assert!(addrs.contains(to));
                    Some(*slot)
                }
                _ => None,
            })
            .collect();
        assert_eq!(oks, vec![0, 1]);
        assert_eq!(node.members().active(), ServerSet::first_n(2));
    }

    #[test]
    fn open_miss_floods_locate_to_exporting_children() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock);
        let mut ctx = MockCtx::new();
        let addrs = login_servers(&mut node, &mut ctx, 3);
        ctx.sends.clear();
        let client = Addr(7);
        node.on_message(&mut ctx, client, open("/data/f"));
        let targets: Vec<Addr> = ctx
            .sends
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::Cms(CmsMsg::Locate { .. })).then_some(*to))
            .collect();
        assert_eq!(targets, addrs, "every eligible child must be asked");
        // No client-visible reply yet: the client waits on the fast queue.
        assert!(ctx.sends.iter().all(|(_, m)| !matches!(m, Msg::Server(_))));
    }

    #[test]
    fn have_releases_waiting_client_with_redirect() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock);
        let mut ctx = MockCtx::new();
        let addrs = login_servers(&mut node, &mut ctx, 3);
        let client = Addr(7);
        node.on_message(&mut ctx, client, open("/data/f"));
        ctx.sends.clear();
        let hash = crc32(b"/data/f");
        node.on_message(
            &mut ctx,
            addrs[1],
            CmsMsg::Have { reqid: 1, path: "/data/f".into(), hash, staging: false }.into(),
        );
        assert_eq!(ctx.sends.len(), 1);
        match &ctx.sends[0] {
            (to, Msg::Server(ServerMsg::Redirect { host })) => {
                assert_eq!(*to, client);
                assert_eq!(host, "srv-1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cached_hit_redirects_immediately() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock);
        let mut ctx = MockCtx::new();
        let addrs = login_servers(&mut node, &mut ctx, 2);
        node.on_message(&mut ctx, Addr(7), open("/data/f"));
        let hash = crc32(b"/data/f");
        node.on_message(
            &mut ctx,
            addrs[0],
            CmsMsg::Have { reqid: 1, path: "/data/f".into(), hash, staging: false }.into(),
        );
        ctx.sends.clear();
        node.on_message(&mut ctx, Addr(8), open("/data/f"));
        assert!(matches!(
            &ctx.sends[0],
            (Addr(8), Msg::Server(ServerMsg::Redirect { host })) if host == "srv-0"
        ));
    }

    #[test]
    fn supervisor_compresses_child_responses_upward() {
        let clock = Arc::new(VirtualClock::new());
        let parent = Addr(1);
        let mut cfg = CmsdConfig::supervisor("sup-0", parent);
        cfg.cache = CacheConfig::for_tests();
        let mut node = CmsdNode::new(cfg, clock);
        let mut ctx = MockCtx::new();
        let addrs = login_servers(&mut node, &mut ctx, 3);
        ctx.sends.clear();
        let hash = crc32(b"/data/f");
        // Parent asks.
        node.on_message(
            &mut ctx,
            parent,
            CmsMsg::Locate { reqid: 99, path: "/data/f".into(), hash, write: false }.into(),
        );
        assert_eq!(
            ctx.sends.iter().filter(|(_, m)| matches!(m, Msg::Cms(CmsMsg::Locate { .. }))).count(),
            3
        );
        ctx.sends.clear();
        // Two children respond; only ONE upward Have must result.
        for &a in &addrs[..2] {
            node.on_message(
                &mut ctx,
                a,
                CmsMsg::Have { reqid: 5, path: "/data/f".into(), hash, staging: false }.into(),
            );
        }
        let ups: Vec<&Msg> = ctx
            .sends
            .iter()
            .filter_map(|(to, m)| {
                (*to == parent && matches!(m, Msg::Cms(CmsMsg::Have { .. }))).then_some(m)
            })
            .collect();
        assert_eq!(ups.len(), 1, "responses must be compressed (§II-B2)");
        match ups[0] {
            Msg::Cms(CmsMsg::Have { reqid, .. }) => assert_eq!(*reqid, 99, "parent's reqid echoed"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn parent_locate_for_unknown_file_is_silent() {
        let clock = Arc::new(VirtualClock::new());
        let parent = Addr(1);
        let mut cfg = CmsdConfig::supervisor("sup-0", parent);
        cfg.cache = CacheConfig::for_tests();
        let mut node = CmsdNode::new(cfg, clock.clone());
        let mut ctx = MockCtx::new();
        login_servers(&mut node, &mut ctx, 2);
        ctx.sends.clear();
        node.on_message(
            &mut ctx,
            parent,
            CmsMsg::Locate {
                reqid: 1,
                path: "/data/ghost".into(),
                hash: crc32(b"/data/ghost"),
                write: false,
            }
            .into(),
        );
        // Floods down but nothing goes back up, even after the deadline.
        assert!(ctx.sends.iter().all(|(to, _)| *to != parent));
        clock.advance(Nanos::from_secs(6));
        ctx.sends.clear();
        node.on_message(
            &mut ctx,
            parent,
            CmsMsg::Locate {
                reqid: 2,
                path: "/data/ghost".into(),
                hash: crc32(b"/data/ghost"),
                write: false,
            }
            .into(),
        );
        assert!(ctx.sends.iter().all(|(to, _)| *to != parent), "silence is the negative");
    }

    #[test]
    fn sweep_sends_full_wait_to_clients() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock.clone());
        let mut ctx = MockCtx::new();
        login_servers(&mut node, &mut ctx, 2);
        let client = Addr(7);
        node.on_message(&mut ctx, client, open("/data/f"));
        ctx.sends.clear();
        clock.advance(Nanos::from_millis(200)); // > 133 ms
        node.on_timer(&mut ctx, tokens::SWEEP);
        assert!(matches!(&ctx.sends[0], (Addr(7), Msg::Server(ServerMsg::Wait { millis: 5000 }))));
    }

    #[test]
    fn write_allocation_after_notfound() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock.clone());
        let mut ctx = MockCtx::new();
        login_servers(&mut node, &mut ctx, 2);
        let client = Addr(7);
        // First create attempt: queued + flood.
        node.on_message(
            &mut ctx,
            client,
            ClientMsg::Open { path: "/data/new".into(), write: true, refresh: false, avoid: None }
                .into(),
        );
        // Deadline passes with no Have: retry must allocate.
        clock.advance(Nanos::from_secs(6));
        ctx.sends.clear();
        node.on_message(
            &mut ctx,
            client,
            ClientMsg::Open { path: "/data/new".into(), write: true, refresh: false, avoid: None }
                .into(),
        );
        assert!(matches!(&ctx.sends[0], (Addr(7), Msg::Server(ServerMsg::Redirect { .. }))));
    }

    #[test]
    fn read_of_nonexistent_file_errors_after_deadline() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock.clone());
        let mut ctx = MockCtx::new();
        login_servers(&mut node, &mut ctx, 2);
        node.on_message(&mut ctx, Addr(7), open("/data/ghost"));
        clock.advance(Nanos::from_secs(6));
        ctx.sends.clear();
        node.on_message(&mut ctx, Addr(7), open("/data/ghost"));
        assert!(matches!(
            &ctx.sends[0],
            (Addr(7), Msg::Server(ServerMsg::Error { code: ErrCode::NotFound, .. }))
        ));
    }

    #[test]
    fn no_eligible_server_error() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock);
        let mut ctx = MockCtx::new();
        login_servers(&mut node, &mut ctx, 2); // export /data only
        ctx.sends.clear();
        node.on_message(&mut ctx, Addr(7), open("/elsewhere/f"));
        assert!(matches!(
            &ctx.sends[0],
            (Addr(7), Msg::Server(ServerMsg::Error { code: ErrCode::NoEligibleServer, .. }))
        ));
    }

    #[test]
    fn avoid_steers_away_from_failing_server() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock);
        let mut ctx = MockCtx::new();
        let addrs = login_servers(&mut node, &mut ctx, 2);
        node.on_message(&mut ctx, Addr(7), open("/data/f"));
        let hash = crc32(b"/data/f");
        for &a in &addrs {
            node.on_message(
                &mut ctx,
                a,
                CmsMsg::Have { reqid: 1, path: "/data/f".into(), hash, staging: false }.into(),
            );
        }
        ctx.sends.clear();
        node.on_message(
            &mut ctx,
            Addr(8),
            ClientMsg::Open {
                path: "/data/f".into(),
                write: false,
                refresh: false,
                avoid: Some("srv-0".into()),
            }
            .into(),
        );
        assert!(matches!(
            &ctx.sends[0],
            (Addr(8), Msg::Server(ServerMsg::Redirect { host })) if host == "srv-1"
        ));
    }

    #[test]
    fn prepare_floods_and_acks_once() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock);
        let mut ctx = MockCtx::new();
        login_servers(&mut node, &mut ctx, 2);
        ctx.sends.clear();
        node.on_message(
            &mut ctx,
            Addr(7),
            ClientMsg::Prepare { paths: vec!["/data/a".into(), "/data/b".into()] }.into(),
        );
        let locates =
            ctx.sends.iter().filter(|(_, m)| matches!(m, Msg::Cms(CmsMsg::Locate { .. }))).count();
        assert_eq!(locates, 4, "two paths x two servers");
        let acks = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Server(ServerMsg::PrepareOk)))
            .count();
        assert_eq!(acks, 1);
    }

    #[test]
    fn silent_holder_triggers_requery_of_survivors() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock.clone());
        let mut ctx = MockCtx::new();
        let addrs = login_servers(&mut node, &mut ctx, 3);
        // srv-1 goes silent first, so a later resolution parks it in V_q.
        clock.advance(Nanos::from_secs(5));
        ctx.now = clock.now();
        for a in [addrs[0], addrs[2]] {
            node.on_message(&mut ctx, a, CmsMsg::LoadReport { load: 1, free_bytes: 0 }.into());
        }
        node.on_timer(&mut ctx, tokens::HEALTH);
        assert_eq!(node.members().offline(), ServerSet::single(1));
        // Resolve /data/f: srv-0 and srv-2 are queried now, srv-1 is parked
        // in V_q (unreachable); srv-0 answers and becomes the known holder.
        node.on_message(&mut ctx, Addr(7), open("/data/f"));
        let hash = crc32(b"/data/f");
        node.on_message(
            &mut ctx,
            addrs[0],
            CmsMsg::Have { reqid: 1, path: "/data/f".into(), hash, staging: false }.into(),
        );
        // srv-1 returns to life; then srv-0 — the only believed holder —
        // goes silent while srv-1/srv-2 keep reporting.
        node.on_message(&mut ctx, addrs[1], CmsMsg::LoadReport { load: 1, free_bytes: 0 }.into());
        assert_eq!(node.members().offline(), ServerSet::EMPTY);
        clock.advance(Nanos::from_secs(5));
        ctx.now = clock.now();
        for &a in &addrs[1..] {
            node.on_message(&mut ctx, a, CmsMsg::LoadReport { load: 1, free_bytes: 0 }.into());
        }
        ctx.sends.clear();
        node.on_timer(&mut ctx, tokens::HEALTH);
        assert_eq!(node.members().offline(), ServerSet::single(0));
        // The re-flood must immediately ask the parked survivor (srv-1)
        // about the orphaned file instead of stranding future waiters.
        let targets: Vec<Addr> = ctx
            .sends
            .iter()
            .filter_map(|(to, m)| {
                matches!(m, Msg::Cms(CmsMsg::Locate { path, .. }) if path == "/data/f")
                    .then_some(*to)
            })
            .collect();
        assert_eq!(targets, vec![addrs[1]], "parked survivor re-queried: {:?}", ctx.sends);
        // The dead holder is no longer believed: it sits in V_q.
        let state = node.cache().peek("/data/f").unwrap();
        assert!(state.vh.is_empty());
        assert_eq!(state.vq, ServerSet::single(0));
        // A survivor answers: the parked V_q state resolves to a redirect
        // for the next client without waiting out the full delay.
        ctx.sends.clear();
        node.on_message(
            &mut ctx,
            addrs[1],
            CmsMsg::Have { reqid: 2, path: "/data/f".into(), hash, staging: false }.into(),
        );
        node.on_message(&mut ctx, Addr(8), open("/data/f"));
        assert!(
            ctx.sends.iter().any(|(to, m)| *to == Addr(8)
                && matches!(m, Msg::Server(ServerMsg::Redirect { host }) if host == "srv-1")),
            "{:?}",
            ctx.sends
        );
    }

    #[test]
    fn traffic_from_offline_member_revives_it() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock.clone());
        let mut ctx = MockCtx::new();
        let addrs = login_servers(&mut node, &mut ctx, 2);
        clock.advance(Nanos::from_secs(5));
        ctx.now = clock.now();
        node.on_message(&mut ctx, addrs[1], CmsMsg::LoadReport { load: 1, free_bytes: 0 }.into());
        node.on_timer(&mut ctx, tokens::HEALTH);
        assert_eq!(node.members().offline(), ServerSet::single(0));
        // A load report from the silent server proves it is alive again —
        // no full re-login needed (§III-A4 case 3).
        node.on_message(&mut ctx, addrs[0], CmsMsg::LoadReport { load: 2, free_bytes: 0 }.into());
        assert_eq!(node.members().offline(), ServerSet::EMPTY);
        assert_eq!(node.members().active(), ServerSet::first_n(2));
    }

    #[test]
    fn heartbeat_silence_marks_offline_then_drop() {
        let clock = Arc::new(VirtualClock::new());
        let mut node = mk_manager(clock.clone());
        let mut ctx = MockCtx::new();
        login_servers(&mut node, &mut ctx, 2);
        // srv-1 keeps reporting; srv-0 goes silent.
        clock.advance(Nanos::from_secs(5));
        ctx.now = clock.now();
        node.on_message(&mut ctx, Addr(1001), CmsMsg::LoadReport { load: 1, free_bytes: 0 }.into());
        node.on_timer(&mut ctx, tokens::HEALTH);
        assert_eq!(node.members().offline(), ServerSet::single(0));
        // Past the drop limit the silent server is dropped entirely.
        clock.advance(Nanos::from_mins(11));
        ctx.now = clock.now();
        node.on_timer(&mut ctx, tokens::DROPS);
        assert_eq!(node.members().offline(), ServerSet::EMPTY);
        assert!(node.members().vm_for("/data/f").contains(1));
        assert!(!node.members().vm_for("/data/f").contains(0));
    }
}
