//! Robustness: arbitrary (well-typed but nonsensical) message sequences
//! fired at the node state machines from arbitrary senders must never
//! panic, hang, or corrupt counters — a cmsd on a WAN sees stray, stale,
//! and out-of-order traffic constantly.

use bytes::Bytes;
use proptest::prelude::*;
use scalla_cache::CacheConfig;
use scalla_node::{CmsdConfig, CmsdNode, ServerConfig, ServerNode};
use scalla_proto::{Addr, ClientMsg, CmsMsg, Msg, NodeRoleTag, ServerMsg};
use scalla_simnet::{NetCtx, Node};
use scalla_util::{Clock, Nanos, VirtualClock};
use std::sync::Arc;

/// Minimal capture ctx.
struct Ctx {
    now: Nanos,
    sends: usize,
}

impl NetCtx for Ctx {
    fn now(&self) -> Nanos {
        self.now
    }
    fn me(&self) -> Addr {
        Addr(500)
    }
    fn send(&mut self, _to: Addr, _msg: Msg) {
        self.sends += 1;
    }
    fn set_timer(&mut self, _d: Nanos, _t: u64) {}
    fn rand_u64(&mut self) -> u64 {
        9
    }
}

fn path_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("/d/f".to_string()),
        Just("".to_string()),
        Just("/".to_string()),
        "[ -~]{0,24}",
    ]
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (path_strategy(), any::<bool>(), any::<bool>()).prop_map(|(path, write, refresh)| {
            ClientMsg::Open { path, write, refresh, avoid: Some("srv-9".into()) }.into()
        }),
        (any::<u64>(), any::<u64>(), any::<u32>())
            .prop_map(|(handle, offset, len)| ClientMsg::Read { handle, offset, len }.into()),
        (any::<u64>(), any::<u64>()).prop_map(|(handle, offset)| {
            ClientMsg::Write { handle, offset, data: Bytes::from_static(b"zz") }.into()
        }),
        any::<u64>().prop_map(|handle| ClientMsg::Close { handle }.into()),
        path_strategy().prop_map(|path| ClientMsg::Stat { path }.into()),
        proptest::collection::vec(path_strategy(), 0..4)
            .prop_map(|paths| ClientMsg::Prepare { paths }.into()),
        path_strategy().prop_map(|dir| ClientMsg::List { dir }.into()),
        (path_strategy(), any::<bool>()).prop_map(|(name, server)| {
            CmsMsg::Login {
                name,
                role: if server { NodeRoleTag::Server } else { NodeRoleTag::Supervisor },
                exports: vec!["/d".into()],
            }
            .into()
        }),
        any::<u8>().prop_map(|slot| CmsMsg::LoginOk { slot }.into()),
        (any::<u64>(), path_strategy(), any::<u32>(), any::<bool>()).prop_map(
            |(reqid, path, hash, write)| CmsMsg::Locate { reqid, path, hash, write }.into()
        ),
        (any::<u64>(), path_strategy(), any::<u32>(), any::<bool>()).prop_map(
            |(reqid, path, hash, staging)| CmsMsg::Have { reqid, path, hash, staging }.into()
        ),
        (any::<u32>(), any::<u64>()).prop_map(|(load, free_bytes)| CmsMsg::LoadReport {
            load,
            free_bytes
        }
        .into()),
        (any::<bool>(), path_strategy()).prop_map(|(created, path)| CmsMsg::NsEvent {
            created,
            path
        }
        .into()),
        Just(Msg::Server(ServerMsg::CloseOk)),
        Just(Msg::Server(ServerMsg::PrepareOk)),
        any::<u64>().prop_map(|millis| Msg::Server(ServerMsg::Wait { millis })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cmsd_survives_arbitrary_traffic(
        msgs in proptest::collection::vec((0u64..8, msg_strategy()), 1..120),
        timers in proptest::collection::vec(1u64..7, 0..20),
    ) {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = CmsdConfig::manager("mgr");
        cfg.cache = CacheConfig::for_tests();
        let mut node = CmsdNode::new(cfg, clock.clone());
        let mut ctx = Ctx { now: Nanos::ZERO, sends: 0 };
        for (sender, msg) in msgs {
            node.on_message(&mut ctx, Addr(sender), msg);
            clock.advance(Nanos::from_millis(37));
            ctx.now = clock.now();
        }
        for token in timers {
            node.on_timer(&mut ctx, token);
        }
        // Counters stay coherent.
        let s = node.cache().stats();
        use scalla_cache::CacheStats as S;
        prop_assert!(S::get(&s.hits) + S::get(&s.misses) <= S::get(&s.lookups) + S::get(&s.refreshes));
    }

    #[test]
    fn server_survives_arbitrary_traffic(
        msgs in proptest::collection::vec((0u64..8, msg_strategy()), 1..120),
    ) {
        let mut node = ServerNode::new(ServerConfig::new("srv", Addr(0)));
        node.fs_mut().put_online("/d/f", 64);
        node.fs_mut().put_offline("/d/off", 64);
        let mut ctx = Ctx { now: Nanos::ZERO, sends: 0 };
        for (sender, msg) in msgs {
            node.on_message(&mut ctx, Addr(sender), msg);
        }
        // A server never speaks unprompted negatives: every send was a
        // direct reply, so sends <= messages.
        prop_assert!(ctx.sends <= 120);
    }
}
