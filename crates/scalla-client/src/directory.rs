//! Host-name ↔ address directory.
//!
//! Redirects carry host *names* (§II-B3); transports deliver to addresses.
//! In production this mapping is DNS; here it is a shared two-way table the
//! harness populates as it builds the cluster.

use parking_lot::RwLock;
use scalla_proto::Addr;
use std::collections::HashMap;

/// Thread-safe name ↔ address mapping.
#[derive(Default)]
pub struct Directory {
    by_name: RwLock<HashMap<String, Addr>>,
    by_addr: RwLock<HashMap<Addr, String>>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Registers (or updates) a host.
    pub fn register(&self, name: &str, addr: Addr) {
        self.by_name.write().insert(name.to_string(), addr);
        self.by_addr.write().insert(addr, name.to_string());
    }

    /// Address of `name`, if registered.
    pub fn addr_of(&self, name: &str) -> Option<Addr> {
        self.by_name.read().get(name).copied()
    }

    /// Name of `addr`, if registered.
    pub fn name_of(&self, addr: Addr) -> Option<String> {
        self.by_addr.read().get(&addr).cloned()
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.by_name.read().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_mapping() {
        let d = Directory::new();
        d.register("srv-0", Addr(10));
        d.register("srv-1", Addr(11));
        assert_eq!(d.addr_of("srv-0"), Some(Addr(10)));
        assert_eq!(d.name_of(Addr(11)), Some("srv-1".to_string()));
        assert_eq!(d.addr_of("ghost"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn reregistration_updates() {
        let d = Directory::new();
        d.register("srv-0", Addr(10));
        d.register("srv-0", Addr(20));
        assert_eq!(d.addr_of("srv-0"), Some(Addr(20)));
    }
}
