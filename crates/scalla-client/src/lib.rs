//! Client-side protocol driver.
//!
//! A Scalla client contacts the logical head node, follows [`Redirect`]s
//! down the tree until it reaches a data server (§II-B3), honours [`Wait`]
//! back-offs (the full-delay imposition of §III-B), and recovers from stale
//! location information by re-issuing the request to the manager "asking
//! for a cache refresh along with the name of the host that failed"
//! (§III-C1). With replicated head nodes it fails over to the next manager
//! when the current one stops answering.
//!
//! [`ClientNode`] executes a scripted sequence of [`ClientOp`]s and records
//! one [`OpResult`] per operation (latency, hop count, waits, refreshes) —
//! the raw material for every latency experiment in EXPERIMENTS.md.
//!
//! [`Redirect`]: scalla_proto::ServerMsg::Redirect
//! [`Wait`]: scalla_proto::ServerMsg::Wait

pub mod directory;
pub mod driver;

pub use directory::Directory;
pub use driver::{ClientConfig, ClientNode, ClientOp, OpOutcome, OpResult, RetryPolicy};
